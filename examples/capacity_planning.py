#!/usr/bin/env python
"""Picking a (deadline, budget) pair with a prescribed risk — Eq. (3).

The paper's formal objective is joint: finish before a deadline D while
spending at most B (Eq. 3). With stochastic task weights that guarantee is
probabilistic. This example plans an epigenomics pipeline run:

1. schedule with HEFTBUDG at three candidate budgets;
2. Monte-Carlo each schedule over 150 weight realizations;
3. print the (D, B) success probabilities and distribution tails a lab
   would use to choose its service-level target;
4. show the chosen schedule as an ASCII Gantt chart.

Run:  python examples/capacity_planning.py
"""

from repro import PAPER_PLATFORM, evaluate_schedule, generate, make_scheduler
from repro.experiments.budgets import high_budget, minimal_budget
from repro.experiments.risk import assess
from repro.simulation.gantt import render_gantt

N_SAMPLES = 150


def main() -> None:
    wf = generate("epigenomics", 40, rng=5, sigma_ratio=0.75)
    b_min = minimal_budget(wf, PAPER_PLATFORM)
    b_high = high_budget(wf, PAPER_PLATFORM)
    print(f"EPIGENOMICS, {wf.n_tasks} tasks, sigma = 75% — "
          f"budget axis ${b_min:.2f}..${b_high:.2f}\n")

    candidates = [
        b_min + f * (b_high - b_min) for f in (0.15, 0.3, 0.5, 0.8)
    ]
    schedules = {
        budget: make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, budget
        ).schedule
        for budget in candidates
    }
    # common deadline: 15% slack over the best (highest-budget) plan
    best_mk = evaluate_schedule(
        wf, PAPER_PLATFORM, schedules[candidates[-1]]
    ).makespan
    deadline = 1.15 * best_mk
    print(f"service target: D = {deadline:.0f}s for every candidate\n")

    assessments = []
    for budget in candidates:
        sched = schedules[budget]
        risk = assess(
            wf, PAPER_PLATFORM, sched,
            deadline=deadline, budget=budget,
            n_samples=N_SAMPLES, rng=11,
        )
        assessments.append((budget, sched, risk))
        print(f"budget ${budget:6.3f}:")
        print(f"  {risk.summary()}\n")

    # choose the cheapest candidate meeting the joint objective >= 95%
    chosen = next(
        (entry for entry in assessments if entry[2].p_meets_objective >= 0.95),
        assessments[-1],
    )
    budget, sched, risk = chosen
    print(f"chosen plan: B = ${budget:.3f}, D = {deadline:.0f}s "
          f"(joint success {risk.p_meets_objective:.0%}), "
          f"{sched.n_vms} VMs\n")
    print(render_gantt(evaluate_schedule(wf, PAPER_PLATFORM, sched), width=84))


if __name__ == "__main__":
    main()
