#!/usr/bin/env python
"""Why LIGO overruns tight budgets: datacenter saturation.

§V-B of the paper: "we assumed that the bandwidth of the datacenter would be
sufficient for all simultaneous transfers, but we observed that it became a
bottleneck ... LIGO has a lot of parallel tasks running concurrently, that
may well send huge data at the same time."

The library's simulator can model both regimes: the default infinite
aggregate capacity (every transfer gets the full VM link), or a finite
datacenter capacity shared max-min fairly among concurrent flows. This
example schedules a LIGO workflow near its minimum budget — where schedules
are serialized and transfer-heavy — and replays the *same schedule* under
shrinking datacenter capacity, reproducing the overrun mechanism.

Run:  python examples/datacenter_saturation.py
"""

import math

from repro import PAPER_PLATFORM, execute_schedule, generate, make_scheduler
from repro.experiments.budgets import minimal_budget
from repro.simulation.executor import sample_weights
from repro.units import MB

CAPACITIES = [math.inf, 50 * MB, 20 * MB, 8 * MB, 3 * MB]
N_RUNS = 10


def main() -> None:
    # Trace-faithful runtimes (runtime_scale=1): LIGO's 220 MB input frames
    # genuinely compete with its ~460 s matched-filter tasks, the regime in
    # which the paper observed the datacenter becoming a bottleneck.
    wf = generate("ligo", 90, rng=3, sigma_ratio=0.5, runtime_scale=1.0)
    budget = 1.3 * minimal_budget(wf, PAPER_PLATFORM)
    sched = make_scheduler("heft_budg").schedule(
        wf, PAPER_PLATFORM, budget
    ).schedule
    print(f"LIGO 90 tasks, budget ${budget:.3f} "
          f"(1.3 × minimum), {sched.n_vms} VMs, "
          f"per-VM link {PAPER_PLATFORM.bandwidth / MB:.0f} MB/s\n")
    print(f"{'DC capacity':>12} {'mean makespan':>14} {'mean cost':>10} "
          f"{'% within budget':>16}")

    for capacity in CAPACITIES:
        makespans, costs, valid = [], [], 0
        for rep in range(N_RUNS):
            run = execute_schedule(
                wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=rep),
                dc_capacity=capacity,
            )
            makespans.append(run.makespan)
            costs.append(run.total_cost)
            valid += run.respects_budget(budget)
        label = "inf" if math.isinf(capacity) else f"{capacity / MB:.0f} MB/s"
        print(f"{label:>12} {sum(makespans) / N_RUNS:>13.0f}s "
              f"${sum(costs) / N_RUNS:>9.3f} {100 * valid / N_RUNS:>15.0f}%")

    print(
        "\nAs the shared capacity shrinks below the aggregate demand of"
        "\nLIGO's parallel uploads, transfers stretch, VMs stay rented"
        "\nlonger, and the budget — set assuming free bandwidth — breaks,"
        "\nexactly the failure mode the paper reports for tight budgets."
    )


if __name__ == "__main__":
    main()
