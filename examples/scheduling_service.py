#!/usr/bin/env python
"""Scheduling-as-a-service: batch jobs, caching, and the HTTP gateway.

Spins up an in-process :class:`repro.service.SchedulingService`, submits a
campaign of async jobs (three workflow families x two algorithms under a
medium budget), shows the response cache absorbing repeated traffic, then
serves the same engine over HTTP and hits it with a JSON request — the
exact payload a remote client would POST to ``repro-exp serve``.

Run:  python examples/scheduling_service.py
"""

import json
import urllib.request

from repro.service import SchedulingService
from repro.service.http import start_gateway
from repro.units import pretty_money, pretty_seconds


def request(family: str, algorithm: str) -> dict:
    return {
        "workflow": {"family": family, "n_tasks": 50, "rng": 2018,
                     "sigma_ratio": 0.5},
        "algorithm": algorithm,
        "budget": {"position": 0.5},   # the paper's medium budget
        "evaluation": {"n_reps": 10},
    }


def main() -> None:
    with SchedulingService(max_workers=4, cache_size=64) as svc:
        # -- async campaign ------------------------------------------------
        campaign = [
            request(family, algorithm)
            for family in ("cybershake", "ligo", "montage")
            for algorithm in ("minmin_budg", "heft_budg")
        ]
        job_ids = svc.submit_batch(campaign)
        print(f"submitted {len(job_ids)} jobs on 4 workers\n")

        print(f"{'workflow':>12} {'algorithm':>12} {'budget':>8} "
              f"{'makespan':>10} {'VMs':>4} {'valid%':>7}")
        for job_id in job_ids:
            resp = svc.result(job_id, timeout=300)
            ev = resp.evaluation
            print(f"{resp.workflow_name:>12} {resp.algorithm:>12} "
                  f"{pretty_money(resp.budget):>8} "
                  f"{pretty_seconds(ev['makespan']['mean']):>10} "
                  f"{resp.n_vms:>4} {100 * ev['budget_success_rate']:>6.0f}%")

        # -- cache absorbing repeat traffic --------------------------------
        repeat = request("montage", "heft_budg")
        for _ in range(25):
            svc.schedule(repeat)
        cache = svc.stats()["cache"]
        print(f"\nafter 25 identical requests: cache hits={cache['hits']} "
              f"misses={cache['misses']} "
              f"hit rate={100 * cache['hit_rate']:.0f}%")

        # -- the same engine over HTTP -------------------------------------
        gateway = start_gateway(svc)
        print(f"\ngateway listening on {gateway.url}")
        body = json.dumps(request("ligo", "heft_budg")).encode()
        http_req = urllib.request.Request(
            gateway.url + "/v1/schedule", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(http_req) as fh:
            payload = json.load(fh)
        print(f"POST /v1/schedule -> {payload['algorithm']} schedules "
              f"{payload['n_tasks']} tasks on {payload['n_vms']} VMs "
              f"(cached={payload['cached']})")

        latency = svc.stats()["metrics"]["series"]["schedule_latency_s"]
        print(f"\nengine latency: mean={latency['mean'] * 1e3:.1f} ms  "
              f"window_p95={latency['window_p95'] * 1e3:.1f} ms  "
              f"over {latency['count']} runs")
        gateway.shutdown()


if __name__ == "__main__":
    main()
