#!/usr/bin/env python
"""Surviving stragglers in a LIGO analysis campaign.

LIGO Inspiral workflows are dominated by large, uncertain matched-filter
tasks: the actual instruction count depends on the data segment, so a task
can take twice its expected time. This example shows, on one LIGO instance:

1. how the budget guarantee of HEFTBUDG holds as the weight uncertainty
   grows from sigma = 25% to sigma = 100% of the mean (§V-B of the paper);
2. what the paper's proposed on-line monitoring extension (§VI) buys:
   stragglers are detected at ``1.4 × planned`` time and the not-yet-started
   work is re-mapped onto the unspent budget.

Run:  python examples/gravitational_wave_campaign.py
"""

import numpy as np

from repro import PAPER_PLATFORM, execute_schedule, generate, make_scheduler
from repro.experiments.budgets import high_budget, minimal_budget
from repro.scheduling.online import OnlineHeftBudg
from repro.simulation.executor import sample_weights

N_RUNS = 15


def main() -> None:
    print("== 1. budget compliance vs weight uncertainty ==\n")
    print(f"{'sigma/mean':>10} {'budget':>9} {'mean makespan':>14} "
          f"{'mean cost':>10} {'% within budget':>16}")
    for sigma in (0.25, 0.5, 0.75, 1.0):
        wf = generate("ligo", 60, rng=11, sigma_ratio=sigma)
        budget = 0.5 * (
            minimal_budget(wf, PAPER_PLATFORM) + high_budget(wf, PAPER_PLATFORM)
        )
        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, budget
        ).schedule
        makespans, costs, valid = [], [], 0
        for rep in range(N_RUNS):
            run = execute_schedule(
                wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=rep)
            )
            makespans.append(run.makespan)
            costs.append(run.total_cost)
            valid += run.respects_budget(budget)
        print(
            f"{sigma:>10.2f} ${budget:>8.3f} {np.mean(makespans):>13.0f}s "
            f"${np.mean(costs):>9.3f} {100 * valid / N_RUNS:>15.0f}%"
        )

    print("\n== 2. on-line straggler re-mapping (paper §VI prototype) ==\n")
    wf = generate("ligo", 60, rng=11, sigma_ratio=1.0)
    budget = high_budget(wf, PAPER_PLATFORM)
    static = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget).schedule
    online = OnlineHeftBudg(timeout_factor=1.4)

    print(f"{'run':>4} {'static makespan':>16} {'online makespan':>16} "
          f"{'timeouts':>9} {'re-maps':>8}")
    static_mk, online_mk = [], []
    for rep in range(N_RUNS):
        weights = sample_weights(wf, rng=100 + rep)
        s = execute_schedule(wf, PAPER_PLATFORM, static, weights)
        o = online.run(wf, PAPER_PLATFORM, budget, weights=weights)
        static_mk.append(s.makespan)
        online_mk.append(o.makespan)
        print(f"{rep:>4} {s.makespan:>15.0f}s {o.makespan:>15.0f}s "
              f"{len(o.timeouts):>9} {o.n_reschedules:>8}")
    gain = 100 * (1 - np.mean(online_mk) / np.mean(static_mk))
    print(f"\nmean improvement from monitoring: {gain:.1f}% "
          f"({np.mean(static_mk):.0f}s → {np.mean(online_mk):.0f}s)")
    print(
        "\nNote the paper's caution (§VI): 'such dynamic decisions encompass"
        "\nrisks'. The monitor reliably detects stragglers and only accepts a"
        "\nre-mapping when it helps under everything knowable at detection"
        "\ntime — yet realized gains are often near zero, because the"
        "\nworkflow's agglomerative sinks must wait for the non-preemptible"
        "\nstraggler regardless of where the remaining work is placed. A"
        "\nheuristic that *interrupts* tasks (the paper's other proposal)"
        "\nis where the upside would come from."
    )


if __name__ == "__main__":
    main()
