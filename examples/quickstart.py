#!/usr/bin/env python
"""Quickstart: schedule one workflow under a budget and simulate it.

Generates a 90-task MONTAGE workflow with stochastic task weights
(sigma = 50% of the mean), runs the paper's HEFTBUDG algorithm against the
Table II platform, then executes the schedule 10 times with sampled actual
weights to see what the budget guarantee looks like in practice.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_PLATFORM,
    execute_schedule,
    generate,
    make_scheduler,
    sample_weights,
)
from repro.experiments.budgets import high_budget, minimal_budget
from repro.units import pretty_money, pretty_seconds


def main() -> None:
    wf = generate("montage", 90, rng=2018, sigma_ratio=0.5)
    print(f"workflow: {wf.name} — {wf.n_tasks} tasks, {wf.n_edges} edges")

    b_min = minimal_budget(wf, PAPER_PLATFORM)
    b_high = high_budget(wf, PAPER_PLATFORM)
    budget = 0.5 * (b_min + b_high)  # the paper's "medium" budget
    print(f"budget axis: min={pretty_money(b_min)}  high={pretty_money(b_high)}")
    print(f"scheduling with HEFTBUDG under B = {pretty_money(budget)}\n")

    result = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget)
    sched = result.schedule
    print(f"schedule uses {sched.n_vms} VMs:")
    by_cat: dict = {}
    for vm in sched.used_vms:
        by_cat[sched.categories[vm].name] = by_cat.get(sched.categories[vm].name, 0) + 1
    for cat, count in sorted(by_cat.items()):
        print(f"  {count:3d} × {cat}")

    print("\nstochastic executions (actual weights ~ N(mean, sigma)):")
    print(f"{'run':>4} {'makespan':>10} {'cost':>9} {'within budget':>14}")
    for rep in range(10):
        run = execute_schedule(
            wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=rep)
        )
        print(
            f"{rep:>4} {pretty_seconds(run.makespan):>10} "
            f"{pretty_money(run.total_cost):>9} "
            f"{'yes' if run.respects_budget(budget) else 'NO':>14}"
        )


if __name__ == "__main__":
    main()
