#!/usr/bin/env python
"""Scheduling a real Pegasus DAX document.

The Pegasus workflow system describes workflows as DAX XML. This example

1. builds a small seismic-hazard DAX by hand (the same shape the public
   CyberShake DAXes have),
2. parses it with :func:`repro.read_dax` — runtimes become stochastic task
   weights, file sizes become edge data, unproduced files become external
   inputs,
3. schedules it under a budget and prints the VM plan, and
4. round-trips a *generated* workflow through ``write_dax`` to show the two
   representations are interchangeable.

Run:  python examples/dax_interop.py
"""

import io

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
    parse_dax,
    write_dax,
)

CYBERSHAKE_LIKE_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.6" name="hazard">
  <job id="sgt0" name="ExtractSGT" runtime="1100">
    <uses file="sgt_master.bin" link="input" size="547000000"/>
    <uses file="sgt_var0.bin" link="output" size="120000000"/>
  </job>
  <job id="sgt1" name="ExtractSGT" runtime="1080">
    <uses file="sgt_master.bin" link="input" size="547000000"/>
    <uses file="sgt_var1.bin" link="output" size="118000000"/>
  </job>
  <job id="synth0" name="SeismogramSynthesis" runtime="2400">
    <uses file="sgt_var0.bin" link="input" size="120000000"/>
    <uses file="seis0.grm" link="output" size="165000"/>
  </job>
  <job id="synth1" name="SeismogramSynthesis" runtime="2520">
    <uses file="sgt_var1.bin" link="input" size="118000000"/>
    <uses file="seis1.grm" link="output" size="166000"/>
  </job>
  <job id="peak0" name="PeakValCalcOkaya" runtime="120">
    <uses file="seis0.grm" link="input" size="165000"/>
    <uses file="peaks0.bsa" link="output" size="500"/>
  </job>
  <job id="peak1" name="PeakValCalcOkaya" runtime="130">
    <uses file="seis1.grm" link="input" size="166000"/>
    <uses file="peaks1.bsa" link="output" size="510"/>
  </job>
  <job id="zip" name="ZipPSA" runtime="500">
    <uses file="peaks0.bsa" link="input" size="500"/>
    <uses file="peaks1.bsa" link="input" size="510"/>
    <uses file="hazard_curves.zip" link="output" size="2000000"/>
  </job>
  <child ref="synth0"><parent ref="sgt0"/></child>
  <child ref="synth1"><parent ref="sgt1"/></child>
  <child ref="peak0"><parent ref="synth0"/></child>
  <child ref="peak1"><parent ref="synth1"/></child>
  <child ref="zip"><parent ref="peak0"/><parent ref="peak1"/></child>
</adag>
"""


def main() -> None:
    wf = parse_dax(CYBERSHAKE_LIKE_DAX, sigma_ratio=0.5)
    print(f"parsed {wf.name!r}: {wf.n_tasks} tasks, {wf.n_edges} edges")
    print(f"external input:  {wf.external_input_data / 1e6:.0f} MB "
          "(the unproduced sgt_master.bin reads)")
    print(f"external output: {wf.external_output_data / 1e6:.1f} MB\n")

    budget = 2.0
    result = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget)
    run = evaluate_schedule(wf, PAPER_PLATFORM, result.schedule)
    print(f"HEFTBUDG under ${budget:.2f}:")
    for vm in result.schedule.used_vms:
        tasks = result.schedule.tasks_on(vm)
        cat = result.schedule.categories[vm].name
        print(f"  vm{vm} ({cat}): {' -> '.join(tasks)}")
    print(f"planned makespan {run.makespan:.0f}s, cost ${run.total_cost:.4f}\n")

    generated = generate("ligo", 30, rng=1)
    dax_text = write_dax(generated)
    back = parse_dax(dax_text)
    print(f"round trip: generated {generated.n_tasks}-task LIGO -> "
          f"{len(dax_text.splitlines())} lines of DAX -> "
          f"{back.n_tasks} tasks, {back.n_edges} edges parsed back")


if __name__ == "__main__":
    main()
