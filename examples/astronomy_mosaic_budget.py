#!/usr/bin/env python
"""How much sky mosaic does a dollar buy? — a MONTAGE budget study.

An astronomy group renders image mosaics with Montage on a public cloud
under a fixed grant line. This example sweeps the initial budget from the
cheapest-possible allocation up to "rent whatever you like" and compares
every algorithm of the paper on the same 90-task MONTAGE instance:

* the budget-oblivious baselines (MIN-MIN, HEFT) — fast but may blow the
  grant;
* the budget-aware extensions (MIN-MINBUDG, HEFTBUDG) — never (well,
  almost never) overspend;
* the refined HEFTBUDG+ — squeezes the leftover budget into faster VMs.

Run:  python examples/astronomy_mosaic_budget.py [n_tasks]
"""

import sys

import numpy as np

from repro import PAPER_PLATFORM, evaluate_schedule, generate, make_scheduler
from repro.experiments.budgets import high_budget, minimal_budget

ALGORITHMS = ["minmin", "heft", "minmin_budg", "heft_budg", "heft_budg_plus"]


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 90
    wf = generate("montage", n_tasks, rng=7, sigma_ratio=0.5)
    b_min = minimal_budget(wf, PAPER_PLATFORM)
    b_high = high_budget(wf, PAPER_PLATFORM)
    budgets = np.linspace(b_min, b_high, 6)

    print(f"MONTAGE {n_tasks} tasks — budget sweep "
          f"(${b_min:.2f} … ${b_high:.2f})\n")
    header = f"{'budget':>9} |"
    for algo in ALGORITHMS:
        header += f" {algo:>22} |"
    print(header)
    print("-" * len(header))

    for budget in budgets:
        row = f"${budget:8.3f} |"
        for algo in ALGORITHMS:
            sched = make_scheduler(algo).schedule(
                wf, PAPER_PLATFORM, float(budget)
            ).schedule
            run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
            flag = "" if run.total_cost <= budget else "!"
            row += (
                f" {run.makespan:7.0f}s ${run.total_cost:6.3f}{flag}"
                f" {run.n_vms:3d}vm |"
            )
        print(row)

    print(
        "\ncells: makespan, simulated cost ('!' = budget violated), VMs used"
        "\nnote how the budget-aware columns hug the budget while the"
        "\nbaselines spend a constant amount regardless of it, and how"
        "\nHEFTBUDG+ converts leftover dollars into shorter makespans."
    )


if __name__ == "__main__":
    main()
