#!/usr/bin/env python
"""A mixed science campaign under one grant: workflow ensembles.

The paper's related work ([19], §II) studies *ensembles* — several
workflows with priorities submitted together under a global budget, where
the operator wants to maximize completed priority. This example runs a
campaign of five workflows (two urgent, three routine) through the
ensemble extension:

1. admission by priority density under the global budget and a deadline;
2. per-workflow budget chunks scheduled with HEFTBUDG;
3. leftover budget redistributed to the admitted high-priority members;
4. a fleet-utilization report for the winning plan.

Run:  python examples/ensemble_campaign.py [budget_dollars]
"""

import sys

from repro import PAPER_PLATFORM, evaluate_schedule, generate
from repro.experiments.budgets import minimal_budget
from repro.scheduling.ensemble import EnsembleMember, schedule_ensemble
from repro.simulation.usage import analyze_usage


def main() -> None:
    members = [
        EnsembleMember(generate("montage", 30, rng=1, sigma_ratio=0.5,
                                name="mosaic-A"), priority=5.0),
        EnsembleMember(generate("cybershake", 30, rng=2, sigma_ratio=0.5,
                                name="hazard-map"), priority=4.0),
        EnsembleMember(generate("montage", 20, rng=3, sigma_ratio=0.5,
                                name="mosaic-B"), priority=2.0),
        EnsembleMember(generate("epigenomics", 24, rng=4, sigma_ratio=0.5,
                                name="methylation"), priority=1.0),
        EnsembleMember(generate("sipht", 20, rng=5, sigma_ratio=0.5,
                                name="srna-scan"), priority=1.0),
    ]
    needed = sum(minimal_budget(m.workflow, PAPER_PLATFORM) for m in members)
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8 * needed
    deadline = 20_000.0

    print(f"campaign: {len(members)} workflows, global budget ${budget:.2f} "
          f"(bare minimum for all: ${needed:.2f}), deadline {deadline:.0f}s\n")

    out = schedule_ensemble(
        members, PAPER_PLATFORM, budget, deadline=deadline
    )
    print(f"admitted {out.n_admitted}/{len(members)} "
          f"(priority {out.total_priority:g} of "
          f"{sum(m.priority for m in members):g}), "
          f"planned spend ${out.planned_spend:.3f}\n")

    print(f"{'workflow':>14} {'prio':>5} {'share':>8} {'makespan':>9} "
          f"{'cost':>8} {'VMs':>4}")
    for a in sorted(out.admitted, key=lambda x: -x.member.priority):
        print(f"{a.member.workflow.name:>14} {a.member.priority:>5g} "
              f"${a.budget_share:>7.3f} {a.planned_makespan:>8.0f}s "
              f"${a.planned_cost:>7.3f} {a.schedule.n_vms:>4}")
    for m in out.rejected:
        print(f"{m.workflow.name:>14} {m.priority:>5g} {'—— rejected ——':>32}")

    if out.admitted:
        top = max(out.admitted, key=lambda a: a.member.priority)
        run = evaluate_schedule(top.member.workflow, PAPER_PLATFORM, top.schedule)
        usage = analyze_usage(run)
        print(f"\nfleet utilization of {top.member.workflow.name!r}: "
              f"{usage.mean_utilization:.0%} "
              f"({len(usage.vms)} VMs; worst "
              f"{usage.least_utilized(1)[0].utilization:.0%})")


if __name__ == "__main__":
    main()
