"""Table II regenerator: the platform constants.

Prints the instantiated Table II and micro-benchmarks platform
construction and its derived quantities (these sit on every scheduler's
hot path).
"""

from repro.experiments.tables import table2_rows
from repro.platform.cloud import PAPER_PLATFORM, make_linear_platform
from repro.workflow.generators import generate


def test_table2_constants_print(benchmark, capsys):
    rows = benchmark(table2_rows)
    with capsys.disabled():
        print("\n=== Table II (platform constants, this reproduction) ===")
        for key, value in rows:
            print(f"  {key:>14s}: {value}")
    keys = dict(rows)
    assert keys["categories"] == "3"


def test_platform_construction(benchmark):
    platform = benchmark(make_linear_platform)
    assert platform.n_categories == 3
    assert platform.cheapest.hourly_cost <= platform.most_expensive.hourly_cost


def test_datacenter_rate_derivation(benchmark):
    wf = generate("montage", 30, rng=1)
    rate = benchmark(PAPER_PLATFORM.datacenter_rate, wf)
    assert rate > 0.0
