"""Ablations of HEFTBUDG's design choices (DESIGN.md §6).

Two decisions the paper motivates but does not isolate:

* **pot reclamation** (Algorithm 2's leftover carry-over): §V-B notes the
  division "is somewhat unfair to the first scheduled tasks, which have no
  access to any leftover"; without the pot every task is confined to its own
  share and mid-budget makespans degrade.
* **conservative weights** (``w̄ + σ`` vs plain ``w̄``): planning with means
  under-reserves; at sigma = 100% the stochastic executions overrun the
  budget noticeably more often.
"""

import pytest

from conftest import PAPER_SCALE
from repro.experiments.budgets import high_budget, minimal_budget
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.heft import HeftBudgScheduler
from repro.simulation.executor import (
    evaluate_schedule,
    execute_schedule,
    sample_weights,
)
from repro.workflow.generators import generate

N_TASKS = 90 if PAPER_SCALE else 30
N_REPS = 25 if PAPER_SCALE else 10


def _pot_ablation():
    rows = []
    for seed in range(3):
        wf = generate("montage", N_TASKS, rng=seed, sigma_ratio=0.5)
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        budget = b_min + 0.35 * (b_high - b_min)
        with_pot = HeftBudgScheduler(use_pot=True).schedule(
            wf, PAPER_PLATFORM, budget
        )
        without = HeftBudgScheduler(use_pot=False).schedule(
            wf, PAPER_PLATFORM, budget
        )
        rows.append(
            (
                seed,
                evaluate_schedule(wf, PAPER_PLATFORM, with_pot.schedule).makespan,
                evaluate_schedule(wf, PAPER_PLATFORM, without.schedule).makespan,
            )
        )
    return rows


def test_pot_reclamation_helps(benchmark, capsys):
    rows = benchmark.pedantic(_pot_ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== pot-reclamation ablation (MONTAGE-{N_TASKS}) ===")
        print(f"{'seed':>5} {'with pot':>10} {'without':>10}")
        for seed, with_pot, without in rows:
            print(f"{seed:>5} {with_pot:>9.0f}s {without:>9.0f}s")
    total_with = sum(r[1] for r in rows)
    total_without = sum(r[2] for r in rows)
    assert total_with <= total_without * 1.02, (
        "pot reclamation should not hurt on aggregate"
    )


def _weights_ablation():
    wf = generate("ligo", N_TASKS, rng=5, sigma_ratio=1.0)
    b_min = minimal_budget(wf, PAPER_PLATFORM)
    b_high = high_budget(wf, PAPER_PLATFORM)
    budget = b_min + 0.4 * (b_high - b_min)
    rows = {}
    for label, conservative in (("w+sigma", True), ("mean", False)):
        sched = HeftBudgScheduler(use_conservative=conservative).schedule(
            wf, PAPER_PLATFORM, budget
        ).schedule
        valid = 0
        for rep in range(N_REPS):
            run = execute_schedule(
                wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=rep)
            )
            valid += run.respects_budget(budget)
        rows[label] = valid / N_REPS
    return budget, rows


def test_conservative_weights_protect_budget(benchmark, capsys):
    budget, rows = benchmark.pedantic(_weights_ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== planning-weights ablation (LIGO-{N_TASKS}, "
              f"sigma = 100%, B = ${budget:.3f}) ===")
        for label, valid in rows.items():
            print(f"  {label:>8}: {100 * valid:.0f}% of runs within budget")
    assert rows["w+sigma"] >= rows["mean"] - 1e-9, (
        "conservative planning must not be less safe than mean planning"
    )
