"""Service-layer performance: cache hit path, engine, and HTTP gateway.

Not a paper artefact — these guard the serving substrate added on top of
the reproduction. The cache hit path must stay microseconds (it carries
repeat traffic), the sync engine path milliseconds for mid-size workflows,
and the HTTP gateway must not add more than low-millisecond overhead on
top of the engine.
"""

import json
import urllib.request

import pytest

from repro.service import SchedulingService
from repro.service.http import start_gateway


def _request(n_tasks=50, amount=2.0, n_reps=0):
    return {
        "workflow": {"family": "montage", "n_tasks": n_tasks, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps},
    }


@pytest.fixture(scope="module")
def service():
    with SchedulingService(max_workers=4, cache_size=256) as svc:
        yield svc


def test_cache_hit_path(benchmark, service):
    req = _request()
    service.schedule(req)  # warm the cache
    resp = benchmark(service.schedule, req)
    assert resp.cached


def test_cold_schedule_50_tasks(benchmark, service):
    counter = iter(range(10 ** 9))

    def cold():
        # distinct budget every round => guaranteed cache miss
        return service.schedule(_request(amount=100.0 + next(counter)))

    resp = benchmark(cold)
    assert not resp.cached


def test_schedule_with_evaluation_reps(benchmark, service):
    counter = iter(range(10 ** 9))

    def cold_with_reps():
        return service.schedule(
            _request(amount=200.0 + next(counter), n_reps=10)
        )

    resp = benchmark(cold_with_reps)
    assert resp.evaluation["n_reps"] == 10


def test_http_gateway_cached_roundtrip(benchmark, service):
    gw = start_gateway(service)
    try:
        body = json.dumps(_request()).encode()
        service.schedule(_request())  # warm

        def post():
            req = urllib.request.Request(
                gw.url + "/v1/schedule", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=60) as fh:
                return json.load(fh)

        payload = benchmark(post)
        assert payload["cached"]
    finally:
        gw.shutdown()


def test_batch_throughput_async(benchmark, service):
    counter = iter(range(10 ** 9))

    def batch_of_8():
        base = 10_000.0 + 10 * next(counter)
        ids = service.submit_batch(
            [_request(n_tasks=30, amount=base + i) for i in range(8)]
        )
        for job_id in ids:
            service.result(job_id, timeout=120)
        return ids

    ids = benchmark(batch_of_8)
    assert len(ids) == 8
