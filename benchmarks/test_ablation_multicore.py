"""Ablation: multi-core VMs (the model extension of §III-B, footnote 1).

The paper's model gives category ``k`` VMs ``n_k`` processors but its
evaluation uses one; this ablation quantifies what consolidation onto
multi-core VMs buys under the same *per-core* pricing: co-located tasks
skip the datacenter round-trip entirely, so transfer-bound workflows gain
makespan AND money. Asserted: with dual-core VMs at 2× hourly cost (same
$/core·s), HEFT's makespan does not degrade and the number of enrolled VMs
drops.
"""

import pytest

from conftest import PAPER_SCALE
from repro.platform.cloud import make_linear_platform
from repro.scheduling.registry import make_scheduler
from repro.simulation.executor import evaluate_schedule
from repro.workflow.generators import generate

N_TASKS = 90 if PAPER_SCALE else 45


def _compare():
    single = make_linear_platform(name="1core")
    dual = make_linear_platform(
        cores=2, base_hourly_cost=2 * 0.0425, name="2core"
    )
    rows = []
    for family in ("cybershake", "ligo", "montage"):
        wf = generate(family, N_TASKS, rng=7, sigma_ratio=0.5)
        out = {}
        for label, platform in (("1core", single), ("2core", dual)):
            sched = make_scheduler("heft").schedule(
                wf, platform, float("inf")
            ).schedule
            run = evaluate_schedule(wf, platform, sched)
            out[label] = (run.makespan, run.total_cost, run.n_vms)
        rows.append((family, out))
    return rows


def test_multicore_consolidation(benchmark, capsys):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== multi-core consolidation (HEFT, {N_TASKS} tasks) ===")
        print(f"{'family':>12} {'cores':>6} {'makespan':>10} {'cost':>9} {'VMs':>5}")
        for family, out in rows:
            for label in ("1core", "2core"):
                mk, cost, vms = out[label]
                print(f"{family:>12} {label:>6} {mk:>9.0f}s ${cost:>8.4f} {vms:>5}")
    for family, out in rows:
        mk1, cost1, vms1 = out["1core"]
        mk2, cost2, vms2 = out["2core"]
        assert vms2 <= vms1, family
        assert mk2 <= mk1 * 1.05, family
