"""Table III regenerator: CPU time to compute one schedule.

Table III(a): per-algorithm scheduling time on a MONTAGE workflow at the
"low" (B_min), "medium" and "high" budgets. Table III(b): scheduling time
vs workflow size at a high budget. Absolute numbers are hardware-bound;
the *relationships* the paper reports are asserted:

* the refined variants cost orders of magnitude more than the one-pass
  algorithms (HEFTBUDG ~2.6s vs HEFTBUDG+ ~380s in the paper — a ~150×
  ratio; we require >= 20×);
* scheduling time grows super-linearly with workflow size.

Each ``test_schedule_*`` is a pytest-benchmark micro-benchmark of one
algorithm — the direct regeneration of one table cell.
"""

import math

import pytest

from conftest import PAPER_SCALE
from repro.experiments.budgets import high_budget, medium_budget, minimal_budget
from repro.experiments.tables import table3a, table3b
from repro.experiments.report import render_cpu_table
from repro.scheduling.registry import make_scheduler
from repro.workflow.generators import generate

N_TASKS = 90 if PAPER_SCALE else 30
ONE_PASS = ("minmin", "heft", "minmin_budg", "heft_budg", "bdt", "cg")
REFINED = ("heft_budg_plus", "heft_budg_plus_inv", "cg_plus")


@pytest.fixture(scope="module")
def wf():
    return generate("montage", N_TASKS, rng=2018, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def budgets(wf):
    from repro.platform.cloud import PAPER_PLATFORM

    return {
        "low": minimal_budget(wf, PAPER_PLATFORM),
        "medium": medium_budget(wf, PAPER_PLATFORM),
        "high": high_budget(wf, PAPER_PLATFORM),
    }


@pytest.mark.parametrize("algorithm", ONE_PASS)
@pytest.mark.parametrize("level", ["low", "medium", "high"])
def test_schedule_cpu_time(benchmark, wf, budgets, algorithm, level):
    """One Table III(a) cell: (algorithm, budget level)."""
    from repro.platform.cloud import PAPER_PLATFORM

    scheduler = make_scheduler(algorithm)
    budget = math.inf if algorithm in ("minmin", "heft") else budgets[level]
    result = benchmark(scheduler.schedule, wf, PAPER_PLATFORM, budget)
    assert result.schedule.n_vms >= 1


@pytest.mark.parametrize("algorithm", REFINED)
def test_schedule_cpu_time_refined(benchmark, wf, budgets, algorithm):
    """Table III(a) refined rows (medium budget only — they are slow)."""
    from repro.platform.cloud import PAPER_PLATFORM

    scheduler = make_scheduler(algorithm)
    result = benchmark.pedantic(
        scheduler.schedule, args=(wf, PAPER_PLATFORM, budgets["medium"]),
        rounds=1, iterations=1,
    )
    assert result.schedule.n_vms >= 1


def test_refined_orders_of_magnitude_slower(benchmark, wf, budgets):
    """The paper's scalability claim (§IV-B, Table III)."""
    import time

    from repro.platform.cloud import PAPER_PLATFORM

    def measure(name):
        scheduler = make_scheduler(name)
        t0 = time.perf_counter()
        scheduler.schedule(wf, PAPER_PLATFORM, budgets["medium"])
        return time.perf_counter() - t0

    t_plain = max(measure("heft_budg"), 1e-4)
    t_plus = benchmark.pedantic(
        lambda: measure("heft_budg_plus"), rounds=1, iterations=1
    )
    assert t_plus / t_plain >= 20.0, (
        f"expected >=20x gap, got {t_plus / t_plain:.1f}x"
    )


def test_table3b_growth_with_size(benchmark, capsys):
    """Table III(b): time vs size (super-linear growth)."""
    sizes = (30, 60, 90, 400) if PAPER_SCALE else (30, 60, 90)
    table = benchmark.pedantic(
        lambda: table3b(sizes=sizes, algorithms=("heft_budg",), repeats=2),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_cpu_table(table, title="Table III(b)"))
    times = [table[s][0].mean for s in sizes]
    assert times == sorted(times)
    # super-linear: tripling tasks more than triples the time
    assert times[-1] / times[0] > (sizes[-1] / sizes[0])


def test_table3a_full_print(benchmark, capsys):
    """Regenerate and print the whole Table III(a)."""
    table = benchmark.pedantic(
        lambda: table3a(n_tasks=N_TASKS, algorithms=ONE_PASS, repeats=3),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_cpu_table(table, title="Table III(a)"))
    for cells in table.values():
        assert all(c.mean > 0 for c in cells)
