"""Substrate performance: event-driven executor and planner throughput.

Not a paper artefact — these guard the simulator's own scalability, which
bounds how far the (re-)scheduling experiments can be pushed (Table III(b)
goes to 400 tasks; the executor must stay comfortably sub-second there).
"""

import pytest

from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.registry import make_scheduler
from repro.simulation.executor import (
    conservative_weights,
    execute_schedule,
)
from repro.workflow.analysis import bottom_levels
from repro.workflow.generators import generate, generate_random_layered


@pytest.fixture(scope="module")
def big_wf():
    return generate("montage", 400, rng=1, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def big_schedule(big_wf):
    return make_scheduler("heft_budg").schedule(
        big_wf, PAPER_PLATFORM, 100.0
    ).schedule


def test_executor_400_tasks(benchmark, big_wf, big_schedule):
    weights = conservative_weights(big_wf)
    result = benchmark(
        execute_schedule, big_wf, PAPER_PLATFORM, big_schedule, weights,
        validate=False,
    )
    assert len(result.tasks) == 400
    assert result.makespan > 0


def test_bottom_levels_1000_tasks(benchmark):
    wf = generate_random_layered(1000, depth=20, rng=2)
    ranks = benchmark(
        bottom_levels, wf, PAPER_PLATFORM.mean_speed, PAPER_PLATFORM.bandwidth
    )
    assert len(ranks) == 1000


def test_heftbudg_scheduling_400_tasks(benchmark, big_wf):
    scheduler = make_scheduler("heft_budg")
    result = benchmark.pedantic(
        scheduler.schedule, args=(big_wf, PAPER_PLATFORM, 100.0),
        rounds=1, iterations=1,
    )
    assert result.schedule.n_vms >= 1
