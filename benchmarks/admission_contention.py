"""Mixed-tenant admission contention scenario (the CI admission-gate).

Three tenants with different policies hammer one service at once:

- ``gold``   — weight 2.0, generous cost budget, 2 concurrent slots;
- ``silver`` — weight 1.0, generous cost budget, 2 concurrent slots;
- ``free``   — tiny cost budget, so most of its burst must be refused
  with a typed ``budget_exhausted``.

The gate asserts the admission layer's contract under contention:

1. **No overspend** — every tenant's committed window spend stays within
   its ``cost_budget``.
2. **Typed refusals only** — every rejection carries a known reason.
3. **Bounded waiting** — no admitted job waited longer than the bound.
4. **No losses** — every admitted job reaches ``done``.

Throughput and per-tenant accounting land in a JSON report compatible
with ``BENCH_PR6.json``::

    python benchmarks/admission_contention.py --out BENCH_PR6.json
"""

import argparse
import json
import sys
import time

from repro.admission import TenantPolicy, TenantRegistry
from repro.errors import AdmissionRejected
from repro.service import SchedulingService

MAX_WAIT_S = 60.0
KNOWN_REASONS = {"rate_limited", "budget_exhausted", "queue_full"}


def request_dict(amount, seed, priority):
    """One small schedule+evaluate request (seconds, not minutes)."""
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": 2, "seed": seed},
        "priority": priority,
    }


def run_scenario(workers=2):
    """Run the contention burst; returns (report, failures)."""
    registry = TenantRegistry({
        "gold": TenantPolicy(name="gold", weight=2.0, cost_budget=50.0,
                             max_concurrent=2),
        "silver": TenantPolicy(name="silver", weight=1.0, cost_budget=50.0,
                               max_concurrent=2),
        "free": TenantPolicy(name="free", cost_budget=0.6),
    })
    bursts = []
    for i in range(12):
        bursts.append(("gold", request_dict(2.0, 100 + i, "batch")))
        bursts.append(("silver", request_dict(2.0, 200 + i, "batch")))
    for i in range(8):
        bursts.append(("free", request_dict(0.5, 300 + i, "best_effort")))

    admitted = {"gold": [], "silver": [], "free": []}
    rejected = {"gold": 0, "silver": 0, "free": 0}
    failures = []
    started = time.perf_counter()
    with SchedulingService(max_workers=workers, cache_size=0,
                           tenants=registry) as svc:
        for tenant, body in bursts:
            body = dict(body, tenant=tenant)
            try:
                admitted[tenant].append(svc.submit(body))
            except AdmissionRejected as exc:
                rejected[tenant] += 1
                if exc.reason not in KNOWN_REASONS:
                    failures.append(
                        f"untyped rejection reason {exc.reason!r}"
                    )
        svc.wait_all(timeout=300)
        elapsed = time.perf_counter() - started

        done = sum(
            1
            for jobs in admitted.values()
            for job_id in jobs
            if svc.job(job_id).state == "done"
        )
        n_admitted = sum(len(jobs) for jobs in admitted.values())
        if done != n_admitted:
            failures.append(f"only {done}/{n_admitted} admitted jobs done")

        queue_stats = svc.stats()["admission"]["queue"]
        if queue_stats["max_wait_s"] > MAX_WAIT_S:
            failures.append(
                f"max queue wait {queue_stats['max_wait_s']:.1f}s "
                f"exceeds the {MAX_WAIT_S:.0f}s bound"
            )

        per_tenant = {}
        for name in ("gold", "silver", "free"):
            spent = registry.spent_window(name)
            budget = registry.policy(name).cost_budget
            if spent > budget + 1e-9:
                failures.append(
                    f"tenant {name} overspent: {spent:.4f} > {budget}"
                )
            per_tenant[name] = {
                "admitted": len(admitted[name]),
                "rejected": rejected[name],
                "spent_window": round(spent, 6),
                "cost_budget": budget,
            }
        if not rejected["free"]:
            failures.append("free tier was never refused — budget gate idle")

    report = {
        "config": {"workers": workers, "jobs_offered": len(bursts),
                   "n_tasks": 15, "n_reps": 2},
        "throughput_jobs_per_s": round(done / elapsed, 3) if elapsed else 0.0,
        "elapsed_s": round(elapsed, 3),
        "jobs_done": done,
        "per_tenant": per_tenant,
        "queue": {k: queue_stats[k] for k in
                  ("pushed", "popped", "promoted_pops", "max_wait_s",
                   "mean_wait_s")},
    }
    return report, failures


def main(argv=None):
    """CLI entry point; exits non-zero on any contract violation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    report, failures = run_scenario(workers=args.workers)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"admission_contention": report}, fh, indent=1,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
