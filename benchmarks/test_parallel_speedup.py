"""Parallel execution fabric: speedup and bounded dispatch overhead.

Not a paper artefact — this guards ``repro.parallel`` itself. Three
claims:

* results are identical at every worker count (the cheap end of the
  parity contract; ``tests/parallel/test_parity.py`` does it exhaustively);
* tiny replication counts **auto-fall back to serial** — process dispatch
  must never be paid where it cannot win (``MIN_SHARD_SIZE`` floor);
* with real cores available, a 4-worker sweep beats serial wall-clock.
  The speedup assertion self-skips below 2 usable cores (single-core CI
  runners and containers can only measure overhead, not speedup).
"""

import os
import time
from dataclasses import replace

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point, run_sweep
from repro.parallel import MIN_SHARD_SIZE, ShardPlan
from repro.platform.cloud import PAPER_PLATFORM
from repro.workflow.generators import generate

WORKER_COUNTS = [0, 2, 4]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sweep_config() -> ExperimentConfig:
    """Small grid for the correctness cases (sub-second serial)."""
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=20, n_instances=2,
        budgets_per_workflow=3, n_reps=10, seed=2018,
        algorithms=("heft_budg", "minmin_budg"),
    )


def speedup_config() -> ExperimentConfig:
    """Compute-heavy grid for the timing cases: 20 points × 50 reps of a
    60-task simulation (~2 s serial), enough for fan-out to amortize
    fork + pickle dispatch."""
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=60, n_instances=2,
        budgets_per_workflow=5, n_reps=50, seed=2018,
        algorithms=("heft_budg", "minmin_budg"),
    )


def timed_sweep(workers, config=None):
    config = config or sweep_config()
    start = time.perf_counter()
    records = run_sweep(config, workers=workers)
    return time.perf_counter() - start, records


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sweep_results_identical_at_any_worker_count(workers):
    _, records = timed_sweep(workers)
    _, serial = timed_sweep(0)
    strip = lambda rs: [replace(r, sched_seconds=0.0) for r in rs]  # noqa: E731
    assert strip(records) == strip(serial)


def test_tiny_inputs_fall_back_to_serial(monkeypatch):
    # Below the shard-size floor the plan is serial and run_point must not
    # build a pool at all — dispatch overhead on 7 reps can never pay off.
    n_reps = 2 * MIN_SHARD_SIZE - 1
    assert ShardPlan.plan(n_reps, workers=4).is_serial

    constructed = []

    class NoPool:
        def __init__(self, *args, **kwargs):
            constructed.append(args)
            raise AssertionError("WorkerPool built for a serial-size input")

    monkeypatch.setattr(runner_mod, "WorkerPool", NoPool)
    wf = generate("montage", 15, rng=9, sigma_ratio=0.5)
    records = run_point(
        wf, PAPER_PLATFORM, "heft_budg", 2.0, n_reps, 9, workers=4
    )
    assert len(records) == n_reps and not constructed


def test_parallel_overhead_bounded():
    # Even with a single core (no speedup possible), fan-out must not blow
    # up wall-clock: fork + pickle overhead stays a small multiple.
    config = speedup_config()
    serial_s, _ = timed_sweep(0, config)
    parallel_s, _ = timed_sweep(2, config)
    assert parallel_s < max(2.0 * serial_s, serial_s + 5.0)


def test_four_worker_sweep_speedup():
    cores = usable_cores()
    if cores < 2:
        pytest.skip(f"only {cores} usable core(s): cannot measure speedup")
    config = speedup_config()
    serial_s, _ = timed_sweep(0, config)
    parallel_s, _ = timed_sweep(4, config)
    # 4 workers on >=4 cores should near-halve the wall clock; on 2-3
    # cores demand only a modest win.
    floor = 1.6 if cores >= 4 else 1.15
    assert serial_s / parallel_s > floor, (
        f"speedup {serial_s / parallel_s:.2f}x below {floor}x "
        f"({cores} cores, serial {serial_s:.2f}s, 4w {parallel_s:.2f}s)"
    )
