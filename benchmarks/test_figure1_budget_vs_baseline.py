"""Figure 1 regenerator: MIN-MIN / HEFT vs their budget-aware extensions.

Reproduces the 3×3 grid (makespan / cost / #VMs vs initial budget, one row
per workflow family) and asserts its published shapes:

* the budget constraint is respected by the BUDG variants at (almost)
  every budget (§V-B: "respected in almost all cases");
* makespan decreases as the budget grows and converges to the baseline's;
* the baselines spend a budget-independent amount.

The benchmark measures one full figure regeneration at the selected scale
(see conftest.py; ``REPRO_BENCH_SCALE=paper`` for the §V-A protocol).
"""

import pytest

from conftest import scaled_config
from repro.experiments.figures import figure1
from repro.experiments.report import render_figure

BUDGETED = ("minmin_budg", "heft_budg")
BASELINES = ("minmin", "heft")


def _check_shapes(data):
    for algorithm in BUDGETED:
        baseline = "heft" if "heft" in algorithm else "minmin"
        for family in data.families():
            series = data.get(family, algorithm)
            # budget respected beyond the minimum-budget regime
            for point in series[1:]:
                assert point.stats.valid_fraction >= 0.85, (
                    f"{algorithm}/{family} at ${point.budget_mean:.3f}: "
                    f"{point.stats.valid_fraction:.0%} valid"
                )
            # makespan weakly decreasing along the budget axis
            assert series[-1].stats.makespan_mean <= (
                series[0].stats.makespan_mean * 1.05
            )
            # convergence to the baseline at high budget
            base_last = data.get(family, baseline)[-1].stats.makespan_mean
            assert series[-1].stats.makespan_mean <= base_last * 1.15
    for algorithm in BASELINES:
        for family in data.families():
            costs = [p.stats.cost_mean for p in data.get(family, algorithm)]
            assert (max(costs) - min(costs)) / max(costs) < 0.25


def test_figure1_regeneration(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figure1(scaled_config()), rounds=1, iterations=1
    )
    _check_shapes(data)
    with capsys.disabled():
        for metric in ("makespan", "cost", "n_vms"):
            print("\n" + render_figure(data, metric=metric))
