"""CI load-observatory gate: seeded replay against a live gateway.

Contract checks (any violation exits non-zero):

1. **Determinism** — the same :class:`~repro.loadgen.ArrivalConfig`
   seed yields a bit-identical request sequence (arrival offsets + spec
   fingerprints + tenant/priority draws) regardless of driver
   concurrency: two replays at different worker counts must report the
   same ``sequence_fingerprint``.
2. **Open-loop fidelity** — a paced mixed-tenant replay against a live
   HTTP gateway achieves a completed-request rate within tolerance of
   the offered rate, with zero transport errors and zero refusals under
   uncapped tenants.
3. **Stage-sum completeness** — every archived ``load_run`` row reports
   ``n_stage_violations == 0``: each response's stage decomposition sums
   to its wall time within tolerance.
4. **Tail latency** — the end-to-end p99 of the live replay stays under
   the threshold.
5. **Observatory round-trip** — a large in-process replay archives a
   ledger ``load_run`` row whose per-stage percentiles the HTML report
   renders, and the dashboard draws frames from the same service.

The JSON report doubles as the ``BENCH_PR8.json`` payload: a
``load_gate`` section with the measured numbers plus a
``load_baseline`` section that ``repro-exp ledger regress`` gates
future runs against.
"""

import argparse
import io
import json
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.loadgen import ArrivalConfig, Dashboard, LoadDriver  # noqa: E402
from repro.loadgen import generate_sequence, sequence_fingerprint  # noqa: E402
from repro.loadgen.report import render_load_report  # noqa: E402
from repro.obs.ledger import RunLedger, load_baseline_from_ledger  # noqa: E402
from repro.service.engine import SchedulingService  # noqa: E402
from repro.service.http import start_gateway  # noqa: E402


def gate_config(*, rate, n_requests, seed=1234):
    """The gate's mixed-tenant, mixed-priority MMPP workload."""
    return ArrivalConfig(
        process="mmpp",
        rate=rate,
        n_requests=n_requests,
        seed=seed,
        burstiness=3.0,
        mean_burst_s=1.0,
        mean_calm_s=4.0,
        families=("montage", "ligo"),
        n_tasks=(15,),
        algorithms=("heft_budg",),
        budgets=(2.0,),
        spec_seeds=2,
        n_reps=1,
        tenants={"gold": 3.0, "silver": 2.0, "free": 1.0},
        priorities={"interactive": 0.3, "batch": 0.5, "best_effort": 0.2},
    )


def check_determinism(config, failures):
    """Same seed → bit-identical plan; replays never touch the sequence."""
    first = generate_sequence(config)
    second = generate_sequence(config)
    fp = sequence_fingerprint(first)
    if fp != sequence_fingerprint(second):
        failures.append("same-seed plans differ — sequence is not pure")
    svc = SchedulingService(cache_size=256)
    try:
        narrow = LoadDriver(svc, concurrency=2, pace=False)
        wide = LoadDriver(svc, concurrency=12, pace=False)
        small = ArrivalConfig.from_dict(
            {**config.to_dict(), "n_requests": 100}
        )
        run_a = narrow.run(small)
        run_b = wide.run(small)
    finally:
        svc.close()
    if run_a.sequence_fp != run_b.sequence_fp:
        failures.append(
            "sequence fingerprint changed with driver concurrency "
            f"(2 workers {run_a.sequence_fp[:12]} vs "
            f"12 workers {run_b.sequence_fp[:12]})"
        )
    return {
        "sequence_fingerprint": fp,
        "concurrency_invariant": run_a.sequence_fp == run_b.sequence_fp,
    }


def run_live_replay(config, ledger_path, *, rate_tolerance, p99_limit_s,
                    concurrency, failures):
    """Paced open-loop replay against a live HTTP gateway."""
    planned = generate_sequence(config)
    # The nominal rate is a long-run average; at CI horizons the MMPP
    # realization can span more or less wall time. Replay fidelity is
    # therefore gated against the *realized* planned rate — achieved
    # only falls short of it when the driver lags or requests fail.
    planned_span = planned[-1].offset_s if planned else 0.0
    realized_offered = (
        len(planned) / planned_span if planned_span > 0 else 0.0
    )
    svc = SchedulingService(max_workers=2, cache_size=512)
    gateway = start_gateway(svc)
    try:
        driver = LoadDriver(gateway.url, concurrency=concurrency, pace=True)
        result = driver.replay(planned, config, label="live-gate")
        with RunLedger(ledger_path) as ledger:
            load_id = ledger.record_load_run(result.to_row())
    finally:
        gateway.shutdown()
        svc.close()

    achieved = result.achieved_rps
    offered = realized_offered
    rate_error = abs(achieved - offered) / offered if offered else 1.0
    if rate_error > rate_tolerance:
        failures.append(
            f"achieved rate {achieved:.1f} req/s deviates "
            f"{rate_error:.1%} from offered {offered:.1f} req/s "
            f"(tolerance {rate_tolerance:.0%})"
        )
    if result.outcomes.get("error", 0):
        failures.append(
            f"{result.outcomes['error']} transport error(s) in the "
            "live replay"
        )
    refused = result.refusals
    if refused:
        failures.append(f"unexpected refusals under uncapped tenants: "
                        f"{refused}")
    pcts = result.percentiles()
    if pcts.get("p99", 0.0) > p99_limit_s:
        failures.append(
            f"live p99 {pcts['p99'] * 1e3:.1f}ms exceeds "
            f"{p99_limit_s * 1e3:.0f}ms"
        )
    if result.n_stage_violations:
        failures.append(
            f"{result.n_stage_violations} response(s) whose stage sums "
            "do not match wall time"
        )
    return {
        "load_id": load_id,
        "n_requests": result.n_requests,
        "nominal_rps": round(config.rate, 3),
        "offered_rps": round(offered, 3),
        "achieved_rps": round(achieved, 3),
        "rate_error_pct": round(rate_error * 100.0, 2),
        "duration_s": round(result.duration_s, 3),
        "outcomes": dict(sorted(result.outcomes.items())),
        "p50_ms": round(pcts.get("p50", 0.0) * 1e3, 3),
        "p95_ms": round(pcts.get("p95", 0.0) * 1e3, 3),
        "p99_ms": round(pcts.get("p99", 0.0) * 1e3, 3),
        "max_send_lag_s": round(result.max_send_lag_s, 4),
        "cost_total": round(result.cost_total, 4),
        "sequence_fingerprint": result.sequence_fp,
    }


def run_big_replay(ledger_path, *, n_requests, failures):
    """Large in-process replay; report + dashboard round-trip."""
    config = ArrivalConfig(
        process="poisson",
        rate=float(max(n_requests, 1)),  # plan spans ~1s; replay unpaced
        n_requests=n_requests,
        seed=77,
        families=("montage", "ligo"),
        n_tasks=(15,),
        algorithms=("heft_budg",),
        budgets=(2.0,),
        spec_seeds=3,
        n_reps=1,
        tenants={"gold": 1.0, "silver": 1.0},
        priorities={"interactive": 0.4, "batch": 0.6},
    )
    svc = SchedulingService(cache_size=512)
    try:
        driver = LoadDriver(svc, concurrency=8, pace=False)
        result = driver.run(config, label="big-replay")
        with RunLedger(ledger_path) as ledger:
            load_id = ledger.record_load_run(result.to_row())
            row = ledger.load_run(load_id)
        # The HTML report must carry the row's stage percentiles.
        html_doc = render_load_report([row])
        for stage in ("admit", "cache"):
            if stage not in html_doc:
                failures.append(
                    f"stage {stage!r} missing from the HTML report"
                )
        # The dashboard must draw frames off the same live service.
        frames = Dashboard(svc, interval_s=0.05, ansi=False).run(
            iterations=2, stream=io.StringIO(), events=False
        )
        if frames != 2:
            failures.append(f"dashboard drew {frames} frame(s), wanted 2")
    finally:
        svc.close()
    if result.outcomes.get("error", 0):
        failures.append(
            f"{result.outcomes['error']} error(s) in the big replay"
        )
    if result.n_stage_violations:
        failures.append(
            f"big replay: {result.n_stage_violations} stage-sum "
            "violation(s)"
        )
    if not row.stages or "p99" not in next(iter(row.stages.values())):
        failures.append("archived load_run row lacks stage percentiles")
    pcts = result.percentiles()
    return {
        "load_id": load_id,
        "n_requests": result.n_requests,
        "achieved_rps": round(result.achieved_rps, 1),
        "duration_s": round(result.duration_s, 3),
        "outcomes": dict(sorted(result.outcomes.items())),
        "p99_ms": round(pcts.get("p99", 0.0) * 1e3, 3),
        "stages_recorded": sorted(row.stages),
        "report_bytes": len(html_doc),
        "dashboard_frames": frames,
    }


def main(argv=None):
    """CLI entry point; exits non-zero on any contract violation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="paced live replay length, seconds "
                        "(default: 60)")
    parser.add_argument("--rate", type=float, default=120.0,
                        help="offered rate for the live replay "
                        "(default: 120 req/s)")
    parser.add_argument("--rate-tolerance", type=float, default=0.25,
                        help="allowed |achieved-offered|/offered "
                        "(default: 0.25)")
    parser.add_argument("--p99-limit", type=float, default=0.5,
                        help="live p99 ceiling in seconds (default: 0.5)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="driver dispatch threads (default: 16)")
    parser.add_argument("--big-requests", type=int, default=50000,
                        help="in-process replay size (default: 50000)")
    parser.add_argument("--db", default=None,
                        help="ledger path (default: a temp file)")
    args = parser.parse_args(argv)

    failures = []
    n_live = max(int(args.rate * args.duration), 10)
    config = gate_config(rate=args.rate, n_requests=n_live)

    tmp = None
    if args.db:
        ledger_path = args.db
    else:
        tmp = tempfile.NamedTemporaryFile(suffix=".db", delete=False)
        tmp.close()
        ledger_path = tmp.name
    try:
        determinism = check_determinism(config, failures)
        live = run_live_replay(
            config, ledger_path,
            rate_tolerance=args.rate_tolerance,
            p99_limit_s=args.p99_limit,
            concurrency=args.concurrency,
            failures=failures,
        )
        big = run_big_replay(
            ledger_path, n_requests=args.big_requests, failures=failures
        )
        with RunLedger(ledger_path) as ledger:
            for row in ledger.load_runs(limit=0):
                if row.extra.get("n_stage_violations", 0):
                    failures.append(
                        f"load_run #{row.load_id} has incomplete stage "
                        "sums"
                    )
            baseline = load_baseline_from_ledger(ledger)
        # Only the paced live replay is machine-independent (achieved
        # rate tracks the plan, not the host): the unpaced big replay's
        # throughput/p99 measure raw host speed and would flap across
        # CI runners, so it stays out of the archived baseline.
        baseline = {k: v for k, v in baseline.items() if k == "live-gate"}
    finally:
        if tmp is not None:
            os.unlink(tmp.name)

    report = {
        "determinism": determinism,
        "live": live,
        "big_replay": big,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"load_gate": report, "load_baseline": baseline},
                      fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
