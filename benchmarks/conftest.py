"""Shared scale knobs for the benchmark/regeneration suite.

Every benchmark regenerates one of the paper's tables or figures at a
reduced default scale (so ``pytest benchmarks/ --benchmark-only`` finishes
in minutes). Set ``REPRO_BENCH_SCALE=paper`` to run the §V-A protocol
(90-task workflows, 5 instances, 25 repetitions). At paper scale the
Figure 2/4 regenerations take *hours* by design: each HEFTBUDG+ schedule
of a 90-task MONTAGE costs minutes of CPU — exactly the scalability
trade-off Table III reports (the authors measured ~380 s per schedule).
Figure 1/3 and the ablations stay in the minutes range.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke") == "paper"


def scaled_config(**overrides) -> ExperimentConfig:
    """Benchmark config at the selected scale."""
    if PAPER_SCALE:
        base = ExperimentConfig.paper_scale()
    else:
        base = ExperimentConfig(
            n_tasks=30,
            n_instances=2,
            budgets_per_workflow=5,
            n_reps=5,
        )
    from dataclasses import replace

    return replace(base, **overrides)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return "paper" if PAPER_SCALE else "smoke"
