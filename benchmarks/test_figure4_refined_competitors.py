"""Figure 4 regenerator: HEFTBUDG+ / HEFTBUDG+INV vs CG+.

The paper's claim (§V-D3): "Globally our algorithms find better schedules
than CG/CG+", with CG+ stuck at high makespans. What this reproduction can
and cannot match is documented in EXPERIMENTS.md: our extended CG+ is
*stronger* than the paper's (the near-linear Table II pricing narrows CG's
[c_min, c_max] interpolation span, so CG reaches fast categories at lower
budgets). The robust reproduced contrasts asserted here:

* the refined HEFT variants respect the budget essentially everywhere;
  CG+ fails validity at the tightest budget on workflows where the cheap
  envelope is tight (MONTAGE/CYBERSHAKE) — "globally better" under
  enforcement;
* wherever CG+ *is* valid, the refined variants' makespans are at least
  competitive (never >25% worse on mean).
"""

import pytest

from conftest import scaled_config
from repro.experiments.figures import figure4
from repro.experiments.report import render_figure


def _check_shapes(data):
    compared = 0
    cgp_failed_tight = 0
    for family in data.families():
        cgp = data.get(family, "cg_plus")
        if cgp[0].stats.valid_fraction < 0.85:
            cgp_failed_tight += 1
        for algorithm in ("heft_budg_plus", "heft_budg_plus_inv"):
            series = data.get(family, algorithm)
            for point in series[1:]:
                assert point.stats.valid_fraction >= 0.85, (
                    f"{algorithm}/{family} at ${point.budget_mean:.3f}"
                )
            for p_ref, p_cg in zip(series[1:], cgp[1:]):
                if p_cg.stats.valid_fraction < 0.5:
                    continue
                compared += 1
                assert p_ref.stats.makespan_mean <= (
                    p_cg.stats.makespan_mean * 1.25
                ), f"{algorithm}/{family} at ${p_ref.budget_mean:.3f}"
    assert compared > 0, "CG+ never produced a valid point to compare"
    assert cgp_failed_tight >= 1, (
        "CG+ unexpectedly respected every tight budget"
    )


def test_figure4_regeneration(benchmark, capsys):
    config = scaled_config()
    data = benchmark.pedantic(lambda: figure4(config), rounds=1, iterations=1)
    _check_shapes(data)
    with capsys.disabled():
        print("\n" + render_figure(data, metric="makespan"))
