"""Ablation: finite datacenter capacity (the LIGO overrun mechanism).

§V-B attributes the only budget violations to datacenter saturation under
LIGO's simultaneous huge transfers. The paper's simulator assumed the
bottleneck away and *observed* the overruns; ours can model the shared
capacity directly. This ablation replays one near-minimum-budget LIGO
schedule under shrinking aggregate DC capacity and asserts:

* makespan grows monotonically as capacity shrinks;
* the budget-validity fraction degrades once capacity drops below the
  aggregate demand — the overrun mechanism the paper describes.
"""

import math

import pytest

from conftest import PAPER_SCALE
from repro.experiments.budgets import minimal_budget
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.registry import make_scheduler
from repro.simulation.executor import execute_schedule, sample_weights
from repro.units import MB
from repro.workflow.generators import generate

N_TASKS = 90 if PAPER_SCALE else 45
N_REPS = 25 if PAPER_SCALE else 8
CAPACITIES = [math.inf, 50 * MB, 20 * MB, 8 * MB]


def _sweep():
    # Trace-faithful runtimes (runtime_scale=1): LIGO's 220 MB frames then
    # genuinely compete with its ~460 s matched-filter tasks, which is the
    # regime where the paper observed the datacenter becoming a bottleneck.
    wf = generate("ligo", N_TASKS, rng=3, sigma_ratio=0.5, runtime_scale=1.0)
    budget = 1.25 * minimal_budget(wf, PAPER_PLATFORM)
    sched = make_scheduler("heft_budg").schedule(
        wf, PAPER_PLATFORM, budget
    ).schedule
    rows = []
    for capacity in CAPACITIES:
        makespans, valid = [], 0
        for rep in range(N_REPS):
            run = execute_schedule(
                wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=rep),
                dc_capacity=capacity,
            )
            makespans.append(run.makespan)
            valid += run.respects_budget(budget)
        rows.append(
            (capacity, sum(makespans) / N_REPS, valid / N_REPS)
        )
    return budget, rows


def test_dc_saturation_ablation(benchmark, capsys):
    budget, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== DC-capacity ablation, LIGO-{N_TASKS}, "
              f"B = ${budget:.3f} (1.25 x min) ===")
        print(f"{'capacity':>12} {'mean makespan':>14} {'valid':>7}")
        for capacity, mk, valid in rows:
            label = "inf" if math.isinf(capacity) else f"{capacity/MB:.0f}MB/s"
            print(f"{label:>12} {mk:>13.0f}s {100*valid:>6.0f}%")
    makespans = [mk for _, mk, _ in rows]
    assert makespans == sorted(makespans), "makespan must grow as DC shrinks"
    # saturated regime much slower than the paper's infinite assumption
    assert makespans[-1] > makespans[0] * 2.0
    # validity never improves when capacity shrinks, and the heavily
    # saturated regime overruns the budget (the paper's LIGO failure mode)
    validities = [v for _, _, v in rows]
    assert all(a >= b - 1e-9 for a, b in zip(validities, validities[1:]))
    assert validities[0] >= 0.85
    assert validities[-1] <= 0.5
