"""Figure 3 regenerator: MIN-MINBUDG / HEFTBUDG vs BDT and CG.

Published shapes asserted (§V-D3):

* "BDT often fails to find a valid schedule ... especially for small
  budgets" — its validity at the lowest budgets is below the BUDG
  variants';
* "however when a schedule is found, its makespan is smaller than those
  found by MIN-MINBUDG and HEFTBUDG" at those tight budgets;
* the BUDG variants' spent cost tracks the given budget from below,
  while CG's spending is essentially budget-insensitive.
"""

import numpy as np
import pytest

from conftest import scaled_config
from repro.experiments.figures import figure3
from repro.experiments.report import render_figure


def _check_shapes(data):
    for family in data.families():
        bdt = data.get(family, "bdt")
        heftb = data.get(family, "heft_budg")
        minmb = data.get(family, "minmin_budg")
        cg = data.get(family, "cg")

        # BDT validity at the first (minimum) budget is poor; the budget-aware
        # algorithms are (near-)perfect there by construction of the fallback.
        # (LIGO is exempt: its B_min is dominated by external-I/O dollars
        # every algorithm pays alike, so BDT's eager VM spending can still
        # fit — see the same caveat in tests/test_integration.py.)
        if family != "ligo":
            assert bdt[0].stats.valid_fraction <= 0.5, family
        assert heftb[0].stats.valid_fraction >= 0.85, family
        assert minmb[0].stats.valid_fraction >= 0.85, family

        # ...but BDT's makespan at tight budgets is the smallest.
        assert bdt[0].stats.makespan_mean <= heftb[0].stats.makespan_mean

        # CG spend is budget-insensitive: its cost varies far less than the
        # budget does across the axis.
        cg_costs = [p.stats.cost_mean for p in cg]
        budgets = [p.budget_mean for p in cg]
        cost_spread = max(cg_costs) - min(cg_costs)
        budget_spread = max(budgets) - min(budgets)
        assert cost_spread <= 0.5 * budget_spread, family

        # BUDG spending never exceeds the budget (beyond the minimum point).
        for point in heftb[1:]:
            assert point.stats.cost_mean <= point.budget_mean * 1.02


def test_figure3_regeneration(benchmark, capsys):
    config = scaled_config()
    data = benchmark.pedantic(lambda: figure3(config), rounds=1, iterations=1)
    _check_shapes(data)
    with capsys.disabled():
        for metric in ("makespan", "valid", "cost"):
            print("\n" + render_figure(data, metric=metric))
