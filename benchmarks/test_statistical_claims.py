"""Statistical verification of the paper's central comparative claims.

The figures eyeball mean curves; here the same sweeps feed paired bootstrap
comparisons (same instance, budget point and weight realization), turning
§V's claims into confidence intervals:

* §V-B: "for a given budget HEFTBUDG obtains a better makespan than
  MIN-MINBUDG, in particular for workflows with a non-trivial
  inter-dependency graph [MONTAGE]" — asserted as: HEFTBUDG is never
  significantly *slower*, with a mean ratio ≤ 1.02 on MONTAGE.
* §V-C: "the schedules obtained for both refined algorithms have a shorter
  makespan than HEFTBUDG" — asserted at mid budgets on MONTAGE, where the
  leftover-budget headroom exists.
"""

import pytest

from conftest import PAPER_SCALE
from repro.experiments import ExperimentConfig, run_sweep
from repro.experiments.stats import compare_algorithms

N_TASKS = 90 if PAPER_SCALE else 30
N_REPS = 25 if PAPER_SCALE else 8


def _sweep(algorithms):
    cfg = ExperimentConfig(
        families=("montage",),
        n_tasks=N_TASKS,
        n_instances=3,
        budgets_per_workflow=5,
        n_reps=N_REPS,
        algorithms=algorithms,
        seed=2018,
    )
    return run_sweep(cfg)


def test_heftbudg_vs_minminbudg_statistical(benchmark, capsys):
    records = benchmark.pedantic(
        lambda: _sweep(("heft_budg", "minmin_budg")), rounds=1, iterations=1
    )
    # drop the B_min points (both degenerate to the sequential schedule)
    mid = [r for r in records if r.budget_index >= 1]
    cmp = compare_algorithms(mid, "heft_budg", "minmin_budg", rng=1)
    with capsys.disabled():
        print("\n" + cmp.summary())
    assert not cmp.b_significantly_faster, cmp.summary()
    assert cmp.ratio_ci.estimate <= 1.02, cmp.summary()


def test_refined_vs_plain_statistical(benchmark, capsys):
    # the refinement's headroom lives just above B_min, where HEFTBUDG's
    # conservative pass leaves the most unspent budget (§V-C)
    records = benchmark.pedantic(
        lambda: _sweep(("heft_budg", "heft_budg_plus")), rounds=1, iterations=1
    )
    low = [r for r in records if r.budget_index == 1]
    cmp = compare_algorithms(low, "heft_budg_plus", "heft_budg", rng=2)
    with capsys.disabled():
        print("\n" + cmp.summary())
    assert not cmp.b_significantly_faster, cmp.summary()
    assert cmp.ratio_ci.estimate <= 1.01, cmp.summary()
