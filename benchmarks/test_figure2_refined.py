"""Figure 2 regenerator: HEFTBUDG+ / HEFTBUDG+INV vs HEFT / HEFTBUDG.

Published shapes asserted (§V-C):

* the refined variants' makespans are never above HEFTBUDG's (same
  budget), and are strictly shorter somewhere on the budget axis;
* they achieve this with *fewer or equal* VMs (they co-locate
  inter-dependent tasks);
* the budget is still respected beyond the minimum-budget point.
"""

import pytest

from conftest import scaled_config
from repro.experiments.figures import figure2
from repro.experiments.report import render_figure

REFINED = ("heft_budg_plus", "heft_budg_plus_inv")


def _check_shapes(data):
    improved_somewhere = False
    for family in data.families():
        plain = data.get(family, "heft_budg")
        for algorithm in REFINED:
            series = data.get(family, algorithm)
            ratios = []
            for p_ref, p_plain in zip(series, plain):
                # Refinement is monotone under the *planning* weights; under
                # sampled weights single points can wobble (fewer VMs means
                # less slack), so the per-point check is loose and the
                # aggregate over the budget axis is the real criterion.
                assert p_ref.stats.makespan_mean <= (
                    p_plain.stats.makespan_mean * 1.25
                ), f"{algorithm}/{family} at ${p_ref.budget_mean:.3f}"
                ratios.append(
                    p_ref.stats.makespan_mean / p_plain.stats.makespan_mean
                )
                if p_ref.stats.makespan_mean < 0.97 * p_plain.stats.makespan_mean:
                    improved_somewhere = True
            assert sum(ratios) / len(ratios) <= 1.05, (
                f"{algorithm}/{family}: refinement loses on aggregate"
            )
            mid = len(series) // 2
            assert series[mid].stats.n_vms_mean <= plain[mid].stats.n_vms_mean + 1.0
            for point in series[1:]:
                assert point.stats.valid_fraction >= 0.85
    assert improved_somewhere, "refinement never improved any makespan"


def test_figure2_regeneration(benchmark, capsys):
    config = scaled_config()
    data = benchmark.pedantic(lambda: figure2(config), rounds=1, iterations=1)
    _check_shapes(data)
    with capsys.disabled():
        for metric in ("makespan", "cost", "n_vms"):
            print("\n" + render_figure(data, metric=metric))
