"""Extended-version studies: sigma impact and the minimal-budget frontier.

The paper defers both figures to its extended version [8] but states their
conclusions in §V-B; those statements are asserted here:

* "Both HEFTBUDG and MIN-MINBUDG require a larger initial budget to achieve
  a given makespan, when σ increases; yet the budget constraint is
  respected, even in scenarios where task weights can be twice their mean
  value" — B_min grows with σ; validity stays high at σ = 100%.
* "HEFTBUDG needs a smaller initial budget than MIN-MINBUDG for MONTAGE
  [to reach the baseline makespan], and a similar one for CYBERSHAKE and
  LIGO."
"""

import pytest

from conftest import PAPER_SCALE
from repro.experiments.budget_frontier import frontier_study, render_frontier
from repro.experiments.sigma_study import render_sigma_study, sigma_study

N_TASKS = 90 if PAPER_SCALE else 30
N_REPS = 25 if PAPER_SCALE else 8


def test_sigma_impact_study(benchmark, capsys):
    study = benchmark.pedantic(
        lambda: sigma_study(
            n_tasks=N_TASKS, n_reps=N_REPS, sigma_ratios=(0.25, 0.5, 1.0)
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_sigma_study(study))
    for family in study.families():
        b_mins = [study.get(family, s).b_min for s in study.sigmas()]
        assert b_mins == sorted(b_mins), f"{family}: B_min must grow with sigma"
        assert b_mins[-1] > b_mins[0]
        # budget respected even at sigma = 100%
        worst = study.get(family, 1.0)
        assert worst.stats.valid_fraction >= 0.85, family


def test_minimal_budget_frontier(benchmark, capsys):
    sizes = (30, 60, 90) if PAPER_SCALE else (20, 45)
    points = benchmark.pedantic(
        lambda: frontier_study(sizes=sizes), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + render_frontier(points))
    by_key = {(p.family, p.n_tasks, p.algorithm): p for p in points}
    largest = max(sizes)
    # HEFTBUDG's frontier is never far above MIN-MINBUDG's, and is at least
    # as good on MONTAGE (the paper's structural claim).
    for family in ("cybershake", "ligo", "montage"):
        heft = by_key[(family, largest, "heft_budg")]
        minmin = by_key[(family, largest, "minmin_budg")]
        assert heft.matching_budget <= minmin.matching_budget * 1.40, family
    montage_heft = by_key[("montage", largest, "heft_budg")]
    montage_minmin = by_key[("montage", largest, "minmin_budg")]
    assert montage_heft.matching_budget <= montage_minmin.matching_budget * 1.05
