"""CI cluster gate: a live 2-worker loopback cluster must match serial.

Contract checks (any violation exits non-zero):

1. **Parity** — a sweep dispatched to two ``repro-exp worker``
   subprocesses over the wire returns records bit-identical to the
   serial run (all fields except wall-clock ``sched_seconds``).
2. **Kill-node resilience** — SIGKILL one worker the moment the first
   result arrives (so shards are provably in flight on the victim);
   the sweep must complete through reassignment (``n_crashes == 1``,
   ``n_reassignments >= 1``) and still be bit-identical to serial.
3. **Service health** — a cluster-backed :class:`SchedulingService`
   answers a schedule request and reports ``executor="cluster"`` with
   the live node count on ``/v1/healthz``.

The JSON report doubles as the ``BENCH_PR10.json`` payload: a
``cluster_gate`` section with the measured numbers (throughput is
recorded for trend-watching, not gated — CI runners vary) plus a
``ledger_baseline`` from the clustered sweep that
``repro-exp ledger regress`` gates future runs against.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from dataclasses import replace  # noqa: E402

from repro.cluster import ClusterPool  # noqa: E402
from repro.experiments import runner as runner_mod  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402
from repro.obs.ledger import RunLedger, baseline_from_ledger, use_ledger  # noqa: E402
from repro.service.engine import SchedulingService  # noqa: E402


def gate_config(seed=2018, n_reps=10):
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=20, n_instances=1,
        budgets_per_workflow=3, n_reps=n_reps, seed=seed,
        algorithms=("heft_budg", "minmin"),
    )


def strip_wallclock(records):
    return [replace(r, sched_seconds=0.0) for r in records]


def spawn_worker():
    """Launch one ``repro-exp worker`` subprocess; returns (proc, addr)."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import main; import sys; sys.exit(main())",
            "worker", "--listen", "127.0.0.1:0", "--heartbeat", "0.2",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker did not announce its address: {line!r}")
    return proc, match.group(1)


def reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


def check_parity(ledger_path, failures):
    """Clustered sweep == serial sweep, and the ledger archives it."""
    config = gate_config()
    t0 = time.perf_counter()
    serial = run_sweep(config)
    serial_s = time.perf_counter() - t0

    (proc_a, addr_a), (proc_b, addr_b) = spawn_worker(), spawn_worker()
    try:
        nodes = f"{addr_a},{addr_b}"
        with RunLedger(ledger_path) as ledger, use_ledger(ledger):
            t0 = time.perf_counter()
            clustered = run_sweep(config, workers=nodes)
            cluster_s = time.perf_counter() - t0
        if strip_wallclock(clustered) != strip_wallclock(serial):
            failures.append(
                "clustered sweep records differ from serial "
                f"({len(clustered)} vs {len(serial)} records)"
            )
    finally:
        reap(proc_a, proc_b)
    points = len(serial) // config.n_reps if config.n_reps else 0
    return {
        "records": len(serial),
        "sweep_points": points,
        "serial_s": round(serial_s, 3),
        "cluster_2node_s": round(cluster_s, 3),
        "cluster_points_per_s": round(points / cluster_s, 3)
        if cluster_s else 0.0,
        "parity": strip_wallclock(clustered) == strip_wallclock(serial),
        "note": "wall-clock recorded for trend-watching, not gated",
    }


def check_kill_node(failures):
    """SIGKILL a worker at its first dispatch; parity must hold.

    The victim dies the moment it receives its first shard, which is
    recorded as dispatched before ``_send_shard`` returns — so the kill
    provably orphans an unanswered shard and the sweep can only finish
    through reassignment (a first-*result* trigger is racy: a starved
    coordinator can wake to find every result already queued).
    """
    config = gate_config(seed=7)
    serial = run_sweep(config)

    procs = {}
    (proc_a, addr_a), (proc_b, addr_b) = spawn_worker(), spawn_worker()
    procs[addr_a], procs[addr_b] = proc_a, proc_b
    box = {}
    original_make_pool = runner_mod.make_pool
    try:
        def instrumented_make_pool(backend, **kwargs):
            pool = ClusterPool(
                ",".join(procs), heartbeat_timeout=5.0, **kwargs
            )
            box["pool"] = pool
            original_send = pool._send_shard
            dispatched_to = []
            fired = threading.Event()

            def hooked(fn, items, index, node, state, trace_ctx):
                sent = original_send(fn, items, index, node, state,
                                     trace_ctx)
                if sent and not fired.is_set():
                    if node.address not in dispatched_to:
                        dispatched_to.append(node.address)
                    if len(dispatched_to) == 2:
                        fired.set()
                        box["victim"] = node.address
                        procs[node.address].send_signal(signal.SIGKILL)
                return sent

            pool._send_shard = hooked
            return pool

        runner_mod.make_pool = instrumented_make_pool
        clustered = run_sweep(config, workers=",".join(procs))
    finally:
        runner_mod.make_pool = original_make_pool
        reap(*procs.values())

    pool = box.get("pool")
    parity = strip_wallclock(clustered) == strip_wallclock(serial)
    if not parity:
        failures.append("kill-node sweep records differ from serial")
    if pool is None or pool.n_crashes != 1:
        failures.append(
            "expected exactly one node loss, saw "
            f"{getattr(pool, 'n_crashes', None)}"
        )
    if pool is not None and pool.n_reassignments < 1:
        failures.append("victim's in-flight shards were never reassigned")
    return {
        "records": len(clustered),
        "parity": parity,
        "n_crashes": pool.n_crashes if pool else None,
        "n_reassignments": pool.n_reassignments if pool else None,
        "victim": box.get("victim"),
    }


def check_service_health(failures):
    """Cluster executor serves a request and reports honest health."""
    (proc_a, addr_a), (proc_b, addr_b) = spawn_worker(), spawn_worker()
    try:
        with SchedulingService(
            max_workers=1, cache_size=0,
            executor="cluster", nodes=f"{addr_a},{addr_b}",
        ) as svc:
            resp = svc.schedule({
                "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                             "sigma_ratio": 0.5},
                "algorithm": "heft_budg",
                "budget": {"amount": 2.0},
                "evaluation": {"n_reps": 3},
            })
            health = svc.health()
        if resp.planned_makespan <= 0:
            failures.append("cluster-backed schedule returned no plan")
        if health.get("executor") != "cluster":
            failures.append(
                f"healthz executor is {health.get('executor')!r}, "
                "wanted 'cluster'"
            )
        if health.get("worker_count") != 2:
            failures.append(
                f"healthz worker_count is {health.get('worker_count')!r}, "
                "wanted 2"
            )
        return {
            "executor": health.get("executor"),
            "worker_count": health.get("worker_count"),
            "ready": health.get("ready"),
        }
    finally:
        reap(proc_a, proc_b)


def main(argv=None):
    """CLI entry point; exits non-zero on any contract violation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--db", default=None,
                        help="ledger path (default: a temp file)")
    args = parser.parse_args(argv)

    failures = []
    tmp = None
    if args.db:
        ledger_path = args.db
    else:
        tmp = tempfile.NamedTemporaryFile(suffix=".db", delete=False)
        tmp.close()
        ledger_path = tmp.name
    try:
        parity = check_parity(ledger_path, failures)
        kill = check_kill_node(failures)
        service = check_service_health(failures)
        with RunLedger(ledger_path) as ledger:
            baseline = baseline_from_ledger(ledger)
    finally:
        if tmp is not None:
            os.unlink(tmp.name)

    report = {
        "parity": parity,
        "kill_node": kill,
        "service": service,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(
                {"cluster_gate": report, "ledger_baseline": baseline},
                fh, indent=1, sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
