"""Ablation: discontinuous allocations (§III-B's free-and-rebook option).

The paper's model rents VMs as continuous slots but explicitly allows
freeing a VM and renting a new one later at the price of a setup fee and
re-staged data. None of its algorithms use this; the ablation measures what
the post-processing pass in ``repro.scheduling.idle_split`` recovers on
HEFTBUDG schedules across the paper families, at mid budgets where queues
carry idle gaps.
"""

import pytest

from conftest import PAPER_SCALE
from repro.experiments.budgets import high_budget, minimal_budget
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.idle_split import split_idle_gaps
from repro.scheduling.registry import make_scheduler
from repro.workflow.generators import generate

N_TASKS = 90 if PAPER_SCALE else 30


def _sweep():
    rows = []
    for family in ("cybershake", "ligo", "montage"):
        wf = generate(family, N_TASKS, rng=21, sigma_ratio=0.5)
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        budget = b_min + 0.4 * (high_budget(wf, PAPER_PLATFORM) - b_min)
        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, budget
        ).schedule
        out = split_idle_gaps(
            wf, PAPER_PLATFORM, sched, budget=budget, makespan_tolerance=0.05
        )
        rows.append((family, out))
    return rows


def test_idle_split_ablation(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== idle-gap splitting on HEFTBUDG schedules "
              f"({N_TASKS} tasks, mid budget) ===")
        print(f"{'family':>12} {'splits':>7} {'cost before':>12} "
              f"{'cost after':>11} {'saved':>8}")
        for family, out in rows:
            print(f"{family:>12} {out.n_splits:>7} ${out.cost_before:>11.4f} "
                  f"${out.cost_after:>10.4f} {100 * out.savings / out.cost_before:>7.2f}%")
    for family, out in rows:
        # the pass is verified-safe: never worse, bounded makespan growth
        assert out.cost_after <= out.cost_before + 1e-9, family
        assert out.makespan_after <= out.makespan_before * 1.05 + 1e-6, family
