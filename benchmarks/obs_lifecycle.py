"""Request-lifecycle observability scenario (the CI obs-gate).

A mixed-tenant burst runs through the **process executor** with a live
tracer and a run ledger attached. The gate asserts the lifecycle
telemetry contract end to end:

1. **One trace across the fork seam** — spans from the worker processes
   come back merged into the parent tracer, stamped with the request's
   trace id and their worker pid.
2. **Stages partition the wall clock** — every service ledger row
   carries a complete, non-negative stage decomposition
   (``extra["stages"]``) whose segments sum to the recorded wall time.
3. **Tracing is cheap** — enabling the tracer costs < 5 % over the
   ``NullTracer`` baseline on the replication workload (median-of-N,
   with an absolute floor so sub-millisecond jitter cannot fail CI).

Timings and counts land in a JSON report compatible with
``BENCH_PR7.json``::

    python benchmarks/obs_lifecycle.py --out BENCH_PR7.json
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

from repro.admission import TenantPolicy, TenantRegistry
from repro.obs.ledger import RunLedger
from repro.obs.tracing import Tracer, use_tracer
from repro.platform.cloud import PAPER_PLATFORM
from repro.rng import as_generator, spawn_seeds
from repro.scheduling import make_scheduler
from repro.service import SchedulingService
from repro.simulation.executor import run_replications
from repro.workflow.generators import generate

OVERHEAD_LIMIT = 0.05       # 5 % relative ...
OVERHEAD_FLOOR_S = 0.010    # ... or under 10 ms absolute: jitter, not cost
STAGE_SUM_TOL = 1e-6


def request_dict(seed, priority="batch"):
    """One small schedule+evaluate request (seconds, not minutes)."""
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": 2.0},
        "evaluation": {"n_reps": 2, "seed": seed},
        "priority": priority,
    }


def run_lifecycle(workers=2):
    """Mixed-tenant burst through the process executor; (report, failures)."""
    registry = TenantRegistry({
        "gold": TenantPolicy(name="gold", weight=2.0, cost_budget=50.0),
        "silver": TenantPolicy(name="silver", weight=1.0, cost_budget=50.0),
    })
    failures = []
    tracer = Tracer(max_spans=100_000)
    db_path = os.path.join(tempfile.mkdtemp(prefix="obs-gate-"), "runs.db")
    ledger = RunLedger(db_path)
    job_ids = []
    with use_tracer(tracer):
        with SchedulingService(max_workers=workers, cache_size=0,
                               executor="process", tenants=registry,
                               ledger=ledger) as svc:
            for i in range(3):
                job_ids.append(svc.submit(
                    dict(request_dict(100 + i), tenant="gold")))
                job_ids.append(svc.submit(
                    dict(request_dict(200 + i, "interactive"),
                         tenant="silver")))
            svc.wait_all(timeout=300)
            done = sum(1 for job_id in job_ids
                       if svc.job(job_id).state == "done")
            if done != len(job_ids):
                failures.append(f"only {done}/{len(job_ids)} jobs done")

    # 1. worker spans merged under the request trace
    worker_spans = [sp for sp in tracer.spans
                    if "worker_pid" in sp.attributes]
    if not worker_spans:
        failures.append("no worker-process spans merged into the trace")
    foreign = [sp for sp in worker_spans
               if sp.attributes.get("trace_id") != tracer.trace_id]
    if foreign:
        failures.append(
            f"{len(foreign)} worker spans carry a foreign trace id"
        )
    worker_pids = {sp.attributes["worker_pid"] for sp in worker_spans}

    # 2. complete, non-negative stage decompositions on every ledger row
    rows = ledger.runs(source="service", limit=0)
    if len(rows) != len(job_ids):
        failures.append(
            f"expected {len(job_ids)} service ledger rows, got {len(rows)}"
        )
    for row in rows:
        payload = (row.extra or {}).get("stages")
        if not payload or not payload.get("stages"):
            failures.append(f"run {row.run_id} has no stage decomposition")
            continue
        stages, wall = payload["stages"], payload["wall_s"]
        negative = {k: v for k, v in stages.items() if v < 0}
        if negative:
            failures.append(f"run {row.run_id} negative stages: {negative}")
        if abs(sum(stages.values()) - wall) > STAGE_SUM_TOL:
            failures.append(
                f"run {row.run_id} stages sum {sum(stages.values()):.6f} "
                f"!= wall {wall:.6f}"
            )
        if "execute" not in stages:
            failures.append(f"run {row.run_id} never marked execute")
    ledger.close()

    report = {
        "jobs_done": len(job_ids) - len([f for f in failures if "jobs" in f]),
        "worker_spans": len(worker_spans),
        "worker_processes": len(worker_pids),
        "ledger_rows": len(rows),
        "total_spans": len(tracer.spans),
    }
    return report, failures


def _replication_workload():
    """The shared Monte Carlo workload both overhead arms execute."""
    wf = generate("montage", 50, rng=1, sigma_ratio=0.5)
    result = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM,
                                                  budget=2.0)
    seeds = spawn_seeds(as_generator(0), 100)
    return {"wf": wf, "platform": PAPER_PLATFORM,
            "schedule": result.schedule, "budget": 2.0,
            "seeds": list(seeds), "validate_first": True}


def measure_overhead(repeats=7):
    """Median wall time of the workload, NullTracer vs live Tracer."""
    task = _replication_workload()
    run_replications(dict(task))  # warm caches outside both arms
    base, traced = [], []
    for _ in range(repeats):  # interleave the arms to damp drift
        started = time.perf_counter()
        run_replications(dict(task))
        base.append(time.perf_counter() - started)

        tracer = Tracer()
        with use_tracer(tracer):
            started = time.perf_counter()
            run_replications(dict(task))
            traced.append(time.perf_counter() - started)

    base_median = statistics.median(base)
    traced_median = statistics.median(traced)
    delta = traced_median - base_median
    overhead = delta / base_median if base_median else 0.0
    ok = overhead < OVERHEAD_LIMIT or delta < OVERHEAD_FLOOR_S
    report = {
        "repeats": repeats,
        "base_median_s": round(base_median, 6),
        "traced_median_s": round(traced_median, 6),
        "overhead_pct": round(overhead * 100.0, 3),
        "limit_pct": OVERHEAD_LIMIT * 100.0,
        "floor_s": OVERHEAD_FLOOR_S,
    }
    failures = []
    if not ok:
        failures.append(
            f"tracer overhead {overhead * 100.0:.2f}% exceeds "
            f"{OVERHEAD_LIMIT * 100.0:.0f}% (base {base_median:.4f}s, "
            f"traced {traced_median:.4f}s)"
        )
    return report, failures


def main(argv=None):
    """CLI entry point; exits non-zero on any contract violation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=7,
                        help="overhead measurement repeats per arm")
    args = parser.parse_args(argv)

    lifecycle, failures = run_lifecycle(workers=args.workers)
    overhead, more = measure_overhead(repeats=args.repeats)
    failures.extend(more)

    report = {"lifecycle": lifecycle, "tracer_overhead": overhead}
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"obs_lifecycle": report}, fh, indent=1,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
