"""Exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.WorkflowError,
            errors.CycleError,
            errors.DanglingEdgeError,
            errors.PlatformError,
            errors.SchedulingError,
            errors.InfeasibleBudgetError,
            errors.ScheduleValidationError,
            errors.SimulationError,
            errors.DaxParseError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.CycleError, errors.WorkflowError)
        assert issubclass(errors.DanglingEdgeError, errors.WorkflowError)
        assert issubclass(errors.DaxParseError, errors.WorkflowError)
        assert issubclass(errors.InfeasibleBudgetError, errors.SchedulingError)

    def test_one_except_catches_everything(self):
        """The package contract: `except ReproError` catches every
        *deterministic* error. ``WorkerCrashError`` is the one deliberate
        exception — a transient infrastructure failure that retry layers
        must be able to catch separately from model errors."""
        for name in errors.__all__:
            exc = getattr(errors, name)
            if exc is errors.WorkerCrashError:
                assert issubclass(exc, RuntimeError)
                assert not issubclass(exc, errors.ReproError)
                continue
            with pytest.raises(errors.ReproError):
                raise exc("boom")

    def test_all_exported(self):
        assert set(errors.__all__) >= {
            "ReproError", "WorkflowError", "SimulationError",
        }
