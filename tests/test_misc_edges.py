"""Remaining edge cases across small surfaces."""

import json

import pytest

from repro import PAPER_PLATFORM, ScheduleValidationError, generate, make_scheduler
from repro.io import load_schedule
from repro.simulation import evaluate_schedule
from repro.simulation.gantt import render_gantt


class TestIoEdges:
    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_schedule(str(path))

    def test_load_wrong_payload(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "other/1"}))
        with pytest.raises(ScheduleValidationError):
            load_schedule(str(path))


class TestGanttOptions:
    def test_show_boot_toggle(self):
        wf = generate("montage", 14, rng=2, sigma_ratio=0.5)
        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 1.0
        ).schedule
        run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        with_boot = render_gantt(run, show_boot=True)
        without = render_gantt(run, show_boot=False)
        assert with_boot.count("|") >= without.count("|")


class TestWorkflowEdges:
    def test_edges_iterable_before_freeze(self):
        from repro import StochasticWeight, Task, Workflow

        wf = Workflow("unfrozen")
        wf.add_task(Task("a", StochasticWeight(1e9)))
        wf.add_task(Task("b", StochasticWeight(1e9)))
        wf.add_edge("a", "b", 1.0)
        assert len(list(wf.edges())) == 1  # iterable pre-freeze too

    def test_with_bandwidth_keeps_override(self):
        from repro import CloudPlatform, VMCategory

        p = CloudPlatform(
            categories=(VMCategory("c", speed=1e9, hourly_cost=1.0),),
            bandwidth=1e6,
            datacenter_rate_override=0.5,
        )
        assert p.with_bandwidth(2e6).datacenter_rate_override == 0.5


class TestConsoleEntryPoint:
    def test_repro_exp_installed(self):
        import shutil
        import subprocess

        exe = shutil.which("repro-exp")
        if exe is None:
            pytest.skip("console script not on PATH in this environment")
        out = subprocess.run(
            [exe, "table2"], capture_output=True, text=True, timeout=120
        )
        assert out.returncode == 0
        assert "cat1" in out.stdout
