"""Documentation contract: every public item carries a docstring.

Deliverable (e) of this reproduction promises doc comments on every public
item; this test makes the promise executable. Public = importable through a
``repro`` module and not underscore-prefixed.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_SKIP_MODULES = set()


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; checked at its home module
        yield name, obj


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                target = member
                if isinstance(member, (staticmethod, classmethod)):
                    target = member.__func__
                elif isinstance(member, property):
                    target = member.fget
                elif not inspect.isfunction(member):
                    continue
                if target is None or not (
                    target.__doc__ and target.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items {undocumented}"
    )
