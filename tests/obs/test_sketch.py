"""QuantileSketch: accuracy, merge bit-identity, serialization."""

import math
import random

import pytest

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch


def exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[rank - 1]


class TestAccuracy:
    def test_quantiles_within_relative_error(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(5000)]
        sketch = QuantileSketch(alpha=0.01)
        sketch.extend(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            expect = exact_quantile(values, q)
            got = sketch.quantile(q)
            assert abs(got - expect) <= 0.02 * expect + 1e-12

    def test_min_and_max_are_exact(self):
        sketch = QuantileSketch()
        sketch.extend([3.5, 0.2, 7.75, 1.0])
        assert sketch.quantile(0.0) >= 0.2 * (1 - 2 * DEFAULT_ALPHA)
        assert sketch.quantile(1.0) == 7.75
        assert sketch.minimum == 0.2
        assert sketch.maximum == 7.75

    def test_zero_and_negative_values(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, -1.0, 0.0, 5.0])
        assert sketch.count == 4
        assert sketch.zero_count == 3  # negatives clamp to the zero bucket
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 5.0

    def test_nan_is_skipped(self):
        sketch = QuantileSketch()
        sketch.add(float("nan"))
        sketch.add(1.0)
        assert sketch.count == 1

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.percentiles() == {}
        assert sketch.mean == 0.0
        with pytest.raises(ValueError, match="empty"):
            sketch.quantile(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=1.0)
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError, match="q must be"):
            sketch.quantile(1.5)


class TestMergeIdentity:
    """The property the /v1/slo acceptance gate rests on."""

    def values(self, n=800):
        rng = random.Random(42)
        return [rng.expovariate(1.0) for _ in range(n)]

    def shardings(self, n):
        return [
            [(0, n)],
            [(0, n // 2), (n // 2, n)],
            [(0, 1), (1, n // 3), (n // 3, n)],
            [(i, i + 1) for i in range(n)][:50] + [(50, n)],
        ]

    def test_merged_state_is_identical_for_any_sharding(self):
        values = self.values()
        serial = QuantileSketch()
        serial.extend(values)
        for sharding in self.shardings(len(values)):
            parts = []
            for start, stop in sharding:
                part = QuantileSketch()
                part.extend(values[start:stop])
                parts.append(part)
            merged = QuantileSketch.merged(parts)
            # Bit-identical serialized state, hence bit-identical answers.
            assert merged.to_dict() == serial.to_dict()
            for q in (0.5, 0.95, 0.99):
                assert merged.quantile(q) == serial.quantile(q)
            assert merged.mean == serial.mean

    def test_merge_order_does_not_matter(self):
        values = self.values(300)
        a, b, c = (QuantileSketch() for _ in range(3))
        a.extend(values[:100])
        b.extend(values[100:200])
        c.extend(values[200:])
        abc = QuantileSketch.merged([a, b, c])
        cba = QuantileSketch.merged([c, b, a])
        assert abc.to_dict() == cba.to_dict()

    def test_merge_rejects_alpha_mismatch(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_merge_returns_self_and_handles_empties(self):
        a = QuantileSketch()
        a.extend([1.0, 2.0])
        out = a.merge(QuantileSketch())
        assert out is a
        assert a.count == 2


class TestSerialization:
    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, 0.1, 1.0, 10.0, 10.0])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.95) == sketch.quantile(0.95)

    def test_payload_is_json_ready(self):
        import json

        sketch = QuantileSketch()
        sketch.extend([0.5, 2.0])
        payload = json.loads(json.dumps(sketch.to_dict()))
        assert QuantileSketch.from_dict(payload).count == 2


class TestJSONShardMerging:
    """Serialization + merge at shard counts the loadgen driver uses."""

    def test_json_roundtrip_through_string_form(self):
        import json

        rng = random.Random(3)
        sketch = QuantileSketch(alpha=0.01)
        sketch.extend(rng.expovariate(10.0) for _ in range(2000))
        wire = json.dumps(sketch.to_dict(), sort_keys=True)
        clone = QuantileSketch.from_dict(json.loads(wire))
        assert clone.to_dict() == sketch.to_dict()
        assert json.dumps(clone.to_dict(), sort_keys=True) == wire

    def test_merge_with_empties_at_high_shard_count(self):
        # 256 shards, most empty — the merged sketch must be identical
        # to the serially-built one, bucket for bucket.
        rng = random.Random(17)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(512)]
        shards = [QuantileSketch() for _ in range(256)]
        for i, value in enumerate(values):
            # Only every fourth shard receives data.
            shards[(i % 64) * 4].add(value)
        serial = QuantileSketch()
        serial.extend(values)
        merged = QuantileSketch.merged(shards)
        assert merged.count == serial.count
        assert merged.to_dict() == serial.to_dict()
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == serial.quantile(q)

    def test_merging_only_empty_shards_stays_empty(self):
        merged = QuantileSketch.merged([QuantileSketch()
                                        for _ in range(256)])
        assert merged.count == 0
        clone = QuantileSketch.from_dict(merged.to_dict())
        assert clone.count == 0
