"""Statistical regression gating: pooled sample stats and the Welch test."""

import numpy as np
import pytest

from repro.obs.ledger import (
    RunLedger,
    RunRow,
    baseline_from_ledger,
    compare_to_baseline,
    welch_slowdown,
)
from repro.obs.ledger import _t_quantile  # accuracy-checked directly


def make_row(makespan, std, n=20):
    return RunRow(
        source="sweep", workflow="montage-20", family="montage",
        n_tasks=20, algorithm="heft_budg", budget=1.0, sigma_ratio=0.5,
        planned_makespan=100.0, planned_cost=1.0, sim_makespan=makespan,
        sim_cost=1.0, success_rate=1.0, n_reps=n,
        extra={"makespan_stats": {"mean": makespan, "std": std, "n": n,
                                  "min": makespan - std,
                                  "max": makespan + std}},
    )


def ledger_with(rows):
    ledger = RunLedger()
    for row in rows:
        ledger.record(row)
    return ledger


GROUP = "montage/20/heft_budg"


class TestPooledStats:
    def test_group_stats_pool_rows_exactly(self):
        # pooling K rows of n reps must equal stats of the K·n union sample
        rng = np.random.default_rng(7)
        samples = [rng.normal(100, 15, 20) for _ in range(3)]
        rows = [
            make_row(float(s.mean()), float(s.std(ddof=1))) for s in samples
        ]
        with ledger_with(rows) as ledger:
            stats = ledger.group_stats()[GROUP]
        union = np.concatenate(samples)
        assert stats["n_samples"] == 60.0
        assert stats["makespan_sample_mean"] == pytest.approx(
            union.mean(), rel=1e-12
        )
        assert stats["makespan_std"] == pytest.approx(
            union.std(ddof=1), rel=1e-9
        )

    def test_rows_without_stats_omit_pooled_keys(self):
        row = make_row(100.0, 15.0)
        object.__setattr__(row, "extra", {})
        with ledger_with([row]) as ledger:
            stats = ledger.group_stats()[GROUP]
        assert "makespan_std" not in stats and "n_samples" not in stats

    def test_baseline_carries_sample_stats(self):
        with ledger_with([make_row(100.0, 15.0)]) as ledger:
            baseline = baseline_from_ledger(ledger)
        group = baseline[GROUP]
        assert group["n_samples"] == 20.0 and group["makespan_std"] > 0


class TestWelchGate:
    def baseline(self):
        with ledger_with([make_row(100.0, 15.0) for _ in range(3)]) as led:
            return baseline_from_ledger(led)

    def test_significant_slowdown_fails_even_below_fixed_threshold(self):
        # +8% is inside the default 10% fixed tolerance, but with n=60 a
        # side and std 15 the Welch t is ~3 — a real slowdown.
        base = self.baseline()
        with ledger_with([make_row(108.0, 15.0) for _ in range(3)]) as led:
            assert compare_to_baseline(led, base).ok
            report = compare_to_baseline(led, base, stat=True)
        assert not report.ok
        delta = report.deltas[0]
        assert delta.stat_tested and delta.t_stat > delta.t_crit > 0
        assert "Welch" in report.render()

    def test_insignificant_wobble_passes(self):
        base = self.baseline()
        with ledger_with([make_row(101.0, 15.0) for _ in range(3)]) as led:
            report = compare_to_baseline(led, base, stat=True)
        assert report.ok and report.deltas[0].stat_tested

    def test_noisy_but_flat_group_passes_stat_fails_fixed(self):
        # wide replication variance: +12% mean shift is indistinguishable
        # from noise — the whole point of --stat
        base = {k: dict(v, makespan_std=80.0) for k, v in
                self.baseline().items()}
        with ledger_with([make_row(112.0, 80.0) for _ in range(3)]) as led:
            assert not compare_to_baseline(led, base).ok
            assert compare_to_baseline(led, base, stat=True).ok

    def test_groups_without_stats_fall_back_to_fixed_threshold(self):
        row = make_row(120.0, 15.0)
        object.__setattr__(row, "extra", {})
        base = {GROUP: {"makespan": 100.0, "cost": 1.0, "n_runs": 1,
                        "success_rate": 1.0}}
        with ledger_with([row]) as led:
            report = compare_to_baseline(led, base, stat=True)
        assert not report.ok  # +20% trips the fixed gate
        assert not report.deltas[0].stat_tested

    def test_cost_gate_unchanged_by_stat_mode(self):
        base = self.baseline()
        rows = [make_row(100.0, 15.0) for _ in range(3)]
        for row in rows:
            object.__setattr__(row, "sim_cost", 2.0)  # +100% cost
        with ledger_with(rows) as led:
            report = compare_to_baseline(led, base, stat=True)
        assert not report.ok

    def test_confidence_validated(self):
        with ledger_with([make_row(100.0, 15.0)]) as led:
            with pytest.raises(ValueError, match="confidence"):
                compare_to_baseline(led, self.baseline(), stat=True,
                                    confidence=1.5)


class TestWelchMath:
    def test_t_quantile_against_tables(self):
        # textbook one-sided 95% critical values
        for df, expected in [(10, 1.8125), (30, 1.6973), (120, 1.6577)]:
            assert _t_quantile(0.95, df) == pytest.approx(expected, abs=0.02)

    def test_degenerate_inputs_never_significant(self):
        assert welch_slowdown((100, 0, 1), (110, 0, 1))[0] is False
        assert welch_slowdown((100, 0, 10), (110, 0, 10))[0] is False

    def test_faster_is_never_flagged(self):
        significant, t_stat, _ = welch_slowdown(
            (100, 10, 30), (80, 10, 30)
        )
        assert significant is False and t_stat < 0
