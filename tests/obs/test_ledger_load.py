"""Ledger load_runs table: schema v3, archival, baselines, regressions."""

import json
import sqlite3

import pytest

from repro.obs.ledger import (
    SCHEMA_VERSION,
    LoadRunRow,
    NullLedger,
    RunLedger,
    compare_load_to_baseline,
    extract_load_baseline,
    load_baseline_from_ledger,
)


def make_row(label="grp", achieved=200.0, p99=0.010, n_ok=100, **over):
    base = dict(
        label=label,
        config_fingerprint="cfg" + "0" * 61,
        sequence_fingerprint="seq" + "0" * 61,
        process="poisson",
        target="inproc",
        executor="thread",
        n_requests=n_ok,
        n_ok=n_ok,
        n_cached=0,
        n_rejected=0,
        n_errors=0,
        refusals={},
        offered_rps=achieved,
        achieved_rps=achieved,
        duration_s=n_ok / achieved,
        latency_mean_s=p99 / 2,
        latency_std_s=p99 / 10,
        p50_s=p99 / 3,
        p95_s=p99 * 0.8,
        p99_s=p99,
        cost_total=1.0,
        stages={"admit": {"p50": 1e-5, "p95": 2e-5, "p99": 3e-5}},
        sketches={},
        extra={"n_stage_violations": 0},
    )
    base.update(over)
    return LoadRunRow(**base)


class TestSchema:
    def test_fresh_database_is_v3_with_load_runs(self, tmp_path):
        path = str(tmp_path / "led.db")
        with RunLedger(path) as ledger:
            assert ledger.load_count() == 0
        conn = sqlite3.connect(path)
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            tables = {r[0] for r in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )}
        finally:
            conn.close()
        assert version == SCHEMA_VERSION == 3
        assert "load_runs" in tables

    def test_v2_database_migrates_to_v3(self, tmp_path):
        path = str(tmp_path / "led.db")
        with RunLedger(path):
            pass
        # Rewind to a v2 layout: drop the load table, stamp version 2.
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE load_runs")
        conn.execute("PRAGMA user_version = 2")
        conn.commit()
        conn.close()
        with RunLedger(path) as ledger:
            load_id = ledger.record_load_run(make_row())
            assert ledger.load_run(load_id).label == "grp"
        conn = sqlite3.connect(path)
        try:
            assert conn.execute(
                "PRAGMA user_version"
            ).fetchone()[0] == SCHEMA_VERSION
        finally:
            conn.close()


class TestArchival:
    def test_roundtrip_preserves_json_fields(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            row = make_row(refusals={"rate_limited": 3},
                           sketches={"request": {"alpha": 0.01}})
            load_id = ledger.record_load_run(row)
            got = ledger.load_run(load_id)
        assert got.refusals == {"rate_limited": 3}
        assert got.sketches == {"request": {"alpha": 0.01}}
        assert got.stages == row.stages
        assert got.recorded_at > 0
        assert json.dumps(got.to_dict())  # JSON-ready

    def test_filters_and_ordering(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            for i in range(5):
                ledger.record_load_run(
                    make_row(label="a" if i % 2 == 0 else "b")
                )
            a_rows = ledger.load_runs(label="a", limit=0)
            newest = ledger.load_runs(limit=2)
            assert len(a_rows) == 3
            assert [r.load_id for r in newest] == [5, 4]
            assert ledger.load_count() == 5

    def test_missing_load_run_raises_keyerror(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            with pytest.raises(KeyError):
                ledger.load_run(404)

    def test_writable_probe(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            assert ledger.writable() is True

    def test_null_ledger_is_inert(self):
        null = NullLedger()
        assert null.record_load_run(make_row()) == 0
        assert null.load_runs() == []
        assert null.load_count() == 0
        assert null.writable() is True
        with pytest.raises(KeyError):
            null.load_run(1)


class TestBaselineGate:
    def test_baseline_folds_groups(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            ledger.record_load_run(make_row("x", achieved=100.0))
            ledger.record_load_run(make_row("x", achieved=120.0))
            ledger.record_load_run(make_row("y", achieved=50.0))
            baseline = load_baseline_from_ledger(ledger)
        assert set(baseline) == {"x", "y"}
        assert baseline["x"]["achieved_rps"] == pytest.approx(110.0)
        assert baseline["x"]["n_runs"] == 2

    def test_extract_requires_load_baseline_key(self):
        with pytest.raises(ValueError):
            extract_load_baseline({"ledger_baseline": {}})
        with pytest.raises(ValueError):
            extract_load_baseline({"load_baseline": {"g": {"p99_s": 1.0}}})
        good = {"load_baseline": {"g": {"achieved_rps": 10.0}}}
        assert extract_load_baseline(good)["g"]["achieved_rps"] == 10.0

    def test_matching_current_passes(self, tmp_path):
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            ledger.record_load_run(make_row())
            baseline = load_baseline_from_ledger(ledger)
            report = compare_load_to_baseline(ledger, baseline)
        assert report.ok
        assert not report.regressions
        assert "ok" in report.render()

    def test_throughput_collapse_is_flagged(self, tmp_path):
        baseline = {"grp": {"achieved_rps": 200.0, "p99_s": 0.010,
                            "n_runs": 1}}
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            ledger.record_load_run(make_row(achieved=100.0))
            report = compare_load_to_baseline(ledger, baseline)
        assert not report.ok
        assert report.regressions[0].group == "grp"

    def test_p99_blowup_is_flagged(self, tmp_path):
        baseline = {"grp": {"achieved_rps": 200.0, "p99_s": 0.010,
                            "n_runs": 1}}
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            ledger.record_load_run(make_row(p99=0.050))
            report = compare_load_to_baseline(ledger, baseline)
        assert not report.ok

    def test_missing_group_reported(self, tmp_path):
        baseline = {"ghost": {"achieved_rps": 10.0, "p99_s": 0.010}}
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            report = compare_load_to_baseline(ledger, baseline)
        assert report.missing_groups == ["ghost"]
        assert not report.ok

    def test_stat_gate_forgives_insignificant_latency_noise(self, tmp_path):
        # Mean latency wobbles inside the noise; Welch says no slowdown.
        baseline = {"grp": {
            "achieved_rps": 200.0, "p99_s": 0.010,
            "latency_mean_s": 0.005, "latency_std_s": 0.004,
            "n_samples": 100, "n_runs": 1,
        }}
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            ledger.record_load_run(
                make_row(latency_mean_s=0.0052, latency_std_s=0.004)
            )
            report = compare_load_to_baseline(ledger, baseline, stat=True)
        assert report.ok
        delta = report.deltas[0]
        assert delta.stat_tested
