"""Cross-process trace propagation: export, merge, pool round trip."""

import pytest

from repro.obs.export import WORKER_PID_BASE, to_chrome_trace, tracer_events
from repro.obs.tracing import NullTracer, Tracer, get_tracer, use_tracer
from repro.parallel import WorkerPool


def traced_square(x):
    """Pickle-safe worker fn that opens a span under the worker tracer."""
    with get_tracer().span("unit.work", item=x):
        get_tracer().count("units", 1.0)
        return x * x


class TestExportPayload:
    def test_payload_shape(self):
        tracer = Tracer(trace_id="abc123")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.count("n", 2.0)
        payload = tracer.export_payload()
        assert payload["trace_id"] == "abc123"
        assert [s["name"] for s in payload["spans"]] == ["inner", "outer"]
        assert payload["counters"] == {"n": 2.0}
        assert payload["origin_epoch_s"] > 0

    def test_trace_id_defaults_to_fresh_hex(self):
        a, b = Tracer(), Tracer()
        assert a.trace_id and b.trace_id
        assert a.trace_id != b.trace_id

    def test_null_tracer_payload_is_empty(self):
        payload = NullTracer().export_payload()
        assert payload["spans"] == []
        assert NullTracer().merge_payload(payload) == 0


class TestMergePayload:
    def worker_payload(self):
        worker = Tracer(trace_id="parent-id")
        with worker.span("shard"):
            with worker.span("replication"):
                pass
        worker.count("reps", 4.0)
        return worker.export_payload()

    def test_reparenting_and_ids(self):
        parent = Tracer(trace_id="parent-id")
        with parent.span("request") as req:
            n = parent.merge_payload(self.worker_payload(),
                                     parent_id=req.span_id, worker_pid=4242)
        assert n == 2
        by_name = {sp.name: sp for sp in parent.spans}
        shard, rep = by_name["shard"], by_name["replication"]
        # worker root re-parented under the open request span
        assert shard.parent_id == by_name["request"].span_id
        # in-payload parent link remapped, not clobbered
        assert rep.parent_id == shard.span_id
        # fresh ids from the parent's counter — no collisions
        assert len({sp.span_id for sp in parent.spans}) == 3
        assert shard.attributes["worker_pid"] == 4242
        assert shard.attributes["trace_id"] == "parent-id"

    def test_reanchoring_preserves_durations_and_epoch_offsets(self):
        parent = Tracer()
        payload = self.worker_payload()
        span_data = payload["spans"][0]
        parent.merge_payload(payload)
        merged = parent.spans[0]
        assert merged.duration_s == pytest.approx(
            span_data["duration_s"], abs=1e-9)
        # re-anchored onto the parent's monotonic timeline via the epoch
        expect_start = parent.origin_s + (
            span_data["start_epoch_s"] - parent.origin_epoch_s)
        assert merged.start_s == pytest.approx(expect_start, abs=1e-9)

    def test_counters_merge_additively(self):
        parent = Tracer()
        parent.count("reps", 1.0)
        parent.merge_payload(self.worker_payload())
        parent.merge_payload(self.worker_payload())
        assert parent.counters["reps"] == 9.0

    def test_max_spans_overflow_counts_dropped(self):
        parent = Tracer(max_spans=1)
        n = parent.merge_payload(self.worker_payload())
        assert n == 1
        assert parent.dropped["spans"] == 1


class TestExportRouting:
    def merged_parent(self):
        parent = Tracer()
        with parent.span("request") as req:
            for pid in (111, 222):
                worker = Tracer(trace_id=parent.trace_id)
                with worker.span("shard"):
                    pass
                parent.merge_payload(worker.export_payload(),
                                     parent_id=req.span_id, worker_pid=pid)
        return parent

    def test_worker_spans_land_on_worker_pids(self):
        events = tracer_events(self.merged_parent())
        worker_x = [e for e in events
                    if e["ph"] == "X" and e["pid"] >= WORKER_PID_BASE]
        assert {e["pid"] for e in worker_x} == {WORKER_PID_BASE,
                                                WORKER_PID_BASE + 1}
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"
                 and e["pid"] >= WORKER_PID_BASE]
        assert sorted(names) == ["worker (os pid 111)",
                                 "worker (os pid 222)"]
        # worker pids stay below the simulation track range
        assert all(e["pid"] < 100 for e in worker_x)

    def test_trace_id_in_chrome_trace_metadata(self):
        parent = self.merged_parent()
        doc = to_chrome_trace(tracer=parent)
        assert doc["otherData"]["trace_id"] == parent.trace_id


class TestPoolRoundTrip:
    def test_worker_spans_merge_under_parent_trace(self):
        parent = Tracer()
        with use_tracer(parent):
            with parent.span("request"):
                with WorkerPool(2) as pool:
                    results = pool.map(traced_square, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        work = [sp for sp in parent.spans if sp.name == "unit.work"]
        assert len(work) == 4
        request = next(sp for sp in parent.spans if sp.name == "request")
        for sp in work:
            assert sp.parent_id == request.span_id
            assert sp.attributes["trace_id"] == parent.trace_id
            assert "worker_pid" in sp.attributes
        assert parent.counters["units"] == 4.0

    def test_untraced_pool_ships_no_payload(self):
        with WorkerPool(2) as pool:
            results = pool.map(traced_square, [2, 3])
        assert results == [4, 9]
