"""Structured logging: formatters, configuration, logger tree."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Leave the process-global 'repro' logger as we found it."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    saved_propagate = logger.propagate
    yield
    logger.handlers[:] = saved_handlers
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


class TestConfigure:
    def test_key_value_line(self):
        buf = io.StringIO()
        configure_logging(level="info", stream=buf)
        get_logger("unit").info(
            "served", extra={"fields": {"status": 200, "ms": 1.25}}
        )
        line = buf.getvalue().strip()
        assert "repro.unit: served" in line
        assert "status=200" in line and "ms=1.25" in line

    def test_json_line(self):
        buf = io.StringIO()
        configure_logging(level="info", json_mode=True, stream=buf)
        get_logger("unit").info("served", extra={"fields": {"status": 200}})
        payload = json.loads(buf.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.unit"
        assert payload["msg"] == "served"
        assert payload["status"] == 200
        assert isinstance(payload["ts"], float)

    def test_level_filters(self):
        buf = io.StringIO()
        configure_logging(level="warning", stream=buf)
        log = get_logger("unit")
        log.info("quiet")
        log.warning("loud")
        out = buf.getvalue()
        assert "quiet" not in out and "loud" in out

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="verbose")

    def test_repeated_calls_do_not_stack_handlers(self):
        buf = io.StringIO()
        for _ in range(3):
            configure_logging(level="info", stream=buf)
        logger = logging.getLogger(ROOT_LOGGER_NAME)
        assert len(logger.handlers) == 1
        get_logger("unit").info("once")
        assert buf.getvalue().count("once") == 1

    def test_does_not_propagate_to_root(self):
        configure_logging(level="info", stream=io.StringIO())
        assert logging.getLogger(ROOT_LOGGER_NAME).propagate is False


class TestFormatters:
    def record(self, **extra):
        rec = logging.LogRecord(
            name="repro.t", level=logging.INFO, pathname=__file__, lineno=1,
            msg="hello %s", args=("world",), exc_info=None,
        )
        for key, value in extra.items():
            setattr(rec, key, value)
        return rec

    def test_json_formatter_interpolates_message(self):
        payload = json.loads(JsonFormatter().format(self.record()))
        assert payload["msg"] == "hello world"

    def test_json_formatter_ignores_non_mapping_fields(self):
        payload = json.loads(
            JsonFormatter().format(self.record(fields="not-a-dict"))
        )
        assert "not-a-dict" not in payload.values()

    def test_key_value_formatter_includes_exception(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            rec = self.record()
            rec.exc_info = sys.exc_info()
        out = KeyValueFormatter().format(rec)
        assert "hello world" in out and "RuntimeError: boom" in out


class TestGetLogger:
    def test_names_nest_under_repro(self):
        assert get_logger("service.http").name == "repro.service.http"
        assert get_logger().name == ROOT_LOGGER_NAME
