"""Exporters: Chrome trace-event JSON (Perfetto) and JSONL decision logs."""

import io
import json
import pathlib

import pytest

from repro.obs.export import (
    SIM_PID_BASE,
    WALL_PID,
    decision_log_lines,
    simulation_events,
    to_chrome_trace,
    tracer_events,
    write_chrome_trace,
    write_decision_log,
)
from repro.obs.tracing import DecisionRecord, Tracer
from repro.platform.pricing import CostBreakdown
from repro.platform.vm import VMCategory
from repro.simulation.trace import SimulationResult, TaskRecord, VMRecord

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_chrome_trace.json"


def golden_result() -> SimulationResult:
    """A hand-built, fully deterministic two-task / two-VM execution."""
    small = VMCategory(name="small", speed=1e9, hourly_cost=3.6)
    big = VMCategory(name="big", speed=2e9, hourly_cost=7.2)
    tasks = {
        # A downloads for 2 s, computes 23 s, uploads 2 s.
        "A": TaskRecord(
            tid="A", vm_id=0, download_start=5.0, compute_start=7.0,
            compute_end=30.0, outputs_at_dc=32.0, actual_weight=23.0e9,
        ),
        # B starts computing immediately and uploads nothing.
        "B": TaskRecord(
            tid="B", vm_id=1, download_start=10.0, compute_start=10.0,
            compute_end=40.0, outputs_at_dc=40.0, actual_weight=60.0e9,
        ),
    }
    vms = [
        VMRecord(vm_id=0, category=small, booked_at=0.0, ready_at=5.0,
                 end_at=45.0, n_tasks=1),
        VMRecord(vm_id=1, category=big, booked_at=0.0, ready_at=10.0,
                 end_at=40.0, n_tasks=1),
    ]
    cost = CostBreakdown(vm_rental=0.12, vm_initial=0.0,
                         datacenter_time=0.01, datacenter_io=0.002)
    return SimulationResult(
        makespan=40.0, start=0.0, end=40.0, cost=cost, tasks=tasks, vms=vms
    )


def slices(events, **filters):
    out = [e for e in events if e["ph"] == "X"]
    for key, value in filters.items():
        out = [e for e in out if e.get(key) == value]
    return out


class TestTracerEvents:
    def test_spans_become_complete_events(self):
        tracer = Tracer()
        with tracer.span("outer", workflow="montage"):
            with tracer.span("inner"):
                pass
        events = tracer_events(tracer)
        xs = slices(events)
        assert {e["name"] for e in xs} == {"outer", "inner"}
        for event in xs:
            assert event["pid"] == WALL_PID
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        inner = next(e for e in xs if e["name"] == "inner")
        outer = next(e for e in xs if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["workflow"] == "montage"

    def test_process_and_thread_metadata_present(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        events = tracer_events(tracer)
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        assert any(e["name"] == "thread_name" for e in metas)


class TestSimulationEvents:
    def test_one_process_per_vm_with_boot_slices(self):
        events = simulation_events(golden_result())
        process_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {"vm0 (small)", "vm1 (big)"}
        boots = slices(events, cat="boot")
        assert len(boots) == 2
        boot0 = next(e for e in boots if e["pid"] == SIM_PID_BASE)
        assert boot0["ts"] == 0.0 and boot0["dur"] == pytest.approx(5e6)

    def test_download_and_upload_slices_only_when_nonzero(self):
        events = simulation_events(golden_result())
        downloads = slices(events, cat="download")
        uploads = slices(events, cat="upload")
        assert [e["name"] for e in downloads] == ["A (download)"]
        assert [e["name"] for e in uploads] == ["A (upload)"]
        # Uploads overlap later work, so they live on their own track.
        assert uploads[0]["tid"] == 1
        assert downloads[0]["tid"] == 0

    def test_compute_slices_carry_actual_weight(self):
        events = simulation_events(golden_result())
        computes = slices(events, cat="compute")
        assert {e["name"] for e in computes} == {"A", "B"}
        a = next(e for e in computes if e["name"] == "A")
        assert a["args"]["actual_weight"] == pytest.approx(23.0e9)
        assert a["dur"] == pytest.approx(23e6)  # seconds -> microseconds

    def test_times_are_relative_to_simulation_start(self):
        result = golden_result()
        shifted = SimulationResult(
            makespan=result.makespan, start=100.0, end=140.0,
            cost=result.cost,
            tasks={
                tid: TaskRecord(
                    tid=rec.tid, vm_id=rec.vm_id,
                    download_start=rec.download_start + 100.0,
                    compute_start=rec.compute_start + 100.0,
                    compute_end=rec.compute_end + 100.0,
                    outputs_at_dc=rec.outputs_at_dc + 100.0,
                    actual_weight=rec.actual_weight,
                )
                for tid, rec in result.tasks.items()
            },
            vms=[
                VMRecord(vm_id=vm.vm_id, category=vm.category,
                         booked_at=vm.booked_at + 100.0,
                         ready_at=vm.ready_at + 100.0,
                         end_at=vm.end_at + 100.0, n_tasks=vm.n_tasks)
                for vm in result.vms
            ],
        )
        assert simulation_events(shifted) == simulation_events(result)


class TestChromeTraceDocument:
    def test_matches_golden_file(self):
        # Golden check: the exported document is byte-for-byte stable for a
        # fixed simulation result. Regenerate deliberately with
        # tests/obs/regen_golden.py when the format changes.
        doc = to_chrome_trace(result=golden_result(),
                              metadata={"workflow": "golden"})
        golden = json.loads(GOLDEN_PATH.read_text())
        assert doc == golden

    def test_golden_is_schema_valid(self):
        doc = json.loads(GOLDEN_PATH.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert event["ph"] in {"X", "M"}
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["name"], str)
            else:
                assert event["name"] in {"process_name", "thread_name"}
                assert "name" in event["args"]

    def test_combines_both_sources_and_metadata(self):
        tracer = Tracer()
        with tracer.span("schedule"):
            pass
        doc = to_chrome_trace(tracer, golden_result(),
                              metadata={"algorithm": "heft_budg"})
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert WALL_PID in pids
        assert SIM_PID_BASE in pids and SIM_PID_BASE + 1 in pids
        assert doc["otherData"]["algorithm"] == "heft_budg"
        assert doc["otherData"]["generator"] == "repro.obs"

    def test_write_chrome_trace_to_path_and_stream(self, tmp_path):
        path = tmp_path / "run.trace.json"
        doc = write_chrome_trace(str(path), result=golden_result())
        assert json.loads(path.read_text()) == doc
        buf = io.StringIO()
        write_chrome_trace(buf, result=golden_result())
        assert json.loads(buf.getvalue()) == doc


class TestDecisionLog:
    def records(self):
        return [
            DecisionRecord(kind="host_selection", task="T1", chosen_vm=0,
                           category="small", eft=12.5, cost=0.05,
                           n_candidates=2),
            DecisionRecord(kind="refine_move", task="T1", chosen_vm=1,
                           round=1, extra={"from_vm": 0}),
        ]

    def test_lines_are_one_json_object_each(self):
        lines = list(decision_log_lines(self.records()))
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "host_selection" and first["task"] == "T1"
        second = json.loads(lines[1])
        assert second["from_vm"] == 0  # extra is flattened into the record

    def test_write_returns_count(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        n = write_decision_log(str(path), self.records())
        assert n == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_write_to_stream(self):
        buf = io.StringIO()
        assert write_decision_log(buf, self.records()) == 2
        assert len(buf.getvalue().splitlines()) == 2
