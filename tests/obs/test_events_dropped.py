"""Dropped-event accounting on the bus (bounded subscriber queues)."""

from repro.obs.events import EventBus
from repro.obs.prometheus import render_prometheus
from repro.service.metrics import MetricsRegistry


class TestDropCounting:
    def test_overflow_counts_per_subscriber_and_bus_wide(self):
        bus = EventBus()
        sub = bus.subscribe(maxsize=2)
        for i in range(5):
            bus.publish("job.progress", i=i)
        assert sub.dropped == 3
        assert bus.dropped_total == 3
        assert bus.dropped_by_type() == {"job.progress": 3}
        sub.close()

    def test_drops_split_by_event_type(self):
        bus = EventBus()
        sub = bus.subscribe(maxsize=1)
        bus.publish("job.queued")
        bus.publish("job.started")
        bus.publish("job.finished")
        assert bus.dropped_by_type() == {"job.started": 1, "job.finished": 1}
        sub.close()

    def test_only_overflowing_subscribers_drop(self):
        bus = EventBus()
        wide = bus.subscribe(maxsize=16)
        narrow = bus.subscribe(maxsize=1)
        for _ in range(3):
            bus.publish("job.progress")
        assert wide.dropped == 0
        assert narrow.dropped == 2
        assert bus.dropped_total == 2
        wide.close(), narrow.close()

    def test_filtered_subscribers_do_not_drop_unwanted_types(self):
        bus = EventBus()
        sub = bus.subscribe(types=["job.finished"], maxsize=1)
        for _ in range(4):
            bus.publish("job.progress")  # filtered out, never enqueued
        assert sub.dropped == 0
        assert bus.dropped_total == 0
        sub.close()


class TestMetricsExport:
    def test_drops_increment_events_dropped_counter(self):
        metrics = MetricsRegistry()
        bus = EventBus(metrics=metrics)
        sub = bus.subscribe(maxsize=1)
        for _ in range(4):
            bus.publish("job.progress")
        assert metrics.counter("events_dropped") == 3
        text = render_prometheus(metrics.snapshot())
        assert "repro_events_dropped_total 3" in text.splitlines()
        sub.close()

    def test_metrics_assignable_after_construction(self):
        # the engine wires its registry into a caller-supplied bus
        bus = EventBus()
        metrics = MetricsRegistry()
        bus.metrics = metrics
        sub = bus.subscribe(maxsize=1)
        bus.publish("a")
        bus.publish("b")
        assert metrics.counter("events_dropped") == 1
        sub.close()
