"""StageTimings: boundary stamps partition the request's wall clock."""

from repro.obs.stages import STAGES, StageTimings


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestPartitionInvariant:
    def test_segments_sum_to_wall_time(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        for stage, dt in (("admit", 0.01), ("estimate", 0.02),
                          ("reserve", 0.005), ("execute", 1.5),
                          ("reconcile", 0.001)):
            clock.advance(dt)
            st.mark(stage)
        assert st.wall_s == sum(st.stages.values())
        assert abs(st.wall_s - 1.536) < 1e-12

    def test_real_clock_partition_holds(self):
        st = StageTimings()
        for stage in ("admit", "estimate", "execute", "reconcile"):
            st.mark(stage)
        assert all(v >= 0.0 for v in st.stages.values())
        assert abs(sum(st.stages.values()) - st.wall_s) <= 1e-9

    def test_repeated_mark_accumulates(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        clock.advance(1.0)
        assert st.mark("execute") == 1.0
        clock.advance(0.5)
        assert st.mark("execute") == 1.5
        assert st.stages == {"execute": 1.5}
        assert st.wall_s == 1.5

    def test_uncrossed_stages_are_absent(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        clock.advance(0.1)
        st.mark("admit")
        assert "cache" not in st.stages
        assert "batched" not in st.stages


class TestSnapshot:
    def test_to_dict_shape(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        clock.advance(0.25)
        st.mark("execute")
        out = st.to_dict()
        assert out["stages"] == {"execute": 0.25}
        assert out["wall_s"] == 0.25
        assert out["started_epoch_s"] > 0
        # the snapshot is detached from the recorder
        out["stages"]["execute"] = -1
        assert st.stages["execute"] == 0.25

    def test_canonical_stage_order_is_complete(self):
        assert STAGES == ("admit", "estimate", "reserve", "queued",
                          "batched", "execute", "cache", "reconcile")


class TestRejectedBeforeAnyStage:
    """A request refused before any boundary closes leaves a clean record."""

    def test_no_marks_means_empty_stages_and_zero_wall(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        clock.advance(0.5)  # time passes, but no boundary ever closes
        assert st.stages == {}
        assert st.wall_s == 0.0

    def test_to_dict_of_rejected_request_is_consistent(self):
        clock = FakeClock()
        st = StageTimings(clock=clock)
        out = st.to_dict()
        assert out["stages"] == {}
        assert out["wall_s"] == 0.0
        # The partition invariant holds vacuously: sum({}) == wall.
        assert abs(sum(out["stages"].values()) - out["wall_s"]) < 1e-9

    def test_first_mark_after_rejection_window_attributes_everything(self):
        # If a caller does close one boundary late (e.g. an 'admit' stamp
        # on the refusal path), the whole wait lands in that stage and
        # the partition invariant is restored.
        clock = FakeClock()
        st = StageTimings(clock=clock)
        clock.advance(0.125)
        st.mark("admit")
        assert st.stages == {"admit": 0.125}
        assert st.wall_s == 0.125
