"""SLO targets, burn-rate windows, and the offline ledger report."""

import pytest

from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (
    DEFAULT_TARGETS,
    SLOMonitor,
    SLOTarget,
    report_from_rows,
)


class FakeClock:
    def __init__(self):
        self.now = 10_000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestSLOTarget:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLOTarget(name="x", kind="throughput", target=0.9)
        with pytest.raises(ValueError, match="target"):
            SLOTarget(name="x", kind="success_rate", target=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            SLOTarget(name="x", kind="latency", target=0.9)

    def test_is_good_semantics(self):
        lat = SLOTarget(name="fast", kind="latency", target=0.95,
                        threshold_s=2.0)
        assert lat.is_good(duration_s=1.9, success=True)
        assert not lat.is_good(duration_s=2.1, success=True)
        assert not lat.is_good(duration_s=0.1, success=False)
        avail = SLOTarget(name="up", kind="success_rate", target=0.99)
        assert avail.is_good(duration_s=999.0, success=True)
        assert not avail.is_good(duration_s=0.0, success=False)

    def test_to_dict_includes_threshold_only_for_latency(self):
        lat = SLOTarget(name="fast", kind="latency", target=0.95,
                        threshold_s=2.0)
        assert lat.to_dict()["threshold_s"] == 2.0
        avail = SLOTarget(name="up", kind="success_rate", target=0.99)
        assert "threshold_s" not in avail.to_dict()


class TestBurnRates:
    def monitor(self, clock):
        target = SLOTarget(name="avail", kind="success_rate", target=0.9)
        return SLOMonitor(targets=[target], windows_s=(60.0,),
                          resolution_s=10.0, clock=clock)

    def test_burn_rate_formula(self):
        clock = FakeClock()
        mon = self.monitor(clock)
        for _ in range(8):
            mon.observe_request(duration_s=0.1, success=True)
        for _ in range(2):
            mon.observe_request(duration_s=0.1, success=False)
        window = mon.snapshot()["targets"][0]["windows"]["1m"]
        assert window["good"] == 8 and window["bad"] == 2
        assert window["bad_fraction"] == pytest.approx(0.2)
        # burn = bad_fraction / error_budget = 0.2 / 0.1
        assert window["burn_rate"] == pytest.approx(2.0)
        assert window["budget_exhausted"]

    def test_old_samples_fall_out_of_the_window(self):
        clock = FakeClock()
        mon = self.monitor(clock)
        mon.observe_request(duration_s=0.1, success=False)
        clock.advance(120.0)  # two window spans later
        mon.observe_request(duration_s=0.1, success=True)
        window = mon.snapshot()["targets"][0]["windows"]["1m"]
        assert window == {
            "good": 1, "bad": 0, "total": 1, "bad_fraction": 0.0,
            "burn_rate": 0.0, "budget_exhausted": False,
        }

    def test_empty_monitor_reports_zero_burn(self):
        mon = SLOMonitor(clock=FakeClock())
        snap = mon.snapshot()
        assert snap["observed"] == 0
        for target in snap["targets"]:
            for window in target["windows"].values():
                assert window["burn_rate"] == 0.0
                assert not window["budget_exhausted"]


class TestStagePercentiles:
    def test_stage_and_request_sketches(self):
        mon = SLOMonitor(clock=FakeClock())
        for i in range(20):
            mon.observe_request(
                duration_s=0.1 * (i + 1), success=True,
                stages={"admit": 0.001, "execute": 0.09 * (i + 1)},
            )
        pcts = mon.stage_percentiles()
        assert set(pcts) == {"admit", "execute", "request"}
        assert pcts["request"]["count"] == 20
        assert pcts["execute"]["p99"] >= pcts["execute"]["p50"]

    def test_merge_stage_sketch_matches_local_observation(self):
        values = [0.05 * (i + 1) for i in range(40)]
        local = SLOMonitor(clock=FakeClock())
        for v in values:
            local.observe_request(duration_s=v, success=True,
                                  stages={"execute": v})

        shard_a, shard_b = QuantileSketch(), QuantileSketch()
        shard_a.extend(values[:13])
        shard_b.extend(values[13:])
        remote = SLOMonitor(clock=FakeClock())
        remote.merge_stage_sketch("execute", shard_a.to_dict())
        remote.merge_stage_sketch("execute", shard_b.to_dict())

        assert (remote.stage_percentiles()["execute"]
                == local.stage_percentiles()["execute"])


class TestOfflineReport:
    def rows(self):
        return [
            {
                "recorded_at": 1000.0 + i,
                "outcome": "failed" if i == 4 else "ok",
                "extra": {"stages": {
                    "stages": {"admit": 0.001, "execute": 0.2 + 0.01 * i},
                    "wall_s": 0.201 + 0.01 * i,
                    "started_epoch_s": 1000.0 + i,
                }},
            }
            for i in range(5)
        ]

    def test_report_shape_and_counts(self):
        report = report_from_rows(self.rows(), windows_s=(300.0,))
        assert report["observed"] == 5
        assert report["failures"] == 1
        assert set(report["stages"]) == {"admit", "execute", "request"}
        assert report["anchor_epoch_s"] == 1004.0
        names = [t["name"] for t in report["targets"]]
        assert names == [t.name for t in DEFAULT_TARGETS]
        avail = next(t for t in report["targets"]
                     if t["name"] == "availability")
        assert avail["windows"]["5m"]["bad"] == 1

    def test_rows_without_stages_still_count(self):
        rows = [{"recorded_at": 10.0, "outcome": "ok", "extra": {}}]
        report = report_from_rows(rows, windows_s=(60.0,))
        assert report["observed"] == 1
        assert "request" in report["stages"]

    def test_window_anchoring_excludes_old_rows(self):
        rows = self.rows()
        rows.append({
            "recorded_at": 2000.0, "outcome": "ok",
            "extra": {"stages": {"stages": {"execute": 0.1},
                                 "wall_s": 0.1, "started_epoch_s": 2000.0}},
        })
        report = report_from_rows(rows, windows_s=(60.0,))
        avail = next(t for t in report["targets"]
                     if t["name"] == "availability")
        # anchor = 2000; rows at ~1000 fall outside the 60 s window
        assert avail["windows"]["1m"]["total"] == 1
