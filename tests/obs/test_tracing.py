"""Tracer: spans, nesting, decisions, counters, global install."""

import threading

from repro.obs.tracing import (
    DecisionRecord,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpans:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(extra="yes")
        assert len(tracer.spans) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "work"
        assert recorded.attributes == {"size": 3, "extra": "yes"}
        assert recorded.duration_s >= 0.0
        assert recorded.end_s >= recorded.start_s

    def test_nesting_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_span_to_dict_is_json_ready(self):
        tracer = Tracer()
        with tracer.span("x", k="v"):
            pass
        d = tracer.spans[0].to_dict()
        assert d["name"] == "x" and d["attributes"] == {"k": "v"}
        assert set(d) >= {"span_id", "parent_id", "start_s", "duration_s"}

    def test_max_spans_drops_overflow(self):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped["spans"] == 2

    def test_thread_local_stacks(self):
        tracer = Tracer()
        parents = {}

        def worker(name):
            with tracer.span(name) as sp:
                parents[name] = sp.parent_id

        with tracer.span("main-root"):
            t = threading.Thread(target=worker, args=("threaded",))
            t.start()
            t.join()
        # The other thread's span must NOT adopt this thread's root.
        assert parents["threaded"] is None


class TestDecisionsAndCounters:
    def test_decide_appends(self):
        tracer = Tracer()
        tracer.decide(DecisionRecord(kind="host_selection", task="T1"))
        assert len(tracer.decisions) == 1
        assert tracer.decisions[0].task == "T1"

    def test_decision_to_dict_merges_extra(self):
        rec = DecisionRecord(
            kind="refine_move", task="T", round=3, extra={"from_vm": 2}
        )
        d = rec.to_dict()
        assert d["kind"] == "refine_move" and d["round"] == 3
        assert d["from_vm"] == 2

    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("events")
        tracer.count("events", 4)
        assert tracer.counters["events"] == 5

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.decide(DecisionRecord(kind="k", task="t"))
        tracer.count("c")
        tracer.clear()
        assert not tracer.spans and not tracer.decisions
        assert tracer.counters == {}

    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        summary = tracer.summary()
        assert summary["spans"]["repeated"]["count"] == 3
        assert summary["spans"]["repeated"]["total_s"] >= 0.0


class TestGlobalTracer:
    def test_default_is_null(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert tracer.enabled is False

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        with null.span("anything", a=1) as sp:
            sp.set(b=2)
        null.decide(DecisionRecord(kind="k", task="t"))
        null.count("c")
        assert null.summary()["n_decisions"] == 0

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        assert get_tracer() is tracer
        set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)
