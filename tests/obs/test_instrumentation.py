"""Instrumentation hooks: spans, decisions, and counters from real runs."""

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
    refine_schedule,
)
from repro.experiments.budgets import minimal_budget
from repro.obs.tracing import NullTracer, Tracer, get_tracer, use_tracer


@pytest.fixture(scope="module")
def montage():
    return generate("montage", 20, rng=3, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def budget(montage):
    return minimal_budget(montage, PAPER_PLATFORM) * 2.0


class TestSchedulerDecisions:
    def test_one_host_selection_per_task(self, montage, budget):
        tracer = Tracer()
        with use_tracer(tracer):
            make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, budget)
        selections = [d for d in tracer.decisions if d.kind == "host_selection"]
        assert len(selections) == montage.n_tasks
        assert {d.task for d in selections} == set(montage.tasks)

    def test_decision_carries_budget_arithmetic(self, montage, budget):
        tracer = Tracer()
        with use_tracer(tracer):
            make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, budget)
        for rec in tracer.decisions:
            # chosen_vm is None when the winner is a yet-unbooted VM; the
            # category then says which type gets enrolled.
            assert rec.chosen_vm is None or rec.chosen_vm >= 0
            assert rec.category
            assert rec.n_candidates >= 1
            assert rec.candidates, "ranked candidate list must not be empty"
            top = rec.candidates[0]
            assert {"vm", "category", "eft", "cost"} <= set(top)
            assert rec.allowance >= 0.0

    def test_schedule_span_wraps_the_run(self, montage, budget):
        tracer = Tracer()
        with use_tracer(tracer):
            make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, budget)
        spans = [s for s in tracer.spans if s.name == "schedule.heft_budg"]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["n_tasks"] == montage.n_tasks
        assert "within_budget" in attrs and "n_vms" in attrs

    def test_refine_emits_span_and_move_records(self, montage, budget):
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, budget
        )
        tracer = Tracer()
        with use_tracer(tracer):
            refine_schedule(
                montage, PAPER_PLATFORM, base.schedule, budget
            )
        spans = [s for s in tracer.spans if s.name == "schedule.refine"]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["n_evaluations"] >= 0
        assert attrs["n_moves"] >= 0
        moves = [d for d in tracer.decisions if d.kind == "refine_move"]
        assert len(moves) == attrs["n_moves"]
        for move in moves:
            assert "from_vm" in move.to_dict()
            assert move.extra["makespan_after"] <= move.extra["makespan_before"]


class TestExecutorCounters:
    def test_counters_match_run_shape(self, montage, budget):
        planned = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, budget
        )
        tracer = Tracer()
        with use_tracer(tracer):
            run = evaluate_schedule(montage, PAPER_PLATFORM, planned.schedule)
        assert tracer.counters["sim.runs"] == 1
        assert tracer.counters["sim.tasks"] == montage.n_tasks
        assert tracer.counters["sim.boots"] == run.n_vms
        assert tracer.counters["sim.events"] >= montage.n_tasks

    def test_execute_span_carries_phase_timings(self, montage, budget):
        planned = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, budget
        )
        tracer = Tracer()
        with use_tracer(tracer):
            run = evaluate_schedule(montage, PAPER_PLATFORM, planned.schedule)
        spans = [s for s in tracer.spans if s.name == "simulate.execute"]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["makespan"] == pytest.approx(run.makespan)
        for key in ("setup_s", "loop_s", "accounting_s"):
            assert attrs[key] >= 0.0

    def test_repeated_runs_accumulate(self, montage, budget):
        planned = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, budget
        )
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(3):
                evaluate_schedule(montage, PAPER_PLATFORM, planned.schedule)
        assert tracer.counters["sim.runs"] == 3
        assert tracer.counters["sim.tasks"] == 3 * montage.n_tasks


class TestDisabledByDefault:
    def test_runs_record_nothing_without_install(self, montage, budget):
        assert isinstance(get_tracer(), NullTracer)
        bystander = Tracer()  # never installed
        planned = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, budget
        )
        evaluate_schedule(montage, PAPER_PLATFORM, planned.schedule)
        assert not bystander.spans and not bystander.decisions
        assert get_tracer().summary()["n_decisions"] == 0
