"""In-process event bus: publish/subscribe, history replay, SSE frames."""

import json
import threading

import pytest

from repro.obs.events import (
    JOB_EVENT_TYPES,
    RUN_RECORDED,
    Event,
    EventBus,
    Subscription,
)


class TestEvent:
    def test_to_dict_roundtrips_payload(self):
        ev = Event(seq=3, type="job.queued", ts=12.5, data={"job_id": "j-1"})
        d = ev.to_dict()
        assert d["seq"] == 3
        assert d["type"] == "job.queued"
        assert d["data"] == {"job_id": "j-1"}

    def test_sse_frame_shape(self):
        ev = Event(seq=7, type="job.finished", ts=1.0, data={"state": "done"})
        frame = ev.to_sse()
        lines = frame.splitlines()
        assert lines[0] == "id: 7"
        assert lines[1] == "event: job.finished"
        assert lines[2].startswith("data: ")
        payload = json.loads(lines[2][len("data: "):])
        assert payload["data"] == {"state": "done"}
        assert frame.endswith("\n\n")


class TestEventBus:
    def test_publish_assigns_monotonic_seq(self):
        bus = EventBus()
        e1 = bus.publish("job.queued", job_id="a")
        e2 = bus.publish("job.started", job_id="a")
        assert (e1.seq, e2.seq) == (1, 2)
        assert bus.last_seq == 2

    def test_subscriber_receives_published_events(self):
        bus = EventBus()
        with bus.subscribe() as sub:
            bus.publish("job.queued", job_id="a")
            got = sub.get(timeout=1.0)
        assert got is not None and got.type == "job.queued"

    def test_type_filter(self):
        bus = EventBus()
        with bus.subscribe(types=("job.finished",)) as sub:
            bus.publish("job.queued", job_id="a")
            bus.publish("job.finished", job_id="a")
            got = sub.get(timeout=1.0)
            assert got.type == "job.finished"
            assert sub.get(timeout=0.05) is None

    def test_history_replay_and_after_seq(self):
        bus = EventBus()
        for i in range(5):
            bus.publish("job.progress", step=i)
        assert [e.data["step"] for e in bus.history()] == [0, 1, 2, 3, 4]
        tail = bus.history(after_seq=3)
        assert [e.seq for e in tail] == [4, 5]
        newest = bus.history(limit=2)
        assert [e.data["step"] for e in newest] == [3, 4]
        assert bus.history(limit=0) == []

    def test_history_match_predicate(self):
        bus = EventBus()
        bus.publish("job.queued", job_id="a")
        bus.publish("job.queued", job_id="b")
        mine = bus.history(match=lambda e: e.data.get("job_id") == "b")
        assert len(mine) == 1 and mine[0].data["job_id"] == "b"

    def test_slow_subscriber_drops_instead_of_blocking(self):
        bus = EventBus()
        sub = bus.subscribe(maxsize=2)
        for i in range(10):
            bus.publish("job.progress", step=i)
        # publisher never blocked; the overflow is counted, not raised
        assert sub.dropped == 8
        assert sub.get(timeout=0.1).data["step"] == 0
        sub.close()
        assert bus.n_subscribers == 0

    def test_closed_subscription_stops_receiving(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("job.queued", job_id="x")
        assert sub.get(timeout=0.05) is None

    def test_concurrent_publishers_keep_seq_unique(self):
        bus = EventBus()
        n, workers = 50, 8

        def pump(k):
            for _ in range(n):
                bus.publish("job.progress", worker=k)

        threads = [threading.Thread(target=pump, args=(k,))
                   for k in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in bus.history()]
        assert bus.last_seq == n * workers
        assert len(set(seqs)) == len(seqs)

    def test_known_event_type_constants(self):
        assert "job.queued" in JOB_EVENT_TYPES
        assert "job.finished" in JOB_EVENT_TYPES
        assert RUN_RECORDED == "run.recorded"


class TestSubscriptionIterator:
    def test_events_iterator_yields_until_closed(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("job.queued", job_id="a")
        bus.publish("job.finished", job_id="a")
        seen = []
        for ev in sub.events():
            seen.append(ev.type)
            if ev.type == "job.finished":
                break
        assert seen == ["job.queued", "job.finished"]
        sub.close()
