"""Prometheus text exposition of MetricsRegistry snapshots."""

import pytest

from repro.obs.prometheus import (
    escape_help,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.service.metrics import MetricsRegistry


def lines_of(text):
    return [line for line in text.splitlines() if line]


def samples_of(text):
    """name -> value for every non-comment exposition line."""
    out = {}
    for line in lines_of(text):
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = value
    return out


class TestSanitize:
    def test_replaces_illegal_characters(self):
        assert sanitize_metric_name("schedule.latency-s") == "schedule_latency_s"

    def test_prefixes_leading_digit(self):
        assert sanitize_metric_name("5xx") == "_5xx"

    def test_keeps_legal_names(self):
        assert sanitize_metric_name("jobs_total:rate") == "jobs_total:rate"


class TestRender:
    def snapshot(self):
        reg = MetricsRegistry(buckets=(0.1, 1.0))
        reg.incr("requests", 7)
        for v in (0.05, 0.5, 2.0):
            reg.observe("latency_s", v)
        return reg.snapshot()

    def test_counters_get_total_suffix(self):
        text = render_prometheus(self.snapshot())
        samples = samples_of(text)
        assert samples["repro_requests_total"] == "7"
        assert "# TYPE repro_requests_total counter" in lines_of(text)

    def test_series_render_as_summary(self):
        text = render_prometheus(self.snapshot())
        samples = samples_of(text)
        assert "# TYPE repro_latency_s summary" in lines_of(text)
        assert float(samples['repro_latency_s{quantile="0.5"}']) == pytest.approx(0.5)
        assert float(samples["repro_latency_s_sum"]) == pytest.approx(2.55)
        assert samples["repro_latency_s_count"] == "3"

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self.snapshot())
        samples = samples_of(text)
        assert "# TYPE repro_latency_s_histogram histogram" in lines_of(text)
        assert samples['repro_latency_s_histogram_bucket{le="0.1"}'] == "1"
        assert samples['repro_latency_s_histogram_bucket{le="1"}'] == "2"
        assert samples['repro_latency_s_histogram_bucket{le="+Inf"}'] == "3"
        assert samples["repro_latency_s_histogram_count"] == "3"

    def test_gauges_section(self):
        text = render_prometheus({"counters": {}, "series": {}},
                                 gauges={"uptime_seconds": 12.5})
        samples = samples_of(text)
        assert samples["repro_uptime_seconds"] == "12.5"
        assert "# TYPE repro_uptime_seconds gauge" in lines_of(text)

    def test_custom_namespace(self):
        text = render_prometheus({"counters": {"n": 1}, "series": {}},
                                 namespace="svc")
        assert "svc_n_total 1" in lines_of(text)

    def test_empty_snapshot_renders_empty_document(self):
        assert render_prometheus({"counters": {}, "series": {}}) == "\n"

    def test_special_float_values(self):
        text = render_prometheus(
            {"counters": {}, "series": {}},
            gauges={"inf": float("inf"), "nan": float("nan")},
        )
        samples = samples_of(text)
        assert samples["repro_inf"] == "+Inf"
        assert samples["repro_nan"] == "NaN"

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == r'a\"b'
        assert escape_label_value("a\\b") == r"a\\b"
        assert escape_label_value("a\nb") == r"a\nb"
        assert escape_label_value("plain") == "plain"

    def test_escape_help(self):
        assert escape_help("a\nb") == r"a\nb"
        assert escape_help("a\\b") == r"a\\b"
        assert escape_help('quotes "stay"') == 'quotes "stay"'

    def test_help_precedes_type_precedes_samples(self):
        """Exposition-format conformance: family comment ordering."""
        text = render_prometheus(self.snapshot(), gauges={"g": 1.0})
        seen_for = {}
        for line in lines_of(text):
            if line.startswith("# HELP "):
                name = line.split()[2]
                assert name not in seen_for, f"duplicate HELP for {name}"
                seen_for[name] = "help"
            elif line.startswith("# TYPE "):
                name = line.split()[2]
                assert seen_for.get(name) == "help", \
                    f"TYPE before HELP for {name}"
                seen_for[name] = "type"
            else:
                name = line.split("{")[0].rsplit(" ", 1)[0]
                base = name
                for suffix in ("_bucket", "_sum", "_count"):
                    if base.endswith(suffix):
                        base = base[: -len(suffix)]
                        break
                assert seen_for.get(base) == "type", \
                    f"sample before TYPE for {name}"

    def test_histogram_inf_bucket_equals_count(self):
        text = render_prometheus(self.snapshot())
        samples = samples_of(text)
        inf = samples['repro_latency_s_histogram_bucket{le="+Inf"}']
        assert inf == samples["repro_latency_s_histogram_count"]

    def test_histogram_buckets_are_monotone(self):
        text = render_prometheus(self.snapshot())
        counts = []
        for line in lines_of(text):
            if line.startswith("repro_latency_s_histogram_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)

    def test_summary_and_histogram_sum_count_agree(self):
        text = render_prometheus(self.snapshot())
        samples = samples_of(text)
        assert (samples["repro_latency_s_sum"]
                == samples["repro_latency_s_histogram_sum"])
        assert (samples["repro_latency_s_count"]
                == samples["repro_latency_s_histogram_count"])

    def test_slo_percentile_gauges_render(self):
        gauges = {
            "slo_stage_execute_p99_seconds": 0.25,
            "slo_burn_rate_availability_5m": 2.5,
        }
        text = render_prometheus({"counters": {}, "series": {}},
                                 gauges=gauges)
        samples = samples_of(text)
        assert samples["repro_slo_stage_execute_p99_seconds"] == "0.25"
        assert samples["repro_slo_burn_rate_availability_5m"] == "2.5"
        assert ("# TYPE repro_slo_stage_execute_p99_seconds gauge"
                in lines_of(text))

    def test_empty_window_summary_renders_without_quantiles(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.snapshot(reset_windows=True)
        text = render_prometheus(reg.snapshot())
        samples = samples_of(text)
        assert 'repro_lat{quantile="0.5"}' not in samples
        assert samples["repro_lat_count"] == "1"  # lifetime survives

    def test_every_metric_has_help_and_type(self):
        text = render_prometheus(self.snapshot(), gauges={"g": 1.0})
        metric_names = {
            line.split("{")[0].rsplit(" ", 1)[0]
            for line in lines_of(text)
            if not line.startswith("#")
        }
        typed = {
            line.split()[2]
            for line in lines_of(text)
            if line.startswith("# TYPE")
        }
        for name in metric_names:
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                    break
            assert base in typed, f"{name} has no TYPE line"
