"""Run ledger: persistence, concurrency, re-open, and the regression gate."""

import json
import threading

import pytest

from repro.obs.events import EventBus
from repro.obs.ledger import (
    SCHEMA_VERSION,
    NullLedger,
    RunLedger,
    RunRow,
    baseline_from_ledger,
    compare_to_baseline,
    extract_baseline,
    get_ledger,
    set_ledger,
    use_ledger,
)


def make_row(**overrides):
    base = dict(
        source="sweep", workflow="montage-30-i0", family="montage",
        n_tasks=30, algorithm="heft_budg", budget=0.5, sigma_ratio=0.5,
        planned_makespan=100.0, planned_cost=0.4, within_budget_plan=True,
        sim_makespan=110.0, sim_cost=0.38, success_rate=1.0, n_reps=5,
        n_vms=3, sched_seconds=0.01, extra={"note": "test"},
    )
    base.update(overrides)
    return RunRow(**base)


class TestRoundtrip:
    def test_record_assigns_id_and_reads_back(self):
        with RunLedger() as ledger:
            run_id = ledger.record(make_row())
            assert run_id == 1
            row = ledger.run(run_id)
            assert row.algorithm == "heft_budg"
            assert row.within_budget_plan is True
            assert row.extra == {"note": "test"}
            assert row.recorded_at > 0
            assert row.version  # auto-filled

    def test_unknown_run_raises_keyerror(self):
        with RunLedger() as ledger:
            with pytest.raises(KeyError):
                ledger.run(99)

    def test_query_filters(self):
        with RunLedger() as ledger:
            ledger.record(make_row(algorithm="heft_budg"))
            ledger.record(make_row(algorithm="bdt"))
            ledger.record(make_row(algorithm="bdt", source="service"))
            assert len(ledger.runs(algorithm="bdt")) == 2
            assert len(ledger.runs(source="service")) == 1
            # workflow filter matches the family column too
            assert len(ledger.runs(workflow="montage")) == 3
            assert ledger.count() == 3

    def test_runs_are_newest_first_and_limited(self):
        with RunLedger() as ledger:
            for i in range(5):
                ledger.record(make_row(budget=float(i)))
            rows = ledger.runs(limit=2)
            assert [r.budget for r in rows] == [4.0, 3.0]
            assert len(ledger.runs(limit=0)) == 5

    def test_row_dict_roundtrip(self):
        row = make_row()
        again = RunRow.from_dict(row.to_dict())
        assert again == row
        with pytest.raises(ValueError):
            RunRow.from_dict({"nope": 1})

    def test_record_publishes_run_recorded_event(self):
        bus = EventBus()
        with RunLedger(bus=bus) as ledger:
            ledger.record(make_row(trace_id="job-7"))
        events = bus.history(types=("run.recorded",))
        assert len(events) == 1
        assert events[0].data["trace_id"] == "job-7"
        assert events[0].data["run_id"] == 1


class TestPersistence:
    def test_file_ledger_survives_reopen(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with RunLedger(path) as ledger:
            ledger.record(make_row())
        with RunLedger(path) as again:
            assert again.count() == 1
            assert again.run(1).algorithm == "heft_budg"

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with RunLedger(path) as ledger:
            ledger._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 7}")
            ledger._conn.commit()
        with pytest.raises(ValueError, match="schema version"):
            RunLedger(path)

    def test_concurrent_writers_all_land(self, tmp_path):
        path = str(tmp_path / "runs.db")
        n, workers = 20, 6
        with RunLedger(path) as ledger:
            def pump(k):
                for i in range(n):
                    ledger.record(make_row(budget=float(k * 1000 + i)))

            threads = [threading.Thread(target=pump, args=(k,))
                       for k in range(workers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert ledger.count() == n * workers
            ids = [r.run_id for r in ledger.runs(limit=0)]
            assert len(set(ids)) == n * workers

    def test_two_connections_same_file(self, tmp_path):
        # WAL mode: a second in-process connection appends concurrently.
        path = str(tmp_path / "runs.db")
        with RunLedger(path) as a, RunLedger(path) as b:
            a.record(make_row(algorithm="a"))
            b.record(make_row(algorithm="b"))
            assert a.count() == 2
            assert b.count() == 2


class TestGlobalInstall:
    def test_default_is_null_ledger(self):
        assert isinstance(get_ledger(), NullLedger)
        assert get_ledger().enabled is False

    def test_null_ledger_is_inert(self):
        null = NullLedger()
        assert null.record(make_row()) == 0
        assert null.runs() == []
        assert null.count() == 0
        assert null.group_stats() == {}
        with pytest.raises(KeyError):
            null.run(1)

    def test_use_ledger_scopes_install(self):
        ledger = RunLedger()
        with use_ledger(ledger):
            assert get_ledger() is ledger
        assert isinstance(get_ledger(), NullLedger)
        ledger.close()

    def test_set_ledger_none_restores_null(self):
        ledger = RunLedger()
        set_ledger(ledger)
        try:
            assert get_ledger() is ledger
        finally:
            set_ledger(None)
        assert isinstance(get_ledger(), NullLedger)
        ledger.close()


class TestGroupStats:
    def test_groups_by_family_size_algorithm(self):
        with RunLedger() as ledger:
            ledger.record(make_row(sim_makespan=100.0))
            ledger.record(make_row(sim_makespan=120.0))
            ledger.record(make_row(algorithm="bdt", sim_makespan=90.0))
            stats = ledger.group_stats()
        assert stats["montage/30/heft_budg"]["makespan"] == pytest.approx(110.0)
        assert stats["montage/30/heft_budg"]["n_runs"] == 2
        assert stats["montage/30/bdt"]["makespan"] == pytest.approx(90.0)

    def test_latest_per_group_keeps_newest(self):
        with RunLedger() as ledger:
            ledger.record(make_row(sim_makespan=100.0))
            ledger.record(make_row(sim_makespan=200.0))
            stats = ledger.group_stats(latest_per_group=1)
        assert stats["montage/30/heft_budg"]["makespan"] == pytest.approx(200.0)

    def test_planned_only_rows_have_no_makespan_key(self):
        with RunLedger() as ledger:
            ledger.record(make_row(sim_makespan=None, sim_cost=None,
                                   success_rate=None))
            stats = ledger.group_stats()
            assert "makespan" not in stats["montage/30/heft_budg"]
            assert baseline_from_ledger(ledger) == {}


class TestRegressionGate:
    def test_parity_is_ok(self):
        with RunLedger() as ledger:
            ledger.record(make_row())
            baseline = baseline_from_ledger(ledger)
            report = compare_to_baseline(ledger, baseline)
        assert report.ok
        assert not report.regressions
        assert "ok" in report.render()

    def test_injected_20pct_regression_flags(self):
        with RunLedger() as ledger:
            ledger.record(make_row(sim_makespan=120.0))
            baseline = {"montage/30/heft_budg": {
                "makespan": 100.0, "cost": 0.38, "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline,
                                         makespan_threshold=0.10)
        assert not report.ok
        assert len(report.regressions) == 1
        assert report.regressions[0].makespan_change == pytest.approx(0.20)
        assert "REGRESSED" in report.render()

    def test_cost_regression_flags_independently(self):
        with RunLedger() as ledger:
            ledger.record(make_row(sim_makespan=100.0, sim_cost=0.60))
            baseline = {"montage/30/heft_budg": {
                "makespan": 100.0, "cost": 0.38, "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline)
        assert not report.ok and len(report.regressions) == 1

    def test_missing_group_reported_not_failed(self):
        with RunLedger() as ledger:
            ledger.record(make_row())
            baseline = {
                "montage/30/heft_budg": {"makespan": 110.0, "cost": 0.38,
                                         "n_runs": 1},
                "ligo/90/bdt": {"makespan": 50.0, "cost": 1.0, "n_runs": 1},
            }
            report = compare_to_baseline(ledger, baseline)
        assert report.missing_groups == ["ligo/90/bdt"]
        assert report.ok  # the matched group is fine
        assert "missing" in report.render()

    def test_empty_comparison_is_not_ok(self):
        with RunLedger() as ledger:
            report = compare_to_baseline(
                ledger, {"g/1/x": {"makespan": 1.0, "n_runs": 1}}
            )
        assert not report.ok
        assert report.missing_groups == ["g/1/x"]

    def test_extract_baseline_shapes(self):
        groups = {"montage/30/heft_budg": {"makespan": 1.0}}
        assert extract_baseline({"ledger_baseline": groups}) == groups
        assert extract_baseline(groups) == groups
        with pytest.raises(ValueError):
            extract_baseline({"benchmarks": {"throughput": {"mean_s": 1.0}}})
        with pytest.raises(ValueError):
            extract_baseline({})

    def test_baseline_json_roundtrip(self):
        with RunLedger() as ledger:
            ledger.record(make_row())
            baseline = baseline_from_ledger(ledger)
            doc = json.loads(json.dumps({"ledger_baseline": baseline}))
            report = compare_to_baseline(ledger, extract_baseline(doc))
        assert report.ok


class TestPrune:
    def test_max_rows_keeps_newest(self):
        with RunLedger() as ledger:
            for i in range(6):
                ledger.record(make_row(budget=float(i)))
            assert ledger.prune(max_rows=2) == 4
            rows = ledger.runs(limit=0)
            assert [r.budget for r in rows] == [5.0, 4.0]

    def test_max_age_drops_old_rows(self):
        with RunLedger() as ledger:
            ledger.record(make_row(budget=1.0))
            ledger.record(make_row(budget=2.0))
            # backdate the first row by ten days
            ledger._conn.execute(
                "UPDATE runs SET recorded_at = recorded_at - 864000 "
                "WHERE run_id = 1"
            )
            ledger._conn.commit()
            assert ledger.prune(max_age_days=5.0) == 1
            (row,) = ledger.runs(limit=0)
            assert row.budget == 2.0

    def test_combined_constraints(self):
        with RunLedger() as ledger:
            for i in range(4):
                ledger.record(make_row(budget=float(i)))
            ledger._conn.execute(
                "UPDATE runs SET recorded_at = recorded_at - 864000 "
                "WHERE run_id = 1"
            )
            ledger._conn.commit()
            assert ledger.prune(max_age_days=5.0, max_rows=2) == 2
            assert ledger.count() == 2

    def test_no_constraints_deletes_nothing(self):
        with RunLedger() as ledger:
            ledger.record(make_row())
            assert ledger.prune() == 0
            assert ledger.count() == 1

    def test_negative_arguments_rejected(self):
        with RunLedger() as ledger:
            with pytest.raises(ValueError, match="max_rows"):
                ledger.prune(max_rows=-1)
            with pytest.raises(ValueError, match="max_age_days"):
                ledger.prune(max_age_days=-0.5)

    def test_null_ledger_prunes_nothing(self):
        assert NullLedger().prune(max_rows=0) == 0

    @staticmethod
    def _load_row(label):
        from repro.obs.ledger import LoadRunRow

        return LoadRunRow(
            label=label, config_fingerprint="c" * 64,
            sequence_fingerprint="s" * 64, process="poisson",
            target="inproc", executor="thread", n_requests=10, n_ok=10,
            n_cached=0, n_rejected=0, n_errors=0, refusals={},
            offered_rps=100.0, achieved_rps=100.0, duration_s=0.1,
            latency_mean_s=0.005, latency_std_s=0.001, p50_s=0.004,
            p95_s=0.008, p99_s=0.010, cost_total=1.0, stages={},
            sketches={}, extra={},
        )

    def test_max_rows_prunes_load_runs_too(self):
        with RunLedger() as ledger:
            for i in range(5):
                ledger.record_load_run(self._load_row(f"grp{i}"))
            assert ledger.prune(max_rows=2) == 3
            rows = ledger.load_runs(limit=0)
            assert [r.label for r in rows] == ["grp4", "grp3"]

    def test_max_rows_bounds_each_table_independently(self):
        with RunLedger() as ledger:
            for i in range(4):
                ledger.record(make_row(budget=float(i)))
                ledger.record_load_run(self._load_row(f"grp{i}"))
            assert ledger.prune(max_rows=1) == 6
            assert ledger.count() == 1
            assert ledger.load_count() == 1

    def test_max_age_drops_old_load_runs(self):
        with RunLedger() as ledger:
            ledger.record_load_run(self._load_row("old"))
            ledger.record_load_run(self._load_row("new"))
            ledger._conn.execute(
                "UPDATE load_runs SET recorded_at = recorded_at - 864000 "
                "WHERE load_id = 1"
            )
            ledger._conn.commit()
            assert ledger.prune(max_age_days=5.0) == 1
            (row,) = ledger.load_runs(limit=0)
            assert row.label == "new"


# The v1 layout, as shipped before the fault-injection fields landed —
# used to prove in-place migration below.
_V1_CREATE = """
CREATE TABLE runs (
    run_id             INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at        REAL NOT NULL,
    source             TEXT NOT NULL,
    fingerprint        TEXT NOT NULL DEFAULT '',
    workflow           TEXT NOT NULL DEFAULT '',
    family             TEXT NOT NULL DEFAULT '',
    n_tasks            INTEGER NOT NULL DEFAULT 0,
    algorithm          TEXT NOT NULL DEFAULT '',
    budget             REAL NOT NULL DEFAULT 0.0,
    sigma_ratio        REAL NOT NULL DEFAULT 0.0,
    planned_makespan   REAL NOT NULL DEFAULT 0.0,
    planned_cost       REAL NOT NULL DEFAULT 0.0,
    within_budget_plan INTEGER NOT NULL DEFAULT 1,
    sim_makespan       REAL,
    sim_cost           REAL,
    success_rate       REAL,
    n_reps             INTEGER NOT NULL DEFAULT 0,
    n_vms              INTEGER NOT NULL DEFAULT 0,
    sched_seconds      REAL NOT NULL DEFAULT 0.0,
    elapsed_s          REAL NOT NULL DEFAULT 0.0,
    trace_id           TEXT NOT NULL DEFAULT '',
    version            TEXT NOT NULL DEFAULT '',
    extra              TEXT NOT NULL DEFAULT '{}'
);
"""


class TestMigration:
    def _make_v1_db(self, path):
        import sqlite3

        conn = sqlite3.connect(path)
        conn.executescript(_V1_CREATE)
        conn.execute(
            "INSERT INTO runs (recorded_at, source, algorithm, family, "
            "n_tasks) VALUES (1.0, 'sweep', 'heft_budg', 'montage', 30)"
        )
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()

    def test_v1_database_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "old.db")
        self._make_v1_db(path)
        with RunLedger(path) as ledger:
            row = ledger.run(1)
            assert row.algorithm == "heft_budg"
            # new columns arrive with their defaults
            assert row.outcome == "ok"
            assert row.n_faults == 0
            version = ledger._conn.execute("PRAGMA user_version").fetchone()[0]
            assert version == SCHEMA_VERSION
            # the migrated db accepts v2 rows
            ledger.record(make_row(outcome="failed", n_faults=3))
            assert ledger.run(2).outcome == "failed"

    def test_migrated_db_reopens_without_remigration(self, tmp_path):
        path = str(tmp_path / "old.db")
        self._make_v1_db(path)
        with RunLedger(path):
            pass
        with RunLedger(path) as again:  # second open: already at v2
            assert again.run(1).outcome == "ok"

    def test_fresh_database_is_stamped_current(self, tmp_path):
        path = str(tmp_path / "new.db")
        with RunLedger(path) as ledger:
            version = ledger._conn.execute("PRAGMA user_version").fetchone()[0]
            assert version == SCHEMA_VERSION


class TestSuccessGate:
    def test_success_rate_drop_flags_regression(self):
        with RunLedger() as ledger:
            ledger.record(make_row(success_rate=0.5))
            baseline = {"montage/30/heft_budg": {
                "makespan": 110.0, "cost": 0.38, "success_rate": 1.0,
                "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline)
        assert not report.ok and len(report.regressions) == 1
        delta = report.regressions[0]
        assert delta.success_change == pytest.approx(-0.5)
        assert "REGRESSED" in report.render()

    def test_success_rate_improvement_is_ok(self):
        with RunLedger() as ledger:
            ledger.record(make_row(success_rate=1.0))
            baseline = {"montage/30/heft_budg": {
                "makespan": 110.0, "cost": 0.38, "success_rate": 0.8,
                "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline)
        assert report.ok

    def test_small_drop_within_threshold_is_ok(self):
        with RunLedger() as ledger:
            ledger.record(make_row(success_rate=0.97))
            baseline = {"montage/30/heft_budg": {
                "makespan": 110.0, "cost": 0.38, "success_rate": 1.0,
                "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline,
                                         success_threshold=0.05)
        assert report.ok

    def test_legacy_baseline_without_success_is_ok(self):
        # pre-v2 BENCH files have no success_rate key: treated as parity
        with RunLedger() as ledger:
            ledger.record(make_row(success_rate=None))
            baseline = {"montage/30/heft_budg": {
                "makespan": 110.0, "cost": 0.38, "n_runs": 1}}
            report = compare_to_baseline(ledger, baseline)
        assert report.ok
