"""Sampling profiler: collapsed stacks, top frames, lifecycle."""

import time

import pytest

from repro.obs.profiler import SamplingProfiler


def spin(seconds):
    """Busy loop so the sampler has frames to catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestLifecycle:
    def test_context_manager_collects_samples(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            spin(0.15)
        assert prof.n_ticks > 0
        assert prof.n_samples > 0
        assert prof.duration_s >= 0.1

    def test_double_start_rejected_and_stop_idempotent(self):
        prof = SamplingProfiler(interval_s=0.01)
        prof.start()
        with pytest.raises(RuntimeError, match="already started"):
            prof.start()
        prof.stop()
        prof.stop()  # no-op

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)


class TestOutput:
    def profiled(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            spin(0.2)
        return prof

    def test_collapsed_format(self):
        prof = self.profiled()
        lines = prof.collapsed()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack or "(" in stack  # root;child;leaf labels
        assert lines == sorted(lines)  # deterministic ordering

    def test_spin_frame_appears_in_top(self):
        prof = self.profiled()
        top = prof.top(50)
        assert top
        labels = " ".join(row["frame"] for row in top)
        assert "spin" in labels
        for row in top:
            assert row["cumulative"] >= row["self"] >= 0
            assert 0.0 <= row["self_pct"] <= 100.0

    def test_write_collapsed(self, tmp_path):
        prof = self.profiled()
        path = tmp_path / "out.collapsed"
        n = prof.write_collapsed(str(path))
        content = path.read_text().splitlines()
        assert len(content) == n == len(prof.collapsed())

    def test_to_dict_summary(self):
        prof = self.profiled()
        summary = prof.to_dict()
        assert summary["n_samples"] == prof.n_samples
        assert summary["interval_s"] == 0.001
        assert summary["duration_s"] > 0
