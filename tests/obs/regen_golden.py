#!/usr/bin/env python
"""Regenerate golden_chrome_trace.json from test_export.golden_result().

Run from the repo root after a deliberate exporter format change:

    PYTHONPATH=src:tests python tests/obs/regen_golden.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from test_export import GOLDEN_PATH, golden_result  # noqa: E402

from repro.obs.export import to_chrome_trace  # noqa: E402


def main() -> None:
    doc = to_chrome_trace(result=golden_result(), metadata={"workflow": "golden"})
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(doc['traceEvents'])} events)")


if __name__ == "__main__":
    main()
