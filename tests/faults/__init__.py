"""Fault-injection and budget-aware recovery tests."""
