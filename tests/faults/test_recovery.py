"""Recovery policies and the execute → detect → recover loop's budget gate."""

import pytest

from repro.errors import SchedulingError
from repro.faults import FaultPlan, make_policy, run_with_faults
from repro.faults.recovery import RECOVERY_POLICIES, RemapRecovery, RetrySameCategory
from repro.faults.runner import (
    OUTCOME_BUDGET_EXHAUSTED,
    OUTCOME_FAILED,
    OUTCOME_SUCCESS,
)
from repro.obs.events import EventBus
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.registry import make_scheduler
from repro.service.metrics import MetricsRegistry
from repro.simulation.executor import conservative_weights, execute_schedule
from repro.workflow.generators import generate

BUDGET = 0.5


@pytest.fixture(scope="module")
def instance():
    wf = generate("montage", 20, rng=1, sigma_ratio=0.5)
    schedule = make_scheduler("heft_budg").schedule(
        wf, PAPER_PLATFORM, BUDGET
    ).schedule
    return wf, schedule


def crash_plan(wf, schedule, *, rng=3, rate=3.0):
    """A sampled plan guaranteed (by construction below) to fire a crash."""
    base = execute_schedule(wf, PAPER_PLATFORM, schedule,
                            conservative_weights(wf), validate=False)
    victim = max(base.vms, key=lambda v: v.end_at - v.ready_at)
    return FaultPlan(crashes={victim.vm_id: (victim.ready_at + victim.end_at) / 2})


class TestPolicyFactory:
    def test_registry_names(self):
        assert set(RECOVERY_POLICIES) == {"retry", "remap"}
        assert isinstance(make_policy("retry"), RetrySameCategory)
        assert isinstance(make_policy("remap"), RemapRecovery)

    def test_none_means_no_policy(self):
        assert make_policy(None) is None
        assert make_policy("none") is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError, match="unknown recovery policy"):
            make_policy("prayer")


class TestRunWithFaults:
    def test_no_faults_is_single_attempt_success(self, instance):
        wf, schedule = instance
        out = run_with_faults(wf, PAPER_PLATFORM, BUDGET, FaultPlan(),
                              schedule=schedule,
                              weights=conservative_weights(wf))
        assert out.outcome == OUTCOME_SUCCESS and out.success
        assert out.n_attempts == 1 and out.n_recoveries == 0
        assert out.lost_cost == 0.0 and not out.fault_events
        assert out.within_budget()

    def test_crash_without_policy_fails(self, instance):
        wf, schedule = instance
        out = run_with_faults(
            wf, PAPER_PLATFORM, BUDGET, crash_plan(wf, schedule),
            schedule=schedule, weights=conservative_weights(wf), policy=None,
        )
        assert out.outcome == OUTCOME_FAILED
        assert "no recovery policy" in out.error
        assert out.n_faults >= 1

    @pytest.mark.parametrize("policy", ["retry", "remap"])
    def test_crash_recovered_within_budget(self, instance, policy):
        wf, schedule = instance
        out = run_with_faults(
            wf, PAPER_PLATFORM, BUDGET, crash_plan(wf, schedule),
            schedule=schedule, weights=conservative_weights(wf), policy=policy,
        )
        assert out.outcome == OUTCOME_SUCCESS
        assert out.n_recoveries >= 1
        assert out.recovered_tasks
        # Dead-VM rentals are billed either as plan retires (VM kept some
        # completed work) or as lost_cost (VM dropped empty) — never both.
        assert out.lost_cost >= 0.0
        assert out.within_budget()
        out.schedule.validate(wf)

    def test_tight_budget_is_exhausted_not_overrun(self, instance):
        wf, schedule = instance
        base = execute_schedule(wf, PAPER_PLATFORM, schedule,
                                conservative_weights(wf), validate=False)
        tight = base.total_cost * 1.001  # no slack for a recovery
        out = run_with_faults(
            wf, PAPER_PLATFORM, tight, crash_plan(wf, schedule),
            schedule=schedule, weights=conservative_weights(wf),
            policy="remap",
        )
        assert out.outcome == OUTCOME_BUDGET_EXHAUSTED
        assert "projects" in out.error and "budget" in out.error

    def test_events_and_metrics_observed(self, instance):
        wf, schedule = instance
        bus, metrics = EventBus(), MetricsRegistry()
        out = run_with_faults(
            wf, PAPER_PLATFORM, BUDGET, crash_plan(wf, schedule),
            schedule=schedule, weights=conservative_weights(wf),
            policy="remap", bus=bus, metrics=metrics,
        )
        assert out.success
        seen = [ev.type for ev in bus.history()]
        assert "fault.injected" in seen
        assert "recovery.applied" in seen
        assert metrics.counter("faults_injected") >= 1
        assert metrics.counter("recovery_attempts") >= 1
        assert metrics.counter("recovery_applied") >= 1

    def test_rejected_recovery_publishes_and_counts(self, instance):
        wf, schedule = instance
        bus, metrics = EventBus(), MetricsRegistry()
        base = execute_schedule(wf, PAPER_PLATFORM, schedule,
                                conservative_weights(wf), validate=False)
        out = run_with_faults(
            wf, PAPER_PLATFORM, base.total_cost * 1.001,
            crash_plan(wf, schedule), schedule=schedule,
            weights=conservative_weights(wf), policy="remap",
            bus=bus, metrics=metrics,
        )
        assert out.outcome == OUTCOME_BUDGET_EXHAUSTED
        seen = [ev.type for ev in bus.history()]
        assert "recovery.rejected" in seen
        assert metrics.counter("recovery_budget_exhausted") == 1

    @pytest.mark.parametrize("policy", ["retry", "remap"])
    def test_budget_gate_boundary(self, instance, policy):
        """The gate admits ``projected == budget`` exactly and rejects one
        epsilon over — no hidden slack beyond the declared tolerance."""
        import math

        wf, schedule = instance
        plan = crash_plan(wf, schedule)
        weights = conservative_weights(wf)

        def gate_decision(budget):
            """(projected cost at the first gate, admitted?)."""
            bus = EventBus()
            out = run_with_faults(
                wf, PAPER_PLATFORM, budget, plan, schedule=schedule,
                weights=weights, policy=policy, bus=bus, budget_tol=0.0,
            )
            first = next(
                ev for ev in bus.history()
                if ev.type in ("recovery.applied", "recovery.rejected")
            )
            return (first.data["projected_cost"],
                    first.type == "recovery.applied", out)

        # The projection can depend on the budget (remap divides the
        # leftover), so walk to a fixed point: a budget the gate's own
        # projection equals exactly.
        budget = BUDGET
        for _ in range(6):
            projected, admitted, out = gate_decision(budget)
            if projected == budget:
                break
            budget = projected
        else:
            pytest.fail("budget projection never reached a fixed point")

        # Boundary from above: projected == budget is within budget.
        assert admitted
        assert out.n_recoveries >= 1
        assert out.outcome == OUTCOME_SUCCESS

        # One epsilon below the fixed point: the same recovery now
        # projects over and must be refused, not attempted.
        shaved = math.nextafter(budget, 0.0)
        projected, admitted, out = gate_decision(shaved)
        assert not admitted
        assert projected > shaved
        assert out.outcome == OUTCOME_BUDGET_EXHAUSTED
        assert out.n_recoveries == 0

    def test_max_attempts_bounds_the_loop(self, instance):
        wf, schedule = instance
        out = run_with_faults(
            wf, PAPER_PLATFORM, BUDGET, crash_plan(wf, schedule),
            schedule=schedule, weights=conservative_weights(wf),
            policy="remap", max_attempts=1,
        )
        assert out.outcome == OUTCOME_FAILED
        assert out.n_attempts == 1 and out.n_recoveries == 0


class TestBudgetProperty:
    """Property: a successful recovered run never exceeds the budget.

    With ``weights=conservative_weights`` the budget gate's projection is
    exact (the monitor's cautious estimate *is* the realization), so the
    guarantee is sharp: success + at least one recovery implies the full
    spend, lost VM rentals included, fits the reserved budget.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_recovered_run_never_exceeds_budget(self, seed):
        wf = generate("montage", 15, rng=1, sigma_ratio=0.5)
        schedule = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 0.35
        ).schedule
        plan = FaultPlan.sample(schedule, rng=seed, horizon=14_400.0,
                                crash_rate_per_hour=4.0)
        out = run_with_faults(
            wf, PAPER_PLATFORM, 0.35, plan, schedule=schedule,
            weights=conservative_weights(wf), policy="remap",
        )
        if out.success:
            assert out.within_budget(), (
                f"seed {seed}: spent {out.total_cost:.6f} over budget 0.35 "
                f"after {out.n_recoveries} recoveries"
            )
        else:
            assert out.outcome in (OUTCOME_FAILED, OUTCOME_BUDGET_EXHAUSTED)
            assert out.error
