"""Executor fault semantics: strict zero-fault no-op, crash billing, golden traces."""

import pytest

from repro.faults import FaultPlan
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.registry import make_scheduler
from repro.simulation.executor import conservative_weights, execute_schedule
from repro.simulation.gantt import render_gantt
from repro.workflow.generators import generate


@pytest.fixture(scope="module")
def instance():
    wf = generate("montage", 15, rng=1, sigma_ratio=0.5)
    schedule = make_scheduler("heft_budg").schedule(
        wf, PAPER_PLATFORM, 1.0
    ).schedule
    return wf, schedule


def run(wf, schedule, plan=None, weights=None):
    return execute_schedule(
        wf, PAPER_PLATFORM, schedule,
        weights if weights is not None else conservative_weights(wf),
        validate=False, fault_plan=plan,
    )


class TestZeroFaultNoOp:
    def test_empty_plan_is_byte_identical(self, instance):
        wf, schedule = instance
        base = run(wf, schedule, plan=None)
        empty = run(wf, schedule, plan=FaultPlan())
        assert empty.makespan == base.makespan
        assert empty.total_cost == base.total_cost
        for tid, rec in base.tasks.items():
            other = empty.tasks[tid]
            assert (rec.download_start, rec.compute_start, rec.compute_end,
                    rec.outputs_at_dc, rec.vm_id) == (
                        other.download_start, other.compute_start,
                        other.compute_end, other.outputs_at_dc, other.vm_id)
        assert not empty.fault_events
        assert render_gantt(empty) == render_gantt(base)

    def test_zero_fault_gantt_has_no_fault_lines(self, instance):
        wf, schedule = instance
        text = render_gantt(run(wf, schedule))
        assert "faults:" not in text
        assert "✗" not in text


class TestCrashSemantics:
    def test_crash_kills_unfinished_work_and_bills_to_crash(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        victim = max(
            (v for v in base.vms), key=lambda v: v.end_at - v.ready_at
        )
        crash_at = (victim.ready_at + victim.end_at) / 2.0
        faulty = run(wf, schedule, plan=FaultPlan(crashes={victim.vm_id: crash_at}))
        assert not faulty.completed
        assert faulty.failed_tasks
        dead = next(v for v in faulty.vms if v.vm_id == victim.vm_id)
        assert dead.crashed_at == pytest.approx(crash_at)
        assert dead.end_at == pytest.approx(crash_at)
        assert faulty.total_cost < base.total_cost  # truncated rental
        kinds = [e.kind for e in faulty.fault_events]
        assert "vm.crash" in kinds

    def test_crash_before_any_work_fails_all_vm_tasks(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        victim = max((v for v in base.vms),
                     key=lambda v: sum(1 for r in base.tasks.values()
                                       if r.vm_id == v.vm_id))
        n_hosted = sum(1 for r in base.tasks.values()
                       if r.vm_id == victim.vm_id)
        faulty = run(wf, schedule, plan=FaultPlan(crashes={victim.vm_id: 0.0}))
        assert len(faulty.failed_tasks) == n_hosted
        # downstream tasks that depended on the dead VM never start
        assert set(faulty.failed_tasks).isdisjoint(faulty.blocked_tasks)

    def test_crash_marker_in_gantt(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        victim = base.vms[0]
        crash_at = (victim.ready_at + victim.end_at) / 2.0
        text = render_gantt(
            run(wf, schedule, plan=FaultPlan(crashes={victim.vm_id: crash_at}))
        )
        assert "✗" in text
        assert "faults: 1 injected" in text

    def test_crash_past_vm_end_does_not_fire(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        late = base.end + 10_000.0
        plan = FaultPlan(crashes={base.vms[0].vm_id: late})
        out = run(wf, schedule, plan=plan)
        assert out.completed
        assert not out.fault_events
        assert out.total_cost == base.total_cost


class TestBillingFaults:
    def test_retire_floors_the_billing_window(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        vm = base.vms[0]
        floor = vm.end_at + 3600.0
        out = run(wf, schedule, plan=FaultPlan(retires={vm.vm_id: floor}))
        assert out.completed  # retires never kill work
        retired = next(v for v in out.vms if v.vm_id == vm.vm_id)
        assert retired.end_at >= floor
        assert out.total_cost > base.total_cost

    def test_straggler_inflates_compute_and_makespan(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        tid = max(base.tasks,
                  key=lambda t: base.tasks[t].compute_end
                  - base.tasks[t].compute_start)
        out = run(wf, schedule, plan=FaultPlan(stragglers={tid: 2.0}))
        assert out.completed
        b, f = base.tasks[tid], out.tasks[tid]
        base_len = b.compute_end - b.compute_start
        assert (f.compute_end - f.compute_start) == pytest.approx(2 * base_len)
        kinds = [e.kind for e in out.fault_events]
        assert "task.straggler" in kinds

    def test_transient_retry_wastes_a_fraction(self, instance):
        wf, schedule = instance
        base = run(wf, schedule)
        tid = next(iter(schedule.order))
        out = run(wf, schedule, plan=FaultPlan(task_retries={tid: (0.5,)}))
        assert out.completed
        b, f = base.tasks[tid], out.tasks[tid]
        base_len = b.compute_end - b.compute_start
        assert (f.compute_end - f.compute_start) == pytest.approx(1.5 * base_len)


class TestGoldenTrace:
    def test_fault_run_is_deterministic(self, instance):
        wf, schedule = instance
        plan = FaultPlan.sample(schedule, rng=7, horizon=7200.0,
                                crash_rate_per_hour=3.0,
                                straggler_prob=0.3)
        a = run(wf, schedule, plan=plan)
        b = run(wf, schedule, plan=plan)
        assert [e.to_dict() for e in a.fault_events] == [
            e.to_dict() for e in b.fault_events
        ]
        assert a.makespan == b.makespan
        assert a.total_cost == b.total_cost
        assert a.failed_tasks == b.failed_tasks
        assert render_gantt(a) == render_gantt(b)
