"""FaultPlan value semantics: validation, views, serialization, sampling."""

import pytest

from repro.errors import SimulationError
from repro.faults import FaultPlan
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.registry import make_scheduler
from repro.workflow.generators import generate


def small_schedule():
    wf = generate("montage", 15, rng=1, sigma_ratio=0.5)
    return wf, make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, 1.0).schedule


class TestValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            FaultPlan(crashes={0: -1.0})

    def test_negative_retire_time_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            FaultPlan(retires={0: -5.0})

    def test_boot_failure_count_must_be_positive(self):
        with pytest.raises(SimulationError, match=">= 1"):
            FaultPlan(boot_failures={0: 0})

    def test_retry_fractions_must_be_positive(self):
        with pytest.raises(SimulationError, match="positive"):
            FaultPlan(task_retries={"t": (0.5, -0.1)})
        with pytest.raises(SimulationError, match="positive"):
            FaultPlan(task_retries={"t": ()})

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(SimulationError, match=">= 1"):
            FaultPlan(stragglers={"t": 0.5})


class TestViews:
    def test_empty_plan_is_falsy(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan
        assert plan.size == 0

    def test_size_counts_every_entry(self):
        plan = FaultPlan(
            crashes={0: 10.0}, retires={1: 5.0}, boot_failures={2: 1},
            task_retries={"a": (0.5,)}, stragglers={"b": 2.0},
        )
        assert plan.size == 5
        assert plan and not plan.is_empty

    def test_weight_factor_composes_straggler_and_retries(self):
        plan = FaultPlan(task_retries={"t": (0.5,)}, stragglers={"t": 2.0})
        assert plan.weight_factor("t") == pytest.approx(2.0 * 1.5)
        assert plan.weight_factor("other") == 1.0

    def test_extra_boots(self):
        plan = FaultPlan(boot_failures={3: 2})
        assert plan.extra_boots(3) == 2
        assert plan.extra_boots(0) == 0

    def test_billing_only_strips_crashes_keeps_the_rest(self):
        plan = FaultPlan(
            crashes={0: 10.0}, retires={1: 5.0}, boot_failures={2: 1},
            task_retries={"a": (0.5,)}, stragglers={"b": 2.0},
        )
        billing = plan.billing_only()
        assert billing.crashes == {}
        assert billing.retires == {1: 5.0}
        assert billing.boot_failures == {2: 1}
        assert billing.task_retries == {"a": (0.5,)}
        assert billing.stragglers == {"b": 2.0}

    def test_with_crashes_retired_moves_fired_entries(self):
        plan = FaultPlan(crashes={0: 10.0, 1: 20.0})
        out = plan.with_crashes_retired({0: 10.0})
        assert out.crashes == {1: 20.0}
        assert out.retires == {0: 10.0}
        # original untouched (value semantics)
        assert plan.crashes == {0: 10.0, 1: 20.0}

    def test_with_crashes_retired_drop_removes_vm_entirely(self):
        plan = FaultPlan(crashes={0: 10.0}, boot_failures={0: 1})
        out = plan.with_crashes_retired({0: 10.0}, drop=(0,))
        assert out.crashes == {} and out.retires == {}
        assert out.boot_failures == {}


class TestSerialization:
    def test_dict_roundtrip(self):
        plan = FaultPlan(
            crashes={3: 100.0}, retires={1: 5.0}, boot_failures={2: 1},
            task_retries={"a": (0.5, 0.25)}, stragglers={"b": 2.0},
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_string_keys_normalized_to_int(self):
        plan = FaultPlan.from_dict({"crashes": {"7": 42.0}})
        assert plan.crashes == {7: 42.0}

    def test_unknown_field_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault plan"):
            FaultPlan.from_dict({"crashes": {}, "meteor_strikes": {}})

    def test_equality_by_value(self):
        assert FaultPlan(crashes={0: 1.0}) == FaultPlan(crashes={0: 1.0})
        assert FaultPlan(crashes={0: 1.0}) != FaultPlan(crashes={0: 2.0})
        assert FaultPlan() != object()


class TestSampling:
    def test_horizon_must_be_positive(self):
        _, schedule = small_schedule()
        with pytest.raises(SimulationError, match="horizon"):
            FaultPlan.sample(schedule, rng=1, horizon=0.0)

    def test_same_seed_same_plan(self):
        _, schedule = small_schedule()
        kwargs = dict(horizon=7200.0, crash_rate_per_hour=2.0,
                      boot_failure_prob=0.3, task_retry_prob=0.2,
                      straggler_prob=0.2)
        a = FaultPlan.sample(schedule, rng=42, **kwargs)
        b = FaultPlan.sample(schedule, rng=42, **kwargs)
        assert a == b

    def test_different_seeds_differ(self):
        _, schedule = small_schedule()
        kwargs = dict(horizon=7200.0, crash_rate_per_hour=5.0,
                      task_retry_prob=0.5, straggler_prob=0.5)
        plans = {FaultPlan.sample(schedule, rng=s, **kwargs).to_dict().__str__()
                 for s in range(6)}
        assert len(plans) > 1

    def test_zero_rates_yield_empty_plan(self):
        _, schedule = small_schedule()
        plan = FaultPlan.sample(schedule, rng=1, horizon=7200.0)
        assert plan.is_empty
