"""Resilience sweep: determinism, ledger archiving, recovery beats no-recovery."""

import pytest

from repro.experiments.resilience import (
    render_resilience,
    resilience_sweep,
    spot_resilience_sweep,
)
from repro.faults.spot import CheckpointConfig
from repro.obs.ledger import RunLedger, use_ledger


def sweep(**overrides):
    kwargs = dict(
        families=("montage",), n_tasks=15, algorithms=("heft_budg",),
        policies=("none", "remap"), crash_rates=(0.0, 5.0),
        n_runs=3, seed=3,
    )
    kwargs.update(overrides)
    return resilience_sweep(**kwargs)


class TestSweep:
    def test_grid_shape_and_labels(self):
        study = sweep()
        assert len(study.points) == 4  # 2 policies x 2 rates
        labels = {p.label for p in study.points}
        assert labels == {"heft_budg+none@0", "heft_budg+none@5",
                          "heft_budg+remap@0", "heft_budg+remap@5"}
        for p in study.points:
            assert p.n_runs == 3
            assert 0.0 <= p.success_rate <= 1.0

    def test_deterministic_given_seed(self):
        a, b = sweep(), sweep()
        assert [p.__dict__ for p in a.points] == [p.__dict__ for p in b.points]

    def test_zero_rate_fires_nothing_and_succeeds(self):
        study = sweep(crash_rates=(0.0,))
        for p in study.points:
            assert p.mean_faults == 0.0
            assert p.success_rate == 1.0
            assert p.n_over_budget == 0

    def test_remap_success_at_least_no_recovery_baseline(self):
        study = sweep(n_runs=5)
        for rate in (0.0, 5.0):
            none = study.point("heft_budg", "none", rate)
            remap = study.point("heft_budg", "remap", rate)
            assert remap.success_rate >= none.success_rate
            assert remap.n_over_budget == 0

    def test_point_lookup_raises_on_unknown_cell(self):
        with pytest.raises(KeyError):
            sweep().point("heft_budg", "retry", 99.0)

    def test_n_runs_validated(self):
        with pytest.raises(ValueError, match="n_runs"):
            sweep(n_runs=0)


class TestLedgerArchiving:
    def test_runs_archived_with_fault_fields(self):
        with RunLedger(":memory:") as ledger:
            with use_ledger(ledger):
                study = sweep(crash_rates=(5.0,), policies=("remap",))
            rows = ledger.runs(source="faults", limit=0)
            assert len(rows) == 3  # one row per run
            for row in rows:
                assert row.algorithm == "heft_budg+remap@5"
                assert row.family == "montage" and row.n_tasks == 15
                assert row.outcome in ("success", "failed", "budget_exhausted")
                assert row.n_faults >= 0
                assert row.extra["policy"] == "remap"
                assert row.extra["crash_rate"] == 5.0
            (point,) = study.points
            archived_success = sum(r.success_rate for r in rows) / len(rows)
            assert archived_success == pytest.approx(point.success_rate)

    def test_no_ledger_installed_archives_nothing(self):
        study = sweep(crash_rates=(0.0,), policies=("none",), n_runs=1)
        assert len(study.points) == 1  # and no error from the NullLedger


def spot_sweep(**overrides):
    kwargs = dict(
        families=("montage",), n_tasks=15, algorithms=("heft_budg",),
        policies=("none", "retry"), preemption_rates=(0.0, 2.0),
        reserves=(0.0, 0.2), n_runs=3, seed=3,
        checkpoint=CheckpointConfig(interval_s=300.0, overhead_s=20.0),
    )
    kwargs.update(overrides)
    return spot_resilience_sweep(**kwargs)


class TestSpotSweep:
    def test_grid_shape_and_labels(self):
        study = spot_sweep()
        assert len(study.points) == 8  # 2 policies x 2 rates x 2 reserves
        labels = {p.label for p in study.points}
        assert "heft_budg+retry@spot2r0.2" in labels
        assert "heft_budg+none@spot0r0" in labels
        for p in study.points:
            assert p.spot
            assert p.crash_rate == 0.0

    def test_deterministic_given_seed(self):
        a, b = spot_sweep(), spot_sweep()
        assert [p.__dict__ for p in a.points] == [p.__dict__ for p in b.points]

    def test_zero_rate_succeeds_without_faults(self):
        study = spot_sweep(preemption_rates=(0.0,))
        for p in study.points:
            assert p.mean_faults == 0.0
            assert p.success_rate == 1.0
            assert p.n_over_budget == 0

    def test_budget_anchored_identically_across_reserves(self):
        """``budget_position`` must mean the same dollars at every reserve —
        otherwise the frontier compares apples to oranges."""
        study = spot_sweep(preemption_rates=(2.0,), policies=("retry",))
        r0 = study.spot_point("heft_budg", "retry", 2.0, 0.0)
        r2 = study.spot_point("heft_budg", "retry", 2.0, 0.2)
        assert r0.budget == r2.budget

    def test_never_over_budget(self):
        study = spot_sweep(n_runs=5, preemption_rates=(0.0, 2.0, 6.0))
        assert all(p.n_over_budget == 0 for p in study.points)

    def test_workers_bit_identical_to_serial(self):
        serial, fanned = spot_sweep(), spot_sweep(workers=2)
        assert [p.__dict__ for p in serial.points] == \
            [p.__dict__ for p in fanned.points]

    def test_runs_archived_with_spot_fields(self):
        with RunLedger(":memory:") as ledger:
            with use_ledger(ledger):
                spot_sweep(preemption_rates=(2.0,), reserves=(0.2,),
                           policies=("retry",))
            rows = ledger.runs(source="faults", limit=0)
            assert len(rows) == 3
            for row in rows:
                assert row.algorithm == "heft_budg+retry@spot2r0.2"
                assert row.extra["preemption_rate"] == 2.0
                assert row.extra["reserve"] == 0.2
                assert "n_preemptions" in row.extra

    def test_spot_point_lookup_raises_on_unknown_cell(self):
        with pytest.raises(KeyError):
            spot_sweep().spot_point("heft_budg", "retry", 99.0, 0.5)


class TestRender:
    def test_render_lists_every_cell(self):
        study = sweep(n_runs=1)
        text = render_resilience(study)
        for p in study.points:
            assert p.label in text
        assert "4 cell(s)" in text
