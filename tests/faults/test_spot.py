"""Spot-market resilience: checkpoint math, correlated bursts, and the
never-overspend property under preemption + recovery."""

import math

import pytest

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, SpotPreemption
from repro.faults.runner import (
    OUTCOME_BUDGET_EXHAUSTED,
    OUTCOME_FAILED,
    OUTCOME_SUCCESS,
    run_with_faults,
)
from repro.faults.spot import CheckpointConfig, SpotScenario
from repro.io import canonical_json, result_to_dict
from repro.obs.events import EventBus
from repro.platform.cloud import PAPER_PLATFORM
from repro.platform.pricing import SpotMarket, add_spot_categories, spot_only
from repro.rng import spawn
from repro.scheduling.registry import make_scheduler
from repro.service.metrics import MetricsRegistry
from repro.simulation.executor import conservative_weights, execute_schedule
from repro.workflow.generators import generate


@pytest.fixture(scope="module")
def spot_instance():
    """A workflow scheduled spot-first on a spot-enabled paper platform."""
    market = SpotMarket.sample(rng=7)
    platform = add_spot_categories(PAPER_PLATFORM, market)
    wf = generate("montage", 20, rng=1, sigma_ratio=0.5)
    budget = 0.5
    schedule = make_scheduler("heft_budg").schedule(
        wf, spot_only(platform), budget
    ).schedule
    return wf, platform, schedule, budget


class TestCheckpointConfig:
    def test_validation(self):
        with pytest.raises(SimulationError, match="interval"):
            CheckpointConfig(interval_s=0.0)
        with pytest.raises(SimulationError, match="overhead"):
            CheckpointConfig(overhead_s=-1.0)

    def test_checkpoint_count_excludes_the_final_chunk(self):
        cfg = CheckpointConfig(interval_s=100.0, overhead_s=10.0)
        assert cfg.n_checkpoints(0.0) == 0
        assert cfg.n_checkpoints(100.0) == 0  # completion is durable anyway
        assert cfg.n_checkpoints(100.1) == 1
        assert cfg.n_checkpoints(320.0) == 3

    def test_checkpointed_duration_bills_each_flush(self):
        cfg = CheckpointConfig(interval_s=100.0, overhead_s=10.0)
        assert cfg.checkpointed_duration(320.0) == 320.0 + 3 * 10.0

    def test_durable_work_follows_completed_cycles(self):
        cfg = CheckpointConfig(interval_s=100.0, overhead_s=10.0)
        assert cfg.durable_work_s(0.0) == 0.0
        assert cfg.durable_work_s(109.9) == 0.0  # mid-first-flush
        assert cfg.durable_work_s(110.0) == 100.0
        assert cfg.durable_work_s(330.0) == 300.0

    def test_emergency_flush_saves_partial_interval(self):
        cfg = CheckpointConfig(interval_s=100.0, overhead_s=10.0)
        # 150 s in: one full cycle (110 s) + 30 s into the next interval;
        # flushing stops work 10 s early, saving 100 + 30 of it.
        assert cfg.flush_work_s(150.0) == pytest.approx(130.0)
        assert cfg.flush_work_s(150.0) > cfg.durable_work_s(150.0)
        assert cfg.flush_work_s(5.0) == 0.0  # less than the flush itself

    def test_roundtrip(self):
        cfg = CheckpointConfig(interval_s=300.0, overhead_s=20.0)
        assert CheckpointConfig.from_dict(cfg.to_dict()) == cfg
        with pytest.raises(SimulationError, match="unknown"):
            CheckpointConfig.from_dict({"cadence": 1.0})


class TestSpotScenario:
    def test_zero_rate_samples_an_empty_plan(self):
        plan = SpotScenario().sample_plan(rng=1, horizon=3600.0)
        assert plan.is_empty

    def test_bursts_land_inside_the_horizon(self):
        sc = SpotScenario(preemption_rate_per_hour=10.0, warning_s=60.0)
        plan = sc.sample_plan(rng=2, horizon=3600.0)
        assert plan.preemptions
        for p in plan.preemptions:
            assert 0.0 < p.at < 3600.0
            assert p.warning_s == 60.0
            assert p.category is None  # market-wide

    def test_sampling_is_deterministic(self):
        sc = SpotScenario(preemption_rate_per_hour=2.0)
        a = sc.sample_plan(rng=5, horizon=7200.0)
        b = sc.sample_plan(rng=5, horizon=7200.0)
        assert a.to_dict() == b.to_dict()

    def test_platform_for_adds_spot_twins(self):
        sc = SpotScenario(market=SpotMarket(discount=0.7))
        platform = sc.platform_for(PAPER_PLATFORM)
        spot_cats = [c for c in platform.categories if c.spot]
        assert len(spot_cats) == len(PAPER_PLATFORM.categories)
        assert platform.spot_market.discount == 0.7

    def test_roundtrip(self):
        sc = SpotScenario(
            market=SpotMarket(discount=0.5, segments=((0.0, 0.8),)),
            preemption_rate_per_hour=1.5, warning_s=90.0,
            checkpoint=CheckpointConfig(interval_s=600.0),
        )
        assert SpotScenario.from_dict(sc.to_dict()) == sc

    def test_validation(self):
        with pytest.raises(SimulationError, match="rate"):
            SpotScenario(preemption_rate_per_hour=-1.0)
        with pytest.raises(SimulationError, match="warning"):
            SpotScenario(warning_s=-0.1)


class TestEmptyPlanByteIdentity:
    """An empty spot plan must be a perfect no-op — same bytes out."""

    def test_empty_plan_matches_no_fault_baseline(self, spot_instance):
        wf, platform, schedule, _ = spot_instance
        weights = conservative_weights(wf)
        base = execute_schedule(wf, platform, schedule, weights)
        faulted = execute_schedule(
            wf, platform, schedule, weights,
            fault_plan=SpotScenario().sample_plan(rng=1, horizon=1e6),
        )
        assert canonical_json(result_to_dict(faulted)) == \
            canonical_json(result_to_dict(base))

    def test_checkpoint_config_is_inert_off_spot(self):
        """A checkpoint policy must not perturb a spot-free schedule."""
        wf = generate("montage", 15, rng=2, sigma_ratio=0.5)
        schedule = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 0.5
        ).schedule
        weights = conservative_weights(wf)
        base = execute_schedule(wf, PAPER_PLATFORM, schedule, weights)
        ckpt = execute_schedule(
            wf, PAPER_PLATFORM, schedule, weights,
            checkpoint=CheckpointConfig(interval_s=60.0, overhead_s=30.0),
        )
        assert canonical_json(result_to_dict(ckpt)) == \
            canonical_json(result_to_dict(base))

    def test_run_with_faults_empty_plan_single_clean_attempt(
        self, spot_instance
    ):
        wf, platform, schedule, budget = spot_instance
        weights = conservative_weights(wf)
        out = run_with_faults(
            wf, platform, budget, FaultPlan(), schedule=schedule,
            weights=weights, policy="retry",
        )
        base = execute_schedule(wf, platform, schedule, weights)
        assert out.outcome == OUTCOME_SUCCESS
        assert out.n_attempts == 1 and not out.fault_events
        assert canonical_json(result_to_dict(out.result)) == \
            canonical_json(result_to_dict(base))


class TestCorrelatedPreemption:
    def test_market_burst_kills_every_spot_vm(self, spot_instance):
        wf, platform, schedule, _ = spot_instance
        weights = conservative_weights(wf)
        base = execute_schedule(wf, platform, schedule, weights)
        spot_vms = [v for v in base.vms if v.category.spot]
        assert spot_vms  # spot-first planning actually used spot capacity
        mid = min(v.ready_at for v in spot_vms) + 1.0
        burst = FaultPlan(preemptions=[SpotPreemption(at=mid)])
        out = execute_schedule(
            wf, platform, schedule, weights, fault_plan=burst,
        )
        live_at_mid = [v.vm_id for v in base.vms
                       if v.category.spot and v.booked_at <= mid < v.end_at]
        preempted = [v.vm_id for v in out.vms if v.preempted]
        assert set(preempted) == set(live_at_mid)

    def test_warning_banks_more_than_no_warning(self, spot_instance):
        """An emergency flush saves in-flight interval progress that a
        periodic checkpoint alone would lose."""
        wf, platform, schedule, _ = spot_instance
        weights = conservative_weights(wf)
        ckpt = CheckpointConfig(interval_s=300.0, overhead_s=20.0)
        base = execute_schedule(wf, platform, schedule, weights,
                                checkpoint=ckpt)
        spot_vms = [v for v in base.vms if v.category.spot]
        mid = min(v.ready_at for v in spot_vms) + 400.0

        def banked(warning_s):
            plan = FaultPlan(preemptions=[
                SpotPreemption(at=mid, warning_s=warning_s)
            ])
            out = execute_schedule(wf, platform, schedule, weights,
                                   fault_plan=plan, checkpoint=ckpt)
            return sum(r.checkpoint_weight for r in out.tasks.values())

        assert banked(60.0) >= banked(0.0)
        assert banked(60.0) > 0.0

    def test_preemption_emits_events_and_metrics(self, spot_instance):
        wf, platform, schedule, budget = spot_instance
        weights = conservative_weights(wf)
        base = execute_schedule(wf, platform, schedule, weights)
        mid = min(v.ready_at for v in base.vms if v.category.spot) + 1.0
        bus, metrics = EventBus(), MetricsRegistry()
        out = run_with_faults(
            wf, platform, budget,
            FaultPlan(preemptions=[SpotPreemption(at=mid)]),
            schedule=schedule, weights=weights, policy="retry",
            checkpoint=CheckpointConfig(interval_s=300.0, overhead_s=20.0),
            bus=bus, metrics=metrics,
        )
        seen = [ev.type for ev in bus.history()]
        assert "fault.preempted" in seen
        assert metrics.counter("faults_preempted") >= 1
        if out.n_recoveries and out.plan.checkpoints:
            assert "recovery.checkpoint_restart" in seen

    def test_recovery_falls_back_to_on_demand_and_succeeds(
        self, spot_instance
    ):
        wf, platform, schedule, budget = spot_instance
        weights = conservative_weights(wf)
        base = execute_schedule(wf, platform, schedule, weights)
        mid = min(v.ready_at for v in base.vms if v.category.spot) + 1.0
        out = run_with_faults(
            wf, platform, budget,
            FaultPlan(preemptions=[SpotPreemption(at=mid)]),
            schedule=schedule, weights=weights, policy="retry",
        )
        assert out.outcome == OUTCOME_SUCCESS
        assert out.n_recoveries >= 1
        assert out.within_budget()
        # Replacement hosts for preempted work are on-demand twins: the
        # recovered schedule must not gamble the retry on spot again.
        moved_hosts = {
            out.result.tasks[t].vm_id for t in out.recovered_tasks
        }
        for vm in out.result.vms:
            if vm.vm_id in moved_hosts:
                assert not vm.category.spot

    def test_replan_limit_fails_fast_with_reason(self, spot_instance):
        wf, platform, schedule, budget = spot_instance
        weights = conservative_weights(wf)
        base = execute_schedule(wf, platform, schedule, weights)
        mid = min(v.ready_at for v in base.vms if v.category.spot) + 1.0
        bus, metrics = EventBus(), MetricsRegistry()
        out = run_with_faults(
            wf, platform, budget,
            FaultPlan(preemptions=[SpotPreemption(at=mid)]),
            schedule=schedule, weights=weights, policy="retry",
            max_replans=0, bus=bus, metrics=metrics,
        )
        assert out.outcome == OUTCOME_FAILED
        assert "replan limit" in out.error
        assert out.n_recoveries == 0
        rejected = [ev for ev in bus.history()
                    if ev.type == "recovery.rejected"]
        assert rejected and rejected[0].data["reason"] == "replan_limit"
        assert metrics.counter("recovery_replan_limit") == 1


class TestNeverOverspend:
    """Property: across a seeded grid of markets, burst rates, policies,
    and checkpoint configs, no completed run ever spends over budget."""

    def test_grid(self):
        wf = generate("montage", 15, rng=2, sigma_ratio=0.5)
        budget = 0.12
        streams = iter(spawn(99, 3 * 2 * 2 * 2))
        for market_seed in (1, 2, 3):
            market = SpotMarket.sample(rng=market_seed)
            platform = add_spot_categories(PAPER_PLATFORM, market)
            schedule = make_scheduler("heft_budg").schedule(
                wf, spot_only(platform), budget
            ).schedule
            for rate in (1.0, 6.0):
                for policy in ("retry", "remap"):
                    for ckpt in (None, CheckpointConfig(interval_s=200.0,
                                                        overhead_s=15.0)):
                        sc = SpotScenario(
                            market=market, preemption_rate_per_hour=rate,
                            warning_s=60.0, checkpoint=ckpt,
                        )
                        stream = next(streams)
                        plan = sc.sample_plan(rng=stream, horizon=2e4)
                        out = run_with_faults(
                            wf, platform, budget, plan, schedule=schedule,
                            policy=policy, rng=stream, checkpoint=ckpt,
                        )
                        assert out.outcome in (
                            OUTCOME_SUCCESS, OUTCOME_FAILED,
                            OUTCOME_BUDGET_EXHAUSTED,
                        )
                        if out.success:
                            assert out.within_budget(), (
                                market_seed, rate, policy, ckpt,
                                out.total_cost, budget,
                            )

    def test_spot_billing_never_exceeds_flat_ceiling(self):
        """Realized spot spend is bounded by the discounted flat rate the
        planner budgeted — the invariant the whole gate leans on."""
        from repro.platform.pricing import spot_variant, spot_vm_cost, vm_cost

        market = SpotMarket.sample(rng=11)
        cat = PAPER_PLATFORM.categories[0]
        twin = spot_variant(cat, market)
        for start, end in ((0.0, 3600.0), (1800.0, 9000.0), (100.0, 101.0)):
            realized = spot_vm_cost(twin, market, start, end)
            flat = vm_cost(twin, start, end)  # the planner's estimate
            assert realized <= flat + 1e-9
