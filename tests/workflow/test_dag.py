"""Unit tests for the Workflow DAG container."""

import pytest

from repro import CycleError, StochasticWeight, Task, Workflow, WorkflowError
from repro.errors import DanglingEdgeError


def _task(tid: str, mean: float = 100.0, sigma: float = 10.0, **kw) -> Task:
    return Task(tid, StochasticWeight(mean, sigma), **kw)


class TestConstruction:
    def test_duplicate_task_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        with pytest.raises(WorkflowError, match="duplicate"):
            wf.add_task(_task("a"))

    def test_edge_to_unknown_task_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        with pytest.raises(DanglingEdgeError):
            wf.add_edge("a", "ghost", 1.0)

    def test_self_edge_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        with pytest.raises(WorkflowError):
            wf.add_edge("a", "a", 1.0)

    def test_negative_edge_data_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        wf.add_task(_task("b"))
        with pytest.raises(WorkflowError):
            wf.add_edge("a", "b", -5.0)

    def test_parallel_edges_merge_data(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        wf.add_task(_task("b"))
        wf.add_edge("a", "b", 10.0)
        wf.add_edge("a", "b", 15.0)
        assert wf.predecessors("b")["a"] == 25.0
        assert wf.n_edges == 1

    def test_empty_workflow_cannot_freeze(self):
        with pytest.raises(WorkflowError):
            Workflow().freeze()

    def test_cycle_detected(self):
        wf = Workflow()
        for tid in "abc":
            wf.add_task(_task(tid))
        wf.add_edge("a", "b")
        wf.add_edge("b", "c")
        wf.add_edge("c", "a")
        with pytest.raises(CycleError):
            wf.freeze()

    def test_frozen_workflow_is_immutable(self, diamond):
        with pytest.raises(WorkflowError):
            diamond.add_task(_task("zz"))
        with pytest.raises(WorkflowError):
            diamond.add_edge("A", "D")

    def test_freeze_idempotent(self, diamond):
        assert diamond.freeze() is diamond


class TestStructureQueries:
    def test_counts(self, diamond):
        assert diamond.n_tasks == 4
        assert diamond.n_edges == 4
        assert len(diamond) == 4

    def test_contains_and_iter(self, diamond):
        assert "A" in diamond
        assert "Z" not in diamond
        assert set(diamond) == {"A", "B", "C", "D"}

    def test_task_lookup_error(self, diamond):
        with pytest.raises(KeyError):
            diamond.task("nope")

    def test_entry_exit(self, diamond):
        assert diamond.entry_tasks == ["A"]
        assert diamond.exit_tasks == ["D"]

    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order
        pos = {t: i for i, t in enumerate(order)}
        for edge in diamond.edges():
            assert pos[edge.producer] < pos[edge.consumer]

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order == diamond.topological_order

    def test_levels(self, diamond):
        assert diamond.levels() == {"A": 0, "B": 1, "C": 1, "D": 2}

    def test_levels_longest_path(self):
        # a -> b -> d, a -> d: d is at level 2 (longest path), not 1.
        wf = Workflow.from_spec(
            "w", [("a", 1.0, 0), ("b", 1.0, 0), ("d", 1.0, 0)],
            [("a", "b", 0), ("b", "d", 0), ("a", "d", 0)],
        )
        assert wf.levels()["d"] == 2

    def test_edges_iteration_in_topo_order(self, diamond):
        producers = [e.producer for e in diamond.edges()]
        pos = {t: i for i, t in enumerate(diamond.topological_order)}
        assert producers == sorted(producers, key=lambda p: pos[p])


class TestAggregates:
    def test_io_aggregates(self, diamond):
        assert diamond.input_data_of("D") == 2e9
        assert diamond.output_data_of("A") == 2e9
        assert diamond.total_edge_data == 4e9

    def test_external_data(self, single_task):
        assert single_task.external_input_data == 200e6
        assert single_task.external_output_data == 100e6

    def test_work_aggregates(self, diamond):
        assert diamond.total_mean_work == 400e9
        assert diamond.total_conservative_work == 440e9


class TestTransformations:
    def test_with_sigma_ratio(self, diamond):
        wf2 = diamond.with_sigma_ratio(1.0)
        assert wf2.n_tasks == diamond.n_tasks
        assert wf2.n_edges == diamond.n_edges
        for tid in wf2:
            assert wf2.task(tid).weight.sigma == wf2.task(tid).weight.mean

    def test_with_sigma_ratio_does_not_mutate_original(self, diamond):
        sigma_before = diamond.task("A").weight.sigma
        diamond.with_sigma_ratio(1.0)
        assert diamond.task("A").weight.sigma == sigma_before

    def test_subgraph(self, diamond):
        sub = diamond.subgraph({"A", "B"})
        assert sub.n_tasks == 2
        assert sub.n_edges == 1
        assert sub.entry_tasks == ["A"]

    def test_subgraph_unknown_id(self, diamond):
        with pytest.raises(KeyError):
            diamond.subgraph({"A", "nope"})

    def test_from_spec_roundtrip(self, chain):
        assert chain.n_tasks == 3
        assert chain.predecessors("B") == {"A": 500e6}

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)


class TestAgainstNetworkx:
    """networkx as an independent oracle for graph algorithms."""

    def test_toposort_matches_networkx(self, diamond):
        nx = pytest.importorskip("networkx")
        g = nx.DiGraph()
        for e in diamond.edges():
            g.add_edge(e.producer, e.consumer)
        assert set(diamond.topological_order) == set(g.nodes) | set(diamond.tasks)
        # our order must be one of the valid linear extensions
        pos = {t: i for i, t in enumerate(diamond.topological_order)}
        for u, v in g.edges:
            assert pos[u] < pos[v]

    def test_levels_match_networkx_longest_path(self):
        nx = pytest.importorskip("networkx")
        from repro.workflow.generators import generate_random_layered

        wf = generate_random_layered(40, depth=6, rng=5)
        g = nx.DiGraph()
        g.add_nodes_from(wf.tasks)
        for e in wf.edges():
            g.add_edge(e.producer, e.consumer)
        ours = wf.levels()
        for tid in wf.tasks:
            ancestors_sub = g.subgraph(nx.ancestors(g, tid) | {tid})
            expected = nx.dag_longest_path_length(ancestors_sub)
            assert ours[tid] == expected
