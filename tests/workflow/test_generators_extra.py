"""Deeper shape tests for the extension families and generator knobs."""

import pytest

from repro import WorkflowError
from repro.workflow.generators import (
    generate,
    generate_epigenomics,
    generate_sipht,
)
from repro.workflow.generators.cybershake import PROFILES as CS_PROFILES
from repro.workflow.generators.epigenomics import _CHAIN


class TestEpigenomicsShape:
    def test_global_tail(self):
        wf = generate_epigenomics(40, rng=1)
        exits = wf.exit_tasks
        assert len(exits) == 1
        assert wf.task(exits[0]).category == "pileup"

    def test_chain_stage_order(self):
        """Each processing chain follows the published stage sequence."""
        wf = generate_epigenomics(40, rng=1)
        order = {stage: i for i, stage in enumerate(_CHAIN)}
        for edge in wf.edges():
            a = wf.task(edge.producer).category
            b = wf.task(edge.consumer).category
            if a in order and b in order:
                assert order[b] == order[a] + 1, (a, b)

    def test_lanes_merge_before_index(self):
        wf = generate_epigenomics(40, rng=1)
        maq = next(t for t in wf.tasks if wf.task(t).category == "maqIndex")
        preds = {wf.task(p).category for p in wf.predecessors(maq)}
        assert preds == {"mapMerge"}

    @pytest.mark.parametrize("n", [8, 9, 15, 23, 40, 77])
    def test_exact_sizes(self, n):
        assert generate_epigenomics(n, rng=2).n_tasks == n

    def test_too_small(self):
        with pytest.raises(WorkflowError):
            generate_epigenomics(7)


class TestSiphtShape:
    def test_two_wings_join_srna(self):
        wf = generate_sipht(30, rng=1)
        srna = next(t for t in wf.tasks if wf.task(t).category == "SRNA")
        pred_cats = {wf.task(p).category for p in wf.predecessors(srna)}
        assert pred_cats == {"Patser_concate", "Blast"}

    def test_annotation_tail(self):
        wf = generate_sipht(30, rng=1)
        assert [wf.task(t).category for t in wf.exit_tasks] == ["SRNA_annotate"]

    def test_blast_tasks_have_external_inputs(self):
        wf = generate_sipht(30, rng=1)
        for tid in wf.tasks:
            if wf.task(tid).category == "Blast":
                assert wf.task(tid).external_input > 0

    @pytest.mark.parametrize("n", [6, 7, 11, 30, 90])
    def test_exact_sizes(self, n):
        assert generate_sipht(n, rng=2).n_tasks == n

    def test_too_small(self):
        with pytest.raises(WorkflowError):
            generate_sipht(5)


class TestGeneratorKnobs:
    def test_zero_jitter_reproduces_nominal_profile(self):
        wf = generate("cybershake", 20, rng=9, jitter=0.0, runtime_scale=1.0)
        synth_profile = CS_PROFILES["SeismogramSynthesis"]
        for tid in wf.tasks:
            task = wf.task(tid)
            if task.category == "SeismogramSynthesis":
                assert task.mean_weight == pytest.approx(
                    synth_profile.runtime * 1e9
                )
                assert task.external_input == pytest.approx(
                    synth_profile.input_bytes
                )

    def test_jitter_produces_spread(self):
        wf = generate("cybershake", 20, rng=9, jitter=0.5)
        weights = {
            wf.task(t).mean_weight
            for t in wf.tasks
            if wf.task(t).category == "SeismogramSynthesis"
        }
        assert len(weights) > 1

    def test_negative_jitter_rejected(self):
        with pytest.raises(WorkflowError):
            generate("montage", 20, rng=1, jitter=-0.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(WorkflowError):
            generate("montage", 20, rng=1, sigma_ratio=-0.1)

    def test_name_override(self):
        wf = generate("ligo", 20, rng=1, name="my-run")
        assert wf.name == "my-run"
