"""Unit tests for tasks and stochastic weights."""

import numpy as np
import pytest

from repro import StochasticWeight, Task, WorkflowError
from repro.workflow.task import TRUNCATION_FLOOR_FRACTION


class TestStochasticWeight:
    def test_conservative_is_mean_plus_sigma(self):
        w = StochasticWeight(100.0, 25.0)
        assert w.conservative == 125.0

    def test_zero_sigma_sample_is_exact(self):
        w = StochasticWeight(100.0, 0.0)
        assert w.sample(rng=1) == 100.0

    def test_sample_reproducible_with_seed(self):
        w = StochasticWeight(100.0, 30.0)
        assert w.sample(rng=42) == w.sample(rng=42)

    def test_sample_varies_across_seeds(self):
        w = StochasticWeight(100.0, 30.0)
        samples = {w.sample(rng=i) for i in range(10)}
        assert len(samples) > 1

    def test_sample_truncated_at_floor(self):
        # sigma = 10x mean: most raw draws are negative, all samples clamp.
        w = StochasticWeight(100.0, 1000.0)
        floor = TRUNCATION_FLOOR_FRACTION * 100.0
        values = w.sample_many(2000, rng=7)
        assert values.min() >= floor - 1e-12

    def test_sample_many_matches_distribution(self):
        w = StochasticWeight(1000.0, 100.0)
        values = w.sample_many(20000, rng=3)
        assert abs(values.mean() - 1000.0) < 10.0
        assert abs(values.std() - 100.0) < 10.0

    def test_sample_many_length(self):
        assert len(StochasticWeight(10.0, 1.0).sample_many(17, rng=0)) == 17

    def test_scaled_sigma(self):
        w = StochasticWeight(200.0, 0.0).scaled_sigma(0.75)
        assert w.mean == 200.0
        assert w.sigma == 150.0

    def test_negative_sigma_ratio_rejected(self):
        with pytest.raises(WorkflowError):
            StochasticWeight(100.0, 0.0).scaled_sigma(-0.1)

    @pytest.mark.parametrize("mean", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_mean_rejected(self, mean):
        with pytest.raises(WorkflowError):
            StochasticWeight(mean, 1.0)

    @pytest.mark.parametrize("sigma", [-1.0, float("nan")])
    def test_bad_sigma_rejected(self, sigma):
        with pytest.raises(WorkflowError):
            StochasticWeight(100.0, sigma)

    def test_frozen(self):
        w = StochasticWeight(100.0, 1.0)
        with pytest.raises(AttributeError):
            w.mean = 5.0


class TestTask:
    def test_basic_properties(self):
        t = Task("t1", StochasticWeight(100.0, 25.0), category="map",
                 external_input=10.0, external_output=5.0)
        assert t.mean_weight == 100.0
        assert t.conservative_weight == 125.0
        assert t.category == "map"

    def test_empty_id_rejected(self):
        with pytest.raises(WorkflowError):
            Task("", StochasticWeight(1.0))

    def test_negative_external_io_rejected(self):
        with pytest.raises(WorkflowError):
            Task("t", StochasticWeight(1.0), external_input=-1.0)
        with pytest.raises(WorkflowError):
            Task("t", StochasticWeight(1.0), external_output=-1.0)

    def test_with_sigma_ratio_preserves_everything_else(self):
        t = Task("t1", StochasticWeight(100.0, 5.0), category="x",
                 external_input=3.0, external_output=4.0)
        t2 = t.with_sigma_ratio(1.0)
        assert t2.weight.sigma == 100.0
        assert t2.weight.mean == 100.0
        assert (t2.id, t2.category) == ("t1", "x")
        assert (t2.external_input, t2.external_output) == (3.0, 4.0)

    def test_defaults(self):
        t = Task("t", StochasticWeight(1.0))
        assert t.external_input == 0.0
        assert t.external_output == 0.0
        assert t.category == ""
