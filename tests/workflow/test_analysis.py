"""Unit tests for graph analyses (bottom levels, HEFT order, critical path)."""

import pytest

from repro import bottom_levels, critical_path, heft_order
from repro.units import GB, GFLOP, MB
from repro.workflow import Workflow
from repro.workflow.analysis import graph_stats, top_levels

SPEED = 1 * GFLOP
BW = 100 * MB


class TestBottomLevels:
    def test_chain_values(self, chain):
        # exec times: A=100s, B=200s, C=100s; comms: 5s each (500MB/100MBps)
        ranks = bottom_levels(chain, SPEED, BW)
        assert ranks["C"] == pytest.approx(100.0)
        assert ranks["B"] == pytest.approx(200.0 + 5.0 + 100.0)
        assert ranks["A"] == pytest.approx(100.0 + 5.0 + 305.0)

    def test_conservative_vs_mean(self, diamond):
        cons = bottom_levels(diamond, SPEED, BW, use_conservative=True)
        mean = bottom_levels(diamond, SPEED, BW, use_conservative=False)
        for tid in diamond:
            assert cons[tid] > mean[tid]

    def test_exit_rank_is_own_exec_time(self, diamond):
        ranks = bottom_levels(diamond, SPEED, BW)
        assert ranks["D"] == pytest.approx(110.0)  # (100+10) Gflop / 1 Gflop/s

    def test_monotone_along_edges(self, fork_join):
        ranks = bottom_levels(fork_join, SPEED, BW)
        for e in fork_join.edges():
            assert ranks[e.producer] > ranks[e.consumer]

    def test_bad_parameters(self, chain):
        with pytest.raises(ValueError):
            bottom_levels(chain, 0.0, BW)
        with pytest.raises(ValueError):
            bottom_levels(chain, SPEED, 0.0)


class TestTopLevels:
    def test_entry_is_zero(self, diamond):
        tl = top_levels(diamond, SPEED, BW)
        assert tl["A"] == 0.0

    def test_chain_accumulates(self, chain):
        tl = top_levels(chain, SPEED, BW)
        assert tl["B"] == pytest.approx(100.0 + 5.0)
        assert tl["C"] == pytest.approx(105.0 + 200.0 + 5.0)

    def test_top_plus_bottom_constant_on_critical_path(self, chain):
        tl = top_levels(chain, SPEED, BW)
        bl = bottom_levels(chain, SPEED, BW)
        total = tl["A"] + bl["A"]
        for tid in chain:  # a pure chain: every task is critical
            assert tl[tid] + bl[tid] == pytest.approx(total)

    def test_bad_parameters(self, chain):
        with pytest.raises(ValueError):
            top_levels(chain, -1.0, BW)


class TestHeftOrder:
    def test_is_linear_extension(self, fork_join):
        order = heft_order(fork_join, SPEED, BW)
        pos = {t: i for i, t in enumerate(order)}
        for e in fork_join.edges():
            assert pos[e.producer] < pos[e.consumer]

    def test_descending_ranks(self, diamond):
        order = heft_order(diamond, SPEED, BW)
        ranks = bottom_levels(diamond, SPEED, BW)
        values = [ranks[t] for t in order]
        assert values == sorted(values, reverse=True)

    def test_all_tasks_once(self, fork_join):
        order = heft_order(fork_join, SPEED, BW)
        assert sorted(order) == sorted(fork_join.tasks)


class TestCriticalPath:
    def test_chain_is_its_own_critical_path(self, chain):
        path, length = critical_path(chain, SPEED, BW)
        assert path == ["A", "B", "C"]
        assert length == pytest.approx(100 + 5 + 200 + 5 + 100)

    def test_path_is_connected(self, fork_join):
        path, _ = critical_path(fork_join, SPEED, BW)
        for u, v in zip(path, path[1:]):
            assert v in fork_join.successors(u)

    def test_length_matches_max_entry_rank(self, diamond):
        ranks = bottom_levels(diamond, SPEED, BW)
        _, length = critical_path(diamond, SPEED, BW)
        assert length == pytest.approx(max(ranks[t] for t in diamond.entry_tasks))

    def test_against_networkx_longest_path(self, diamond):
        nx = pytest.importorskip("networkx")
        g = nx.DiGraph()
        for tid in diamond:
            g.add_node(tid, w=diamond.task(tid).conservative_weight / SPEED)
        for e in diamond.edges():
            g.add_edge(e.producer, e.consumer, c=e.data / BW)
        best = 0.0
        for path in nx.all_simple_paths(g, "A", "D"):
            w = sum(g.nodes[n]["w"] for n in path)
            c = sum(g.edges[u, v]["c"] for u, v in zip(path, path[1:]))
            best = max(best, w + c)
        _, length = critical_path(diamond, SPEED, BW)
        assert length == pytest.approx(best)


class TestGraphStats:
    def test_diamond_stats(self, diamond):
        stats = graph_stats(diamond)
        assert stats["n_tasks"] == 4
        assert stats["n_edges"] == 4
        assert stats["depth"] == 3
        assert stats["width"] == 2

    def test_single_task(self, single_task):
        stats = graph_stats(single_task)
        assert stats["depth"] == 1
        assert stats["width"] == 1
        assert stats["n_edges"] == 0
