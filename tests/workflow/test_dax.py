"""Unit tests for the Pegasus DAX reader/writer."""

import io

import pytest

from repro import DaxParseError, parse_dax, read_dax, write_dax
from repro.units import GFLOP
from repro.workflow.generators import generate

MINIMAL_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="test">
  <job id="ID0" namespace="X" name="stage_in" version="1.0" runtime="10.5">
    <uses file="raw.dat" link="input" size="1000000"/>
    <uses file="mid.dat" link="output" size="2000000"/>
  </job>
  <job id="ID1" namespace="X" name="process" version="1.0" runtime="99.0">
    <uses file="mid.dat" link="input" size="2000000"/>
    <uses file="final.dat" link="output" size="500000"/>
  </job>
  <child ref="ID1">
    <parent ref="ID0"/>
  </child>
</adag>
"""


class TestParse:
    def test_basic_structure(self):
        wf = parse_dax(MINIMAL_DAX)
        assert wf.n_tasks == 2
        assert wf.n_edges == 1
        assert wf.predecessors("ID1") == {"ID0": 2000000.0}

    def test_runtime_to_weight(self):
        wf = parse_dax(MINIMAL_DAX, reference_speed=1 * GFLOP)
        assert wf.task("ID0").mean_weight == pytest.approx(10.5 * 1e9)

    def test_sigma_ratio_applied(self):
        wf = parse_dax(MINIMAL_DAX, sigma_ratio=0.5)
        t = wf.task("ID1")
        assert t.weight.sigma == pytest.approx(0.5 * t.weight.mean)

    def test_external_io_classified(self):
        wf = parse_dax(MINIMAL_DAX)
        assert wf.task("ID0").external_input == 1000000.0  # raw.dat: no producer
        assert wf.task("ID1").external_output == 500000.0  # final.dat: no consumer
        assert wf.task("ID0").external_output == 0.0       # mid.dat is consumed

    def test_name_from_adag(self):
        assert parse_dax(MINIMAL_DAX).name == "test"
        assert parse_dax(MINIMAL_DAX, name="other").name == "other"

    def test_categories(self):
        wf = parse_dax(MINIMAL_DAX)
        assert wf.task("ID0").category == "stage_in"

    def test_dataflow_edge_without_child_declaration(self):
        # some emitters omit <child> when data flow implies the dependency
        dax = MINIMAL_DAX.replace(
            '  <child ref="ID1">\n    <parent ref="ID0"/>\n  </child>\n', ""
        )
        wf = parse_dax(dax)
        assert wf.n_edges == 1
        assert "ID0" in wf.predecessors("ID1")

    def test_read_from_file(self, tmp_path):
        p = tmp_path / "wf.dax"
        p.write_text(MINIMAL_DAX)
        wf = read_dax(str(p))
        assert wf.n_tasks == 2

    def test_read_missing_file(self):
        with pytest.raises(DaxParseError):
            read_dax("/nonexistent/path.dax")


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(DaxParseError, match="malformed"):
            parse_dax("<adag><job></adag>")

    def test_wrong_root(self):
        with pytest.raises(DaxParseError, match="adag"):
            parse_dax("<workflow/>")

    def test_no_jobs(self):
        with pytest.raises(DaxParseError, match="no <job>"):
            parse_dax('<adag name="x"></adag>')

    def test_duplicate_job_id(self):
        dax = '<adag><job id="a" runtime="1"/><job id="a" runtime="1"/></adag>'
        with pytest.raises(DaxParseError, match="duplicate"):
            parse_dax(dax)

    def test_job_without_id(self):
        with pytest.raises(DaxParseError, match="without id"):
            parse_dax('<adag><job runtime="1"/></adag>')

    def test_bad_runtime(self):
        with pytest.raises(DaxParseError, match="runtime"):
            parse_dax('<adag><job id="a" runtime="oops"/></adag>')

    def test_negative_runtime(self):
        with pytest.raises(DaxParseError, match="negative"):
            parse_dax('<adag><job id="a" runtime="-5"/></adag>')

    def test_child_unknown_ref(self):
        dax = '<adag><job id="a" runtime="1"/><child ref="zzz"/></adag>'
        with pytest.raises(DaxParseError, match="unknown"):
            parse_dax(dax)

    def test_parent_unknown_ref(self):
        dax = (
            '<adag><job id="a" runtime="1"/>'
            '<child ref="a"><parent ref="zzz"/></child></adag>'
        )
        with pytest.raises(DaxParseError, match="unknown"):
            parse_dax(dax)

    def test_bad_reference_speed(self):
        with pytest.raises(DaxParseError):
            parse_dax(MINIMAL_DAX, reference_speed=0.0)

    def test_negative_file_size(self):
        dax = (
            '<adag><job id="a" runtime="1">'
            '<uses file="f" link="input" size="-2"/></job></adag>'
        )
        with pytest.raises(DaxParseError, match="negative size"):
            parse_dax(dax)


class TestWriteRoundTrip:
    @pytest.mark.parametrize("family", ["cybershake", "ligo", "montage"])
    def test_generated_workflow_roundtrips(self, family):
        wf = generate(family, 30, rng=11, jitter=0.0)
        text = write_dax(wf)
        back = parse_dax(text)
        assert back.n_tasks == wf.n_tasks
        assert back.n_edges == wf.n_edges
        for tid in wf.tasks:
            assert back.task(tid).mean_weight == pytest.approx(
                wf.task(tid).mean_weight, rel=1e-6
            )
            assert sum(back.predecessors(tid).values()) == pytest.approx(
                sum(wf.predecessors(tid).values()), abs=1.0
            )
            assert back.task(tid).external_input == pytest.approx(
                wf.task(tid).external_input, abs=1.0
            )

    def test_roundtrip_preserves_topology(self, diamond):
        back = parse_dax(write_dax(diamond))
        for tid in diamond.tasks:
            assert set(back.predecessors(tid)) == set(diamond.predecessors(tid))

    def test_inout_link(self):
        dax = (
            '<adag><job id="a" runtime="1">'
            '<uses file="f" link="inout" size="10"/></job></adag>'
        )
        wf = parse_dax(dax)
        assert wf.n_tasks == 1
