"""Unit tests for the Pegasus-family workflow generators."""

import pytest

from repro import WorkflowError
from repro.workflow.generators import (
    FAMILIES,
    PAPER_FAMILIES,
    generate,
    generate_cybershake,
    generate_ligo,
    generate_montage,
    generate_random_layered,
)
from repro.workflow.generators.ligo import OVERSIZE_RATIO

ALL_SIZES = [30, 60, 90]


class TestDispatch:
    def test_paper_families_present(self):
        assert set(PAPER_FAMILIES) <= set(FAMILIES)

    def test_unknown_family(self):
        with pytest.raises(WorkflowError, match="unknown workflow family"):
            generate("nope", 30)

    def test_case_insensitive(self):
        assert generate("MONTAGE", 30, rng=1).n_tasks == 30


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", ALL_SIZES)
class TestExactSizes:
    def test_task_count_exact(self, family, n):
        wf = generate(family, n, rng=3)
        assert wf.n_tasks == n

    def test_dag_is_valid_and_connected_enough(self, family, n):
        wf = generate(family, n, rng=3)
        # frozen without CycleError and every non-entry task has a predecessor
        for tid in wf.tasks:
            if tid not in wf.entry_tasks:
                assert wf.predecessors(tid)


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestDeterminism:
    def test_same_seed_same_workflow(self, family):
        a = generate(family, 30, rng=42)
        b = generate(family, 30, rng=42)
        assert a.tasks.keys() == b.tasks.keys()
        for tid in a.tasks:
            assert a.task(tid).mean_weight == b.task(tid).mean_weight
        assert list(a.edges()) == list(b.edges())

    def test_different_seed_different_weights(self, family):
        a = generate(family, 30, rng=1)
        b = generate(family, 30, rng=2)
        assert any(
            a.task(t).mean_weight != b.task(t).mean_weight for t in a.tasks
        )

    def test_sigma_ratio_applied_everywhere(self, family):
        wf = generate(family, 30, rng=1, sigma_ratio=0.75)
        for tid in wf.tasks:
            t = wf.task(tid)
            assert t.weight.sigma == pytest.approx(0.75 * t.weight.mean)


class TestCybershakeShape:
    def test_two_agglomerators(self):
        wf = generate_cybershake(30, rng=1)
        cats = [wf.task(t).category for t in wf.tasks]
        assert cats.count("ZipSeis") == 1
        assert cats.count("ZipPSA") == 1

    def test_half_tasks_have_huge_inputs(self):
        """Paper: 'In CYBERSHAKE, half the tasks have huge input data.'"""
        wf = generate_cybershake(60, rng=1)
        huge = [t for t in wf.tasks if wf.task(t).external_input > 100e6]
        assert abs(len(huge) - 29) <= 1  # (60-2)/2 synthesis tasks

    def test_generator_feeds_calculator_pairs(self):
        wf = generate_cybershake(30, rng=1)
        for tid in wf.tasks:
            if wf.task(tid).category == "PeakValCalcOkaya":
                preds = list(wf.predecessors(tid))
                assert len(preds) == 1
                assert wf.task(preds[0]).category == "SeismogramSynthesis"

    def test_agglomerators_collect_everything(self):
        wf = generate_cybershake(30, rng=1)
        zipseis = next(t for t in wf.tasks if wf.task(t).category == "ZipSeis")
        n_synth = sum(
            1 for t in wf.tasks if wf.task(t).category == "SeismogramSynthesis"
        )
        assert len(wf.predecessors(zipseis)) == n_synth

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            generate_cybershake(3)


class TestLigoShape:
    def test_exactly_one_oversized_input(self):
        """Paper: one input oversized by a ratio over 100."""
        wf = generate_ligo(60, rng=2, jitter=0.0)
        from repro.workflow.generators.ligo import PROFILES

        base = PROFILES["TmpltBank"].input_bytes
        oversized = [
            t for t in wf.tasks
            if wf.task(t).external_input >= base * OVERSIZE_RATIO * 0.99
        ]
        assert len(oversized) == 1
        assert OVERSIZE_RATIO > 100

    def test_independent_groups(self):
        """Large LIGO decomposes into independent sub-workflows (paper §V-B)."""
        nx = pytest.importorskip("networkx")
        wf = generate_ligo(90, rng=2)
        g = nx.Graph()
        g.add_nodes_from(wf.tasks)
        for e in wf.edges():
            g.add_edge(e.producer, e.consumer)
        assert nx.number_connected_components(g) > 1

    def test_two_agglomeration_stages(self):
        wf = generate_ligo(30, rng=2)
        thincas = [t for t in wf.tasks if wf.task(t).category == "Thinca"]
        with_preds_and_succs = [
            t for t in thincas if wf.predecessors(t) and wf.successors(t)
        ]
        # first-stage Thincas agglomerate AND feed the second stage
        assert with_preds_and_succs

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            generate_ligo(3)


class TestMontageShape:
    def test_single_sink_chain(self):
        wf = generate_montage(30, rng=3)
        assert len(wf.exit_tasks) == 1
        assert wf.task(wf.exit_tasks[0]).category == "mJPEG"

    def test_dense_interconnection(self):
        """Paper: 'plenty highly inter-connected tasks'."""
        wf = generate_montage(90, rng=3)
        assert wf.n_edges / wf.n_tasks > 1.5

    def test_diff_fits_read_two_projections(self):
        wf = generate_montage(30, rng=3)
        for tid in wf.tasks:
            if wf.task(tid).category == "mDiffFit":
                preds = list(wf.predecessors(tid))
                assert len(preds) == 2
                assert all(wf.task(p).category == "mProjectPP" for p in preds)

    def test_backgrounds_read_model_and_projection(self):
        wf = generate_montage(30, rng=3)
        for tid in wf.tasks:
            if wf.task(tid).category == "mBackground":
                cats = {wf.task(p).category for p in wf.predecessors(tid)}
                assert cats == {"mProjectPP", "mBgModel"}

    def test_too_small_rejected(self):
        with pytest.raises(WorkflowError):
            generate_montage(5)

    @pytest.mark.parametrize("n", [12, 13, 17, 23, 31, 47, 90, 121])
    def test_awkward_sizes(self, n):
        assert generate_montage(n, rng=1).n_tasks == n


class TestRuntimeScale:
    def test_scale_multiplies_weights(self):
        a = generate("montage", 30, rng=9, jitter=0.0, runtime_scale=1.0)
        b = generate("montage", 30, rng=9, jitter=0.0, runtime_scale=100.0)
        for tid in a.tasks:
            assert b.task(tid).mean_weight == pytest.approx(
                100.0 * a.task(tid).mean_weight
            )

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkflowError):
            generate("montage", 30, rng=1, runtime_scale=0.0)


class TestRandomLayered:
    def test_exact_count_and_acyclic(self):
        wf = generate_random_layered(50, depth=7, rng=4)
        assert wf.n_tasks == 50

    def test_depth_respected(self):
        wf = generate_random_layered(40, depth=5, rng=4)
        assert max(wf.levels().values()) <= 4

    def test_single_task(self):
        wf = generate_random_layered(1, rng=4)
        assert wf.n_tasks == 1

    def test_determinism(self):
        a = generate_random_layered(30, rng=8, sigma_ratio=0.5)
        b = generate_random_layered(30, rng=8, sigma_ratio=0.5)
        assert [a.task(t).mean_weight for t in sorted(a.tasks)] == [
            b.task(t).mean_weight for t in sorted(b.tasks)
        ]

    def test_bad_params(self):
        with pytest.raises(WorkflowError):
            generate_random_layered(0)
        with pytest.raises(WorkflowError):
            generate_random_layered(10, depth=0)
        with pytest.raises(WorkflowError):
            generate_random_layered(10, max_fan_in=0)
