"""Tests for the Eq. (3) risk-assessment module."""

import math

import numpy as np
import pytest

from repro import PAPER_PLATFORM, generate, make_scheduler
from repro.experiments.risk import Distribution, assess


@pytest.fixture(scope="module")
def setup():
    wf = generate("montage", 20, rng=8, sigma_ratio=0.5)
    sched = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, 1.0).schedule
    return wf, sched


class TestDistribution:
    def test_summary_fields(self):
        d = Distribution.from_samples(np.arange(101, dtype=float))
        assert d.mean == pytest.approx(50.0)
        assert d.minimum == 0.0 and d.maximum == 100.0
        assert d.quantile(50.0) == pytest.approx(50.0)
        assert d.quantile(95.0) == pytest.approx(95.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.from_samples(np.array([]))


class TestAssess:
    def test_probabilities_consistent(self, setup):
        wf, sched = setup
        r = assess(wf, PAPER_PLATFORM, sched, deadline=3000.0, budget=1.0,
                   n_samples=40, rng=1)
        assert 0.0 <= r.p_meets_objective <= min(
            r.p_meets_deadline, r.p_within_budget
        ) + 1e-12
        assert r.n_samples == 40

    def test_infinite_targets_always_met(self, setup):
        wf, sched = setup
        r = assess(wf, PAPER_PLATFORM, sched, n_samples=10, rng=2)
        assert r.p_meets_deadline == 1.0
        assert r.p_within_budget == 1.0
        assert r.p_meets_objective == 1.0

    def test_impossible_deadline_never_met(self, setup):
        wf, sched = setup
        r = assess(wf, PAPER_PLATFORM, sched, deadline=1.0, n_samples=10, rng=3)
        assert r.p_meets_deadline == 0.0
        assert r.p_meets_objective == 0.0

    def test_deterministic_given_seed(self, setup):
        wf, sched = setup
        a = assess(wf, PAPER_PLATFORM, sched, n_samples=15, rng=4)
        b = assess(wf, PAPER_PLATFORM, sched, n_samples=15, rng=4)
        assert a.makespan.mean == b.makespan.mean
        assert a.cost.mean == b.cost.mean

    def test_deadline_probability_monotone(self, setup):
        wf, sched = setup
        tight = assess(wf, PAPER_PLATFORM, sched, deadline=2000.0,
                       n_samples=40, rng=5)
        loose = assess(wf, PAPER_PLATFORM, sched, deadline=4000.0,
                       n_samples=40, rng=5)
        assert loose.p_meets_deadline >= tight.p_meets_deadline

    def test_summary_text(self, setup):
        wf, sched = setup
        r = assess(wf, PAPER_PLATFORM, sched, deadline=3000.0, budget=1.0,
                   n_samples=10, rng=6)
        text = r.summary()
        assert "P[makespan" in text and "joint" in text

    def test_bad_sample_count(self, setup):
        wf, sched = setup
        with pytest.raises(ValueError):
            assess(wf, PAPER_PLATFORM, sched, n_samples=0)

    def test_percentiles_ordered(self, setup):
        wf, sched = setup
        r = assess(wf, PAPER_PLATFORM, sched, n_samples=50, rng=7)
        q = r.makespan.percentiles
        keys = sorted(q)
        values = [q[k] for k in keys]
        assert values == sorted(values)
