"""Edge cases of the reporting helpers and CLI sub-commands."""

import io

import pytest

from repro.cli import main
from repro.experiments.report import format_row, records_to_csv
from repro.experiments.metrics import RunRecord


class TestFormatRow:
    def test_right_justified(self):
        assert format_row(["a", "bb"], [3, 4]) == "  a    bb"

    def test_truncates_nothing(self):
        row = format_row(["long-content", "x"], [3, 3])
        assert "long-content" in row


class TestCsv:
    def _rec(self, **kw):
        base = dict(
            family="f", n_tasks=1, instance=0, sigma_ratio=0.0,
            algorithm="heft", budget=1.0, budget_index=0, rep=0,
            makespan=1.0, total_cost=0.1, n_vms=1, valid=True,
            sched_seconds=0.0,
        )
        base.update(kw)
        return RunRecord(**base)

    def test_header_and_types(self):
        buf = io.StringIO()
        records_to_csv([self._rec()], buf)
        header, row = buf.getvalue().strip().splitlines()
        assert "budget_index" in header
        assert "True" in row

    def test_csv_round_trip_values(self):
        import csv

        buf = io.StringIO()
        records = [self._rec(rep=i, makespan=float(i)) for i in range(3)]
        records_to_csv(records, buf)
        buf.seek(0)
        rows = list(csv.DictReader(buf))
        assert [float(r["makespan"]) for r in rows] == [0.0, 1.0, 2.0]


class TestCliStudies:
    def test_sigma_command(self, capsys):
        code = main(["sigma", "--tasks", "14", "--reps", "2"])
        assert code == 0
        assert "sigma-impact" in capsys.readouterr().out

    def test_frontier_command(self, capsys):
        code = main(["frontier", "--sizes", "14"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal budget" in out
        assert "heft_budg" in out

    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])
