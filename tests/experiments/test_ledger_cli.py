"""``repro-exp ledger``: sweep archiving, convergence stats, regress gate."""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import convergence_diagnostics
from repro.obs.ledger import RunLedger

SWEEP = ["--smoke", "--tasks", "12", "--instances", "1", "--reps", "4",
         "--budgets", "2", "--families", "montage",
         "--algorithms", "heft_budg"]


def run_sweep_into(db):
    return main(["ledger", "sweep", "--db", db] + SWEEP)


class TestConvergenceDiagnostics:
    def test_running_mean_and_ci(self):
        diag = convergence_diagnostics([10.0, 12.0, 14.0, 16.0], batch_size=2)
        assert diag["n"] == 4
        assert diag["running_mean"] == [pytest.approx(11.0),
                                        pytest.approx(13.0)]
        assert diag["final_mean"] == pytest.approx(13.0)
        # half-width shrinks as samples accumulate relative to spread
        assert diag["ci_halfwidth"][0] > 0.0
        assert diag["final_ci_halfwidth"] == diag["ci_halfwidth"][-1]

    def test_single_sample_has_zero_ci(self):
        diag = convergence_diagnostics([5.0])
        assert diag["running_mean"] == [5.0]
        assert diag["ci_halfwidth"] == [0.0]

    def test_constant_samples_have_zero_ci(self):
        diag = convergence_diagnostics([3.0] * 6, batch_size=3)
        assert diag["ci_halfwidth"] == [0.0, 0.0]

    def test_empty_and_bad_batch(self):
        assert convergence_diagnostics([])["n"] == 0
        with pytest.raises(ValueError):
            convergence_diagnostics([1.0], batch_size=0)


class TestSweepArchiving:
    def test_sweep_records_rows_with_convergence(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        assert run_sweep_into(db) == 0
        assert "archived" in capsys.readouterr().out
        with RunLedger(db) as ledger:
            rows = ledger.runs(limit=0)
            # 1 instance x 2 budgets x 1 algorithm
            assert len(rows) == 2
            for row in rows:
                assert row.source == "sweep"
                assert row.n_reps == 4
                assert row.sim_makespan > 0
                conv = row.extra["makespan_convergence"]
                assert conv["n"] == 4
                assert conv["final_mean"] == pytest.approx(row.sim_makespan)

    def test_list_and_show_and_csv(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        capsys.readouterr()
        assert main(["ledger", "list", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "heft_budg" in out
        assert main(["ledger", "show", "--db", db, "1"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == 1
        csv_path = str(tmp_path / "runs.csv")
        assert main(["ledger", "list", "--db", db, "--csv", csv_path]) == 0
        header = open(csv_path).readline()
        assert header.startswith("run_id,")
        assert main(["ledger", "compare", "--db", db]) == 0
        assert "montage/12/heft_budg" in capsys.readouterr().out

    def test_show_unknown_run_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        assert main(["ledger", "show", "--db", db, "999"]) == 2


class TestRegressGate:
    def make_baseline(self, tmp_path, db):
        path = str(tmp_path / "base.json")
        assert main(["ledger", "baseline", "--db", db, "--out", path]) == 0
        return path

    def test_parity_exits_zero(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        base = self.make_baseline(tmp_path, db)
        code = main(["ledger", "regress", "--db", db, "--baseline", base])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_injected_20pct_regression_exits_nonzero(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        base = self.make_baseline(tmp_path, db)
        doc = json.load(open(base))
        for stats in doc["ledger_baseline"].values():
            stats["makespan"] /= 1.20  # ledger now reads 20% slower
        json.dump(doc, open(base, "w"))
        code = main(["ledger", "regress", "--db", db, "--baseline", base,
                     "--threshold", "0.10"])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_loose_threshold_tolerates_regression(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        base = self.make_baseline(tmp_path, db)
        doc = json.load(open(base))
        for stats in doc["ledger_baseline"].values():
            stats["makespan"] /= 1.20
        json.dump(doc, open(base, "w"))
        code = main(["ledger", "regress", "--db", db, "--baseline", base,
                     "--threshold", "0.30"])
        assert code == 0

    def test_empty_ledger_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        base = self.make_baseline(tmp_path, db)
        empty = str(tmp_path / "empty.db")
        code = main(["ledger", "regress", "--db", empty, "--baseline", base])
        assert code == 2
        assert "no baseline group" in capsys.readouterr().err

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        code = main(["ledger", "regress", "--db", db,
                     "--baseline", str(tmp_path / "missing.json")])
        assert code == 2

    def test_throughput_only_bench_rejected(self, tmp_path, capsys):
        db = str(tmp_path / "runs.db")
        run_sweep_into(db)
        bench = str(tmp_path / "bench.json")
        json.dump({"benchmarks": {"throughput": {"mean_s": 0.1}}},
                  open(bench, "w"))
        code = main(["ledger", "regress", "--db", db, "--baseline", bench])
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err
