"""Tests for budget anchors."""

import pytest

from repro import PAPER_PLATFORM, generate
from repro.experiments.budgets import (
    baseline_cost,
    budget_grid,
    cheapest_schedule,
    high_budget,
    medium_budget,
    minimal_budget,
)


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=4, sigma_ratio=0.5)


class TestAnchors:
    def test_cheapest_schedule_single_cheap_vm(self, wf):
        s = cheapest_schedule(wf, PAPER_PLATFORM)
        assert s.n_vms == 1
        assert s.categories[0] == PAPER_PLATFORM.cheapest
        s.validate(wf)

    def test_ordering(self, wf):
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_med = medium_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        assert 0 < b_min < b_med < b_high

    def test_high_budget_exceeds_baseline_cost(self, wf):
        assert high_budget(wf, PAPER_PLATFORM) > baseline_cost(wf, PAPER_PLATFORM)

    def test_minimal_budget_positive(self, wf):
        assert minimal_budget(wf, PAPER_PLATFORM) > 0


class TestGrid:
    def test_grid_spans_range(self, wf):
        grid = budget_grid(wf, PAPER_PLATFORM, 5)
        assert len(grid) == 5
        assert grid[0] == pytest.approx(minimal_budget(wf, PAPER_PLATFORM))
        assert grid[-1] == pytest.approx(high_budget(wf, PAPER_PLATFORM))
        assert grid == sorted(grid)

    def test_grid_needs_two_points(self, wf):
        with pytest.raises(ValueError):
            budget_grid(wf, PAPER_PLATFORM, 1)

    def test_factors(self, wf):
        grid = budget_grid(wf, PAPER_PLATFORM, 3, start_factor=0.5)
        assert grid[0] == pytest.approx(
            0.5 * minimal_budget(wf, PAPER_PLATFORM)
        )
