"""Tests for figure/table builders and text rendering."""

import io

import pytest

from repro.experiments import (
    ExperimentConfig,
    build_figure,
    render_cpu_table,
    render_figure,
    records_to_csv,
    table2_rows,
    table3a,
    table3b,
)
from repro.experiments.figures import FIGURE_ALGORITHMS


@pytest.fixture(scope="module")
def small_fig():
    cfg = ExperimentConfig(
        families=("montage",),
        n_tasks=14,
        n_instances=1,
        budgets_per_workflow=3,
        n_reps=2,
        algorithms=("heft", "heft_budg"),
        seed=3,
    )
    return build_figure("figure1", cfg)


class TestBuildFigure:
    def test_series_per_family_algorithm(self, small_fig):
        assert set(small_fig.series) == {
            ("montage", "heft"), ("montage", "heft_budg"),
        }

    def test_points_per_budget(self, small_fig):
        for series in small_fig.series.values():
            assert len(series) == 3
            budgets = [p.budget_mean for p in series]
            assert budgets == sorted(budgets)

    def test_aggregates_fold_reps(self, small_fig):
        point = small_fig.get("montage", "heft_budg")[0]
        assert point.stats.n == 2  # 1 instance x 2 reps

    def test_figure_algorithm_sets_cover_paper(self):
        assert FIGURE_ALGORITHMS["figure1"] == (
            "minmin", "heft", "minmin_budg", "heft_budg",
        )
        assert "cg_plus" in FIGURE_ALGORITHMS["figure4"]
        assert "bdt" in FIGURE_ALGORITHMS["figure3"]


class TestRenderFigure:
    @pytest.mark.parametrize("metric", ["makespan", "cost", "n_vms", "valid"])
    def test_renders_all_metrics(self, small_fig, metric):
        text = render_figure(small_fig, metric=metric)
        assert "montage" in text
        assert "heft_budg" in text
        assert "budget" in text

    def test_unknown_metric(self, small_fig):
        with pytest.raises(ValueError):
            render_figure(small_fig, metric="nope")

    def test_csv_dump(self, small_fig):
        buf = io.StringIO()
        records_to_csv(small_fig.records, buf)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == len(small_fig.records) + 1  # header
        assert "makespan" in lines[0]

    def test_csv_empty(self):
        buf = io.StringIO()
        records_to_csv([], buf)
        assert buf.getvalue() == ""


class TestTable2:
    def test_rows_cover_categories(self):
        rows = dict(table2_rows())
        assert rows["categories"] == "3"
        assert "cat1" in rows and "cat3" in rows
        assert "MB/s" in rows["bandwidth"]


class TestTable3:
    def test_table3a_structure(self):
        table = table3a(
            n_tasks=14,
            algorithms=("heft", "heft_budg"),
            repeats=1,
        )
        assert set(table) == {"low", "medium", "high"}
        for cells in table.values():
            assert [c.algorithm for c in cells] == ["heft", "heft_budg"]
            assert all(c.mean >= 0 for c in cells)

    def test_table3b_structure(self):
        table = table3b(
            sizes=(14, 20),
            algorithms=("heft_budg",),
            repeats=1,
        )
        assert set(table) == {14, 20}

    def test_table3b_time_grows_with_size(self):
        table = table3b(
            sizes=(14, 60),
            algorithms=("heft_budg",),
            repeats=2,
        )
        t_small = table[14][0].mean
        t_large = table[60][0].mean
        assert t_large > t_small

    def test_render_cpu_table(self):
        table = table3a(n_tasks=14, algorithms=("heft",), repeats=1)
        text = render_cpu_table(table)
        assert "low" in text and "heft" in text
