"""Tests for the repro-exp CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("cmd", ["fig1", "fig2", "fig3", "fig4",
                                     "table2", "table3a", "table3b"])
    def test_commands_exist(self, cmd):
        args = build_parser().parse_args([cmd])
        assert args.command == cmd

    def test_figure_options(self):
        args = build_parser().parse_args(
            ["fig1", "--smoke", "--tasks", "20", "--reps", "3"]
        )
        assert args.smoke and args.tasks == 20 and args.reps == 3


class TestMain:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "cat1" in out

    def test_fig1_smoke(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        code = main([
            "fig1", "--smoke", "--tasks", "14", "--instances", "1",
            "--reps", "2", "--budgets", "3", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure1: makespan" in out
        assert "figure1: cost" in out
        assert csv.exists()
        assert "makespan" in csv.read_text().splitlines()[0]

    def test_table3a_fast(self, capsys):
        code = main(["table3a", "--tasks", "14", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III(a)" in out
        assert "minmin_budg" in out


class TestServiceCommands:
    def test_serve_and_schedule_commands_exist(self):
        args = build_parser().parse_args(["serve", "--port", "9090"])
        assert args.command == "serve" and args.port == 9090
        args = build_parser().parse_args(["schedule", "--family", "ligo"])
        assert args.command == "schedule" and args.family == "ligo"

    def test_schedule_from_flags(self, capsys):
        import json

        code = main([
            "schedule", "--family", "montage", "--tasks", "15",
            "--algorithm", "minmin_budg", "--position", "0.5",
            "--reps", "2", "--no-schedule-payload",
        ])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["algorithm"] == "minmin_budg"
        assert body["evaluation"]["n_reps"] == 2
        assert "schedule" not in body

    def test_schedule_from_request_file(self, capsys, tmp_path):
        import json

        req = tmp_path / "req.json"
        req.write_text(json.dumps({
            "workflow": {"family": "montage", "n_tasks": 15, "rng": 1},
            "algorithm": "heft",
            "budget": {"amount": 5.0},
        }))
        assert main(["schedule", "--request", str(req)]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["schedule"]["format"] == "repro.schedule/1"

    def test_schedule_bad_request_exits_2(self, capsys, tmp_path):
        req = tmp_path / "req.json"
        req.write_text("{not json")
        assert main(["schedule", "--request", str(req)]) == 2
        assert "error" in capsys.readouterr().err

    def test_schedule_service_error_exits_2(self, capsys, tmp_path):
        import json

        req = tmp_path / "req.json"
        req.write_text(json.dumps({
            "workflow": {"family": "montage", "n_tasks": 15},
            "algorithm": "not_a_scheduler",
            "budget": 1.0,
        }))
        assert main(["schedule", "--request", str(req)]) == 2
        assert "unknown algorithm" in capsys.readouterr().err
