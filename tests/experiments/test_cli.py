"""Tests for the repro-exp CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("cmd", ["fig1", "fig2", "fig3", "fig4",
                                     "table2", "table3a", "table3b"])
    def test_commands_exist(self, cmd):
        args = build_parser().parse_args([cmd])
        assert args.command == cmd

    def test_figure_options(self):
        args = build_parser().parse_args(
            ["fig1", "--smoke", "--tasks", "20", "--reps", "3"]
        )
        assert args.smoke and args.tasks == 20 and args.reps == 3


class TestMain:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "cat1" in out

    def test_fig1_smoke(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        code = main([
            "fig1", "--smoke", "--tasks", "14", "--instances", "1",
            "--reps", "2", "--budgets", "3", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure1: makespan" in out
        assert "figure1: cost" in out
        assert csv.exists()
        assert "makespan" in csv.read_text().splitlines()[0]

    def test_table3a_fast(self, capsys):
        code = main(["table3a", "--tasks", "14", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III(a)" in out
        assert "minmin_budg" in out


class TestServiceCommands:
    def test_serve_and_schedule_commands_exist(self):
        args = build_parser().parse_args(["serve", "--port", "9090"])
        assert args.command == "serve" and args.port == 9090
        args = build_parser().parse_args(["schedule", "--family", "ligo"])
        assert args.command == "schedule" and args.family == "ligo"

    def test_schedule_from_flags(self, capsys):
        import json

        code = main([
            "schedule", "--family", "montage", "--tasks", "15",
            "--algorithm", "minmin_budg", "--position", "0.5",
            "--reps", "2", "--no-schedule-payload",
        ])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["algorithm"] == "minmin_budg"
        assert body["evaluation"]["n_reps"] == 2
        assert "schedule" not in body

    def test_schedule_from_request_file(self, capsys, tmp_path):
        import json

        req = tmp_path / "req.json"
        req.write_text(json.dumps({
            "workflow": {"family": "montage", "n_tasks": 15, "rng": 1},
            "algorithm": "heft",
            "budget": {"amount": 5.0},
        }))
        assert main(["schedule", "--request", str(req)]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["schedule"]["format"] == "repro.schedule/1"

    def test_schedule_bad_request_exits_2(self, capsys, tmp_path):
        req = tmp_path / "req.json"
        req.write_text("{not json")
        assert main(["schedule", "--request", str(req)]) == 2
        assert "error" in capsys.readouterr().err

    def test_schedule_service_error_exits_2(self, capsys, tmp_path):
        import json

        req = tmp_path / "req.json"
        req.write_text(json.dumps({
            "workflow": {"family": "montage", "n_tasks": 15},
            "algorithm": "not_a_scheduler",
            "budget": 1.0,
        }))
        assert main(["schedule", "--request", str(req)]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_logging_flags_exist(self):
        args = build_parser().parse_args(
            ["serve", "--log-level", "debug", "--log-json"]
        )
        assert args.log_level == "debug" and args.log_json
        args = build_parser().parse_args(["schedule"])
        assert args.log_level == "info" and not args.log_json


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workflow == "montage" and args.n == 50
        assert args.algo == "heft_budg" and args.out == "run.trace.json"

    def test_trace_writes_trace_and_decision_log(self, capsys, tmp_path):
        import json

        out = tmp_path / "run.trace.json"
        code = main([
            "trace", "--workflow", "montage", "--n", "15",
            "--algo", "heft_budg", "--out", str(out),
        ])
        assert code == 0

        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert all(e["ph"] in {"X", "M"} for e in doc["traceEvents"])
        # Both timelines land in one file: wall-clock spans and the
        # simulated per-VM tracks.
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "trace.session" in names and "schedule.heft_budg" in names
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert 1 in pids and any(p >= 100 for p in pids)

        decisions = tmp_path / "run.decisions.jsonl"
        assert decisions.exists()
        records = [json.loads(l) for l in decisions.read_text().splitlines()]
        assert len([r for r in records if r["kind"] == "host_selection"]) == 15

        report = capsys.readouterr().out
        assert "perfetto" in report and "decision" in report

    def test_trace_gantt_flag(self, capsys, tmp_path):
        out = tmp_path / "g.trace.json"
        assert main(["trace", "--n", "15", "--out", str(out),
                     "--gantt"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_trace_unknown_algo_exits_2(self, capsys, tmp_path):
        out = tmp_path / "x.trace.json"
        assert main(["trace", "--algo", "nope", "--out", str(out)]) == 2
        assert "error" in capsys.readouterr().err.lower()
