"""Tests for the bootstrap comparison harness."""

import numpy as np
import pytest

from repro.experiments.metrics import RunRecord
from repro.experiments.stats import (
    bootstrap_ci,
    compare_algorithms,
    paired_comparison,
)


class TestBootstrapCI:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=200)
        ci = bootstrap_ci(data, rng=1)
        assert ci.low <= 10.0 <= ci.high  # comfortably within at n=200
        assert ci.low <= ci.estimate <= ci.high

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, 20), rng=3)
        large = bootstrap_ci(rng.normal(0, 1, 2000), rng=3)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_ci(data, rng=7)
        b = bootstrap_ci(data, rng=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_other_statistics(self):
        data = list(range(101))
        ci = bootstrap_ci(data, np.median, rng=1)
        assert ci.estimate == 50.0

    def test_errors(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_contains_helper(self):
        ci = bootstrap_ci([5.0] * 10, rng=1)
        assert ci.contains(5.0)
        assert not ci.contains(6.0)


class TestPairedComparison:
    def test_clear_winner_detected(self):
        rng = np.random.default_rng(4)
        b = rng.uniform(100, 110, size=60)
        a = b * 0.8  # A is 20% faster everywhere
        cmp = paired_comparison(list(a), list(b), name_a="A", name_b="B", rng=5)
        assert cmp.a_significantly_faster
        assert not cmp.b_significantly_faster
        assert cmp.win_rate == 1.0
        assert "A faster" in cmp.summary()

    def test_tie_detected(self):
        rng = np.random.default_rng(6)
        base = rng.uniform(100, 110, size=60)
        noise_a = base * rng.normal(1.0, 0.05, size=60)
        noise_b = base * rng.normal(1.0, 0.05, size=60)
        cmp = paired_comparison(list(noise_a), list(noise_b), rng=7)
        assert not cmp.a_significantly_faster or not cmp.b_significantly_faster

    def test_unpaired_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_comparison([], [])


class TestCompareAlgorithms:
    def _rec(self, algo, rep, makespan):
        return RunRecord(
            family="f", n_tasks=10, instance=0, sigma_ratio=0.5,
            algorithm=algo, budget=1.0, budget_index=0, rep=rep,
            makespan=makespan, total_cost=0.5, n_vms=2, valid=True,
            sched_seconds=0.0,
        )

    def test_pairs_by_grid_key(self):
        records = []
        for rep in range(20):
            records.append(self._rec("fast", rep, 100.0))
            records.append(self._rec("slow", rep, 150.0))
        cmp = compare_algorithms(records, "fast", "slow", rng=8)
        assert cmp.n_pairs == 20
        assert cmp.a_significantly_faster

    def test_missing_counterparts_dropped(self):
        records = [self._rec("fast", r, 100.0) for r in range(5)]
        records += [self._rec("slow", r, 150.0) for r in range(3)]
        cmp = compare_algorithms(records, "fast", "slow", rng=9)
        assert cmp.n_pairs == 3

    def test_end_to_end_with_real_sweep(self):
        from repro.experiments import ExperimentConfig, run_sweep

        cfg = ExperimentConfig(
            families=("montage",), n_tasks=14, n_instances=1,
            budgets_per_workflow=2, n_reps=4,
            algorithms=("heft_budg", "minmin_budg"), seed=2,
        )
        records = run_sweep(cfg)
        cmp = compare_algorithms(records, "heft_budg", "minmin_budg", rng=10)
        assert cmp.n_pairs == 8
        assert 0.0 <= cmp.win_rate <= 1.0
