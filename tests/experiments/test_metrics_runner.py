"""Tests for experiment records, aggregation and the sweep runner."""

import math

import pytest

from repro import PAPER_PLATFORM, generate
from repro.experiments import (
    ExperimentConfig,
    aggregate,
    group_by,
    make_instances,
    run_point,
    run_sweep,
)
from repro.experiments.metrics import RunRecord


def _rec(**kw):
    base = dict(
        family="montage", n_tasks=30, instance=0, sigma_ratio=0.5,
        algorithm="heft_budg", budget=1.0, budget_index=0, rep=0,
        makespan=100.0, total_cost=0.5, n_vms=3, valid=True,
        sched_seconds=0.01,
    )
    base.update(kw)
    return RunRecord(**base)


class TestAggregate:
    def test_mean_std(self):
        recs = [_rec(makespan=m, rep=i) for i, m in enumerate([100, 200, 300])]
        agg = aggregate(recs)
        assert agg.n == 3
        assert agg.makespan_mean == pytest.approx(200.0)
        assert agg.makespan_std == pytest.approx(81.6496, rel=1e-3)

    def test_valid_fraction(self):
        recs = [_rec(valid=v, rep=i) for i, v in enumerate([True, False, True, True])]
        assert aggregate(recs).valid_fraction == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_group_by(self):
        recs = [
            _rec(algorithm="heft", rep=0),
            _rec(algorithm="heft", rep=1),
            _rec(algorithm="cg", rep=0),
        ]
        groups = group_by(recs, "algorithm")
        assert set(groups) == {("heft",), ("cg",)}
        assert len(groups[("heft",)]) == 2


class TestRunPoint:
    def test_produces_n_reps_records(self):
        wf = generate("cybershake", 20, rng=3, sigma_ratio=0.5)
        records = run_point(
            wf, PAPER_PLATFORM, "heft_budg", 2.0, 4, rng=7,
            family="cybershake", instance=1, sigma_ratio=0.5,
        )
        assert len(records) == 4
        assert {r.rep for r in records} == {0, 1, 2, 3}
        assert all(r.family == "cybershake" for r in records)

    def test_stochastic_reps_differ(self):
        wf = generate("cybershake", 20, rng=3, sigma_ratio=1.0)
        records = run_point(wf, PAPER_PLATFORM, "heft_budg", 2.0, 5, rng=7)
        assert len({r.makespan for r in records}) > 1

    def test_sigma_zero_reps_identical(self):
        wf = generate("cybershake", 20, rng=3, sigma_ratio=0.0)
        records = run_point(wf, PAPER_PLATFORM, "heft_budg", 2.0, 3, rng=7)
        assert len({r.makespan for r in records}) == 1

    def test_baseline_ignores_budget(self):
        wf = generate("cybershake", 20, rng=3, sigma_ratio=0.0)
        tight = run_point(wf, PAPER_PLATFORM, "heft", 0.0001, 1, rng=7)
        loose = run_point(wf, PAPER_PLATFORM, "heft", 100.0, 1, rng=7)
        assert tight[0].makespan == loose[0].makespan

    def test_validity_flag_against_budget(self):
        wf = generate("cybershake", 20, rng=3, sigma_ratio=0.0)
        (rec,) = run_point(wf, PAPER_PLATFORM, "heft", 0.0001, 1, rng=7)
        assert not rec.valid


class TestRunSweep:
    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig(
            families=("montage",),
            n_tasks=14,
            n_instances=2,
            budgets_per_workflow=3,
            n_reps=2,
            algorithms=("heft", "heft_budg"),
            seed=5,
        )

    def test_record_count(self, config):
        records = run_sweep(config)
        # 1 family x 2 instances x 3 budgets x 2 algos x 2 reps
        assert len(records) == 2 * 3 * 2 * 2

    def test_budget_indices_cover_grid(self, config):
        records = run_sweep(config)
        assert {r.budget_index for r in records} == {0, 1, 2}

    def test_deterministic_given_seed(self, config):
        a = run_sweep(config)
        b = run_sweep(config)
        assert [(r.makespan, r.total_cost) for r in a] == [
            (r.makespan, r.total_cost) for r in b
        ]

    def test_make_instances_shapes(self, config):
        instances = make_instances(config)
        assert len(instances) == 2
        for wf in instances.values():
            assert wf.n_tasks == 14
