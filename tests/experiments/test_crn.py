"""Common-random-numbers guarantees of the sweep runner."""

import math

import pytest

from repro import PAPER_PLATFORM, generate
from repro.experiments import ExperimentConfig, run_point, run_sweep
from repro.simulation.executor import conservative_weights


class TestWeightDraws:
    def test_explicit_draws_are_used(self):
        wf = generate("cybershake", 16, rng=1, sigma_ratio=1.0)
        draws = [conservative_weights(wf)] * 3
        records = run_point(
            wf, PAPER_PLATFORM, "heft_budg", 2.0, 3, rng=9,
            weight_draws=draws,
        )
        # deterministic draws -> identical repetitions
        assert len({r.makespan for r in records}) == 1

    def test_too_few_draws_rejected(self):
        wf = generate("cybershake", 16, rng=1, sigma_ratio=1.0)
        with pytest.raises(ValueError, match="weight draws"):
            run_point(
                wf, PAPER_PLATFORM, "heft_budg", 2.0, 5, rng=9,
                weight_draws=[conservative_weights(wf)],
            )


class TestSweepCRN:
    def test_same_schedule_same_weights_same_makespan(self):
        """HEFT and HEFTBUDG produce identical schedules at infinite budget;
        under CRN their per-rep makespans must coincide exactly at the top
        (near-unconstrained) budget point."""
        cfg = ExperimentConfig(
            families=("montage",), n_tasks=14, n_instances=1,
            budgets_per_workflow=3, n_reps=4,
            algorithms=("heft", "heft_budg"), seed=6,
        )
        records = run_sweep(cfg)
        top = max(r.budget_index for r in records)
        heft = {r.rep: r.makespan for r in records
                if r.algorithm == "heft" and r.budget_index == top}
        budg = {r.rep: r.makespan for r in records
                if r.algorithm == "heft_budg" and r.budget_index == top}
        assert heft == budg

    def test_reps_share_weights_across_budgets(self):
        """For a budget-ignoring baseline, every budget point replays the
        same weight draws — identical makespans per repetition."""
        cfg = ExperimentConfig(
            families=("montage",), n_tasks=14, n_instances=1,
            budgets_per_workflow=3, n_reps=3,
            algorithms=("heft",), seed=7,
        )
        records = run_sweep(cfg)
        by_rep = {}
        for r in records:
            by_rep.setdefault(r.rep, set()).add(round(r.makespan, 9))
        for rep, makespans in by_rep.items():
            assert len(makespans) == 1, f"rep {rep} diverged across budgets"
