"""Tests for the sigma-impact study and the minimal-budget frontier."""

import pytest

from repro import PAPER_PLATFORM, generate
from repro.experiments.budget_frontier import (
    budget_to_match_baseline,
    frontier_study,
    render_frontier,
)
from repro.experiments.budgets import high_budget, minimal_budget
from repro.experiments.sigma_study import render_sigma_study, sigma_study


class TestSigmaStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return sigma_study(
            families=("montage",),
            n_tasks=20,
            sigma_ratios=(0.25, 1.0),
            n_reps=4,
            seed=3,
        )

    def test_points_cover_grid(self, study):
        assert len(study.points) == 2
        assert study.sigmas() == [0.25, 1.0]
        assert study.families() == ["montage"]

    def test_b_min_grows_with_sigma(self, study):
        assert study.get("montage", 1.0).b_min > study.get("montage", 0.25).b_min

    def test_budget_respected_at_both_sigmas(self, study):
        for point in study.points:
            assert point.stats.valid_fraction >= 0.75

    def test_render(self, study):
        text = render_sigma_study(study)
        assert "montage" in text and "1.00" in text

    def test_get_unknown(self, study):
        with pytest.raises(KeyError):
            study.get("ligo", 0.25)

    def test_bad_position(self):
        with pytest.raises(ValueError):
            sigma_study(budget_position=2.0)


class TestFrontier:
    @pytest.fixture(scope="class")
    def wf(self):
        return generate("montage", 20, rng=4, sigma_ratio=0.5)

    def test_frontier_within_axis(self, wf):
        p = budget_to_match_baseline(wf, PAPER_PLATFORM, "heft_budg")
        assert minimal_budget(wf, PAPER_PLATFORM) <= p.matching_budget
        assert p.matching_budget <= 2 * high_budget(wf, PAPER_PLATFORM)
        assert 0.0 <= p.relative_position <= 1.0 + 1e-9

    def test_frontier_budget_actually_matches(self, wf):
        from repro import evaluate_schedule, make_scheduler

        p = budget_to_match_baseline(wf, PAPER_PLATFORM, "heft_budg")
        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, p.matching_budget
        ).schedule
        mk = evaluate_schedule(wf, PAPER_PLATFORM, sched).makespan
        assert mk <= p.baseline_makespan * 1.05 + 1e-6

    def test_below_frontier_does_not_match(self, wf):
        from repro import evaluate_schedule, make_scheduler

        p = budget_to_match_baseline(wf, PAPER_PLATFORM, "heft_budg")
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        if p.matching_budget > b_min * 1.01:  # frontier above the floor
            low = b_min + 0.25 * (p.matching_budget - b_min)
            sched = make_scheduler("heft_budg").schedule(
                wf, PAPER_PLATFORM, low
            ).schedule
            mk = evaluate_schedule(wf, PAPER_PLATFORM, sched).makespan
            assert mk > p.baseline_makespan * 1.05

    def test_study_and_render(self):
        points = frontier_study(
            families=("montage",), sizes=(20,), seed=5,
        )
        assert {p.algorithm for p in points} == {"minmin_budg", "heft_budg"}
        text = render_frontier(points)
        assert "montage" in text
