"""Metrics registry: counters, series, quantiles, histograms, timers."""

import threading

import pytest

from repro.service.metrics import DEFAULT_BUCKETS, MetricsRegistry, quantile


class TestQuantile:
    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestCounters:
    def test_incr(self):
        reg = MetricsRegistry()
        reg.incr("requests")
        reg.incr("requests", 4)
        assert reg.counter("requests") == 5
        assert reg.counter("absent") == 0

    def test_snapshot_contains_counters(self):
        reg = MetricsRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["series"] == {}


class TestSeries:
    def test_observe_summary_lifetime_scope(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        summary = reg.snapshot()["series"]["lat"]
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_window_scope_is_labelled_explicitly(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        summary = reg.snapshot()["series"]["lat"]
        assert summary["window_count"] == 3
        assert summary["window_p50"] == pytest.approx(2.0)
        assert summary["window_p95"] == pytest.approx(2.9)
        # Unlabelled quantile keys must not exist — scopes differ.
        assert "p50" not in summary and "p95" not in summary

    def test_timer_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.timer("block"):
            sum(range(1000))
        summary = reg.snapshot()["series"]["block"]
        assert summary["count"] == 1
        assert summary["min"] >= 0.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["series"] == {}


class TestHistogramBuckets:
    def test_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            reg.observe("lat", v)
        buckets = reg.snapshot()["series"]["lat"]["buckets"]
        assert buckets == {"0.1": 1, "1": 2, "10": 3, "+Inf": 4}

    def test_boundary_value_counts_in_its_bucket(self):
        # Prometheus `le` semantics: a sample equal to the bound is inside.
        reg = MetricsRegistry(buckets=(0.1, 1.0))
        reg.observe("lat", 0.1)
        buckets = reg.snapshot()["series"]["lat"]["buckets"]
        assert buckets["0.1"] == 1

    def test_default_buckets_applied(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.003)
        buckets = reg.snapshot()["series"]["lat"]["buckets"]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1
        assert buckets["0.005"] == 1 and buckets["0.001"] == 0

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(buckets=(1.0, 0.5))      # not increasing
        with pytest.raises(ValueError):
            MetricsRegistry(buckets=(0.0, 1.0))      # non-positive
        with pytest.raises(ValueError):
            MetricsRegistry(buckets=(1.0, float("inf")))  # +Inf is implicit

    def test_window_rolls_but_lifetime_does_not(self):
        reg = MetricsRegistry(buckets=(10.0,))
        for _ in range(2000):
            reg.observe("lat", 1.0)
        summary = reg.snapshot()["series"]["lat"]
        assert summary["count"] == 2000
        assert summary["window_count"] == 1024
        assert summary["buckets"]["+Inf"] == 2000


class TestThreadSafety:
    def test_concurrent_incr_is_exact(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.incr("n")
                reg.observe("v", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 8000
        assert reg.snapshot()["series"]["v"]["count"] == 8000
