"""Metrics registry: counters, series, quantiles, timers."""

import threading

import pytest

from repro.service.metrics import MetricsRegistry, quantile


class TestQuantile:
    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestCounters:
    def test_incr(self):
        reg = MetricsRegistry()
        reg.incr("requests")
        reg.incr("requests", 4)
        assert reg.counter("requests") == 5
        assert reg.counter("absent") == 0

    def test_snapshot_contains_counters(self):
        reg = MetricsRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["series"] == {}


class TestSeries:
    def test_observe_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("lat", v)
        summary = reg.snapshot()["series"]["lat"]
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["p50"] == pytest.approx(2.0)

    def test_timer_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.timer("block"):
            sum(range(1000))
        summary = reg.snapshot()["series"]["block"]
        assert summary["count"] == 1
        assert summary["min"] >= 0.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["series"] == {}


class TestThreadSafety:
    def test_concurrent_incr_is_exact(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.incr("n")
                reg.observe("v", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 8000
        assert reg.snapshot()["series"]["v"]["count"] == 8000
