"""Admission control over HTTP: headers, typed refusals, introspection."""

import json
import urllib.error
import urllib.request

import pytest

from repro.admission import TenantPolicy, TenantRegistry
from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(amount=2.0, n_reps=0, seed=42, **extra):
    doc = {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps, "seed": seed},
    }
    doc.update(extra)
    return doc


@pytest.fixture()
def gateway():
    registry = TenantRegistry({
        "metered": TenantPolicy(name="metered", cost_budget=2.5,
                                budget_window_s=3600.0),
        "throttled": TenantPolicy(name="throttled", rate=0.001, burst=1.0),
    })
    service = SchedulingService(max_workers=2, cache_size=0,
                                tenants=registry)
    gw = start_gateway(service)
    yield gw
    gw.shutdown()
    service.close()


def call(gateway, method, path, payload=None, headers=None):
    data = None if payload is None else json.dumps(payload).encode()
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    req = urllib.request.Request(
        gateway.url + path, data=data, method=method, headers=all_headers,
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc), dict(exc.headers)


class TestTenantHeaders:
    def test_x_tenant_header_tags_the_job(self, gateway):
        status, body, _ = call(
            gateway, "POST", "/v1/jobs", request_dict(),
            headers={"X-Tenant": "metered", "X-Priority": "interactive"},
        )
        assert status == 202
        (job_id,) = body["job_ids"]
        gateway.service.wait_all(timeout=60)
        status, body, _ = call(gateway, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        assert body["request"]["tenant"] == "metered"
        assert body["request"]["priority"] == "interactive"

    def test_body_fields_beat_headers(self, gateway):
        status, body, _ = call(
            gateway, "POST", "/v1/jobs",
            request_dict(tenant="explicit", priority="best_effort"),
            headers={"X-Tenant": "metered", "X-Priority": "interactive"},
        )
        assert status == 202
        gateway.service.wait_all(timeout=60)
        _, body, _ = call(gateway, "GET", f"/v1/jobs/{body['job_ids'][0]}")
        assert body["request"]["tenant"] == "explicit"
        assert body["request"]["priority"] == "best_effort"

    def test_invalid_priority_header_is_400(self, gateway):
        status, body, _ = call(
            gateway, "POST", "/v1/schedule", request_dict(),
            headers={"X-Priority": "urgent"},
        )
        assert status == 400
        assert "priority" in body["error"]


class TestTypedRefusals:
    def test_budget_exhausted_is_402_with_retry_after(self, gateway):
        status, _, _ = call(
            gateway, "POST", "/v1/schedule", request_dict(amount=2.0),
            headers={"X-Tenant": "metered"},
        )
        assert status == 200
        # Priced analytically at its declared 3.0 budget (new family),
        # which cannot fit in what remains of the 2.5 window.
        status, body, headers = call(
            gateway, "POST", "/v1/schedule", request_dict(amount=3.0, seed=7),
            headers={"X-Tenant": "metered"},
        )
        assert status == 402
        assert body["reason"] == "budget_exhausted"
        assert body["tenant"] == "metered"
        assert body["retry_after_s"] > 0.0
        assert body["trace_id"]
        assert float(headers["Retry-After"]) >= 1.0

    def test_rate_limited_is_429(self, gateway):
        status, _, _ = call(
            gateway, "POST", "/v1/schedule", request_dict(),
            headers={"X-Tenant": "throttled"},
        )
        assert status == 200
        status, body, headers = call(
            gateway, "POST", "/v1/jobs", request_dict(seed=7),
            headers={"X-Tenant": "throttled"},
        )
        assert status == 429
        assert body["reason"] == "rate_limited"
        assert "Retry-After" in headers

    def test_rejections_counted_in_metrics(self, gateway):
        call(gateway, "POST", "/v1/schedule", request_dict(),
             headers={"X-Tenant": "throttled"})
        call(gateway, "POST", "/v1/schedule", request_dict(seed=8),
             headers={"X-Tenant": "throttled"})
        req = urllib.request.Request(
            gateway.url + "/v1/metrics?format=prometheus")
        with urllib.request.urlopen(req, timeout=30) as resp:
            text = resp.read().decode()
        assert "repro_admission_rejected_total" in text


class TestIntrospection:
    def test_tenants_endpoint(self, gateway):
        call(gateway, "POST", "/v1/schedule", request_dict(),
             headers={"X-Tenant": "metered"})
        status, body, _ = call(gateway, "GET", "/v1/tenants")
        assert status == 200
        tenants = body["tenants"]["tenants"]
        assert "metered" in tenants
        metered = tenants["metered"]
        assert metered["policy"]["cost_budget"] == 2.5
        assert metered["spent_window"] > 0.0
        assert metered["budget_remaining"] < 2.5

    def test_admission_endpoint(self, gateway):
        status, body, _ = call(gateway, "GET", "/v1/admission")
        assert status == 200
        assert "queue" in body
        assert "estimator" in body
        assert "batching" in body
        assert body["queue"]["depth"] == 0

    def test_admission_counters_in_json_metrics(self, gateway):
        call(gateway, "POST", "/v1/schedule", request_dict(),
             headers={"X-Tenant": "metered"})
        status, body, _ = call(gateway, "GET", "/v1/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters.get("admission_admitted", 0) >= 1
