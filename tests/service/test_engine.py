"""SchedulingService: sync path, caching, async jobs, stats."""

import pytest

from repro import JobNotFoundError, PAPER_PLATFORM, ServiceError, generate
from repro.io import schedule_from_dict
from repro.service import JobState, ScheduleRequest, SchedulingService
from repro.simulation.executor import execute_schedule, sample_weights


def request_dict(n_tasks=20, algorithm="heft_budg", amount=2.0, n_reps=0,
                 family="montage", rng=1):
    return {
        "workflow": {"family": family, "n_tasks": n_tasks, "rng": rng,
                     "sigma_ratio": 0.5},
        "algorithm": algorithm,
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps, "seed": 7},
    }


@pytest.fixture()
def service():
    with SchedulingService(max_workers=2, cache_size=32) as svc:
        yield svc


class TestSyncPath:
    def test_schedule_from_dict_payload(self, service):
        resp = service.schedule(request_dict())
        assert resp.algorithm == "heft_budg"
        assert resp.n_tasks == 20
        assert resp.n_vms >= 1
        assert resp.budget == 2.0
        assert not resp.cached
        assert resp.elapsed_s > 0.0

    def test_schedule_payload_is_loadable_and_consistent(self, service):
        resp = service.schedule(request_dict())
        sched = schedule_from_dict(resp.schedule)
        wf = generate("montage", 20, rng=1, sigma_ratio=0.5)
        sched.validate(wf)
        # The engine's evaluation must match an out-of-band replay.
        resp2 = service.schedule(request_dict(n_reps=3))
        run = execute_schedule(
            wf, PAPER_PLATFORM, sched, sample_weights(wf, rng=7)
        )
        assert resp2.evaluation["reps"][0]["makespan"] == pytest.approx(
            run.makespan
        )

    def test_evaluation_summary(self, service):
        resp = service.schedule(request_dict(n_reps=5))
        ev = resp.evaluation
        assert ev["n_reps"] == 5
        assert 0.0 <= ev["budget_success_rate"] <= 1.0
        assert ev["makespan"]["min"] <= ev["makespan"]["mean"] <= ev["makespan"]["max"]
        assert len(ev["reps"]) == 5

    def test_no_evaluation_by_default(self, service):
        assert service.schedule(request_dict()).evaluation is None

    def test_accepts_request_objects(self, service):
        req = ScheduleRequest.from_dict(request_dict())
        assert service.schedule(req).algorithm == "heft_budg"

    def test_invalid_request_raises(self, service):
        with pytest.raises(ServiceError, match="unknown algorithm"):
            service.schedule(request_dict(algorithm="nope"))


class TestCaching:
    def test_identical_requests_hit_cache(self, service):
        first = service.schedule(request_dict())
        second = service.schedule(request_dict())
        assert not first.cached
        assert second.cached
        assert second.schedule == first.schedule
        assert service.stats()["cache"]["hits"] == 1

    def test_distinct_requests_miss(self, service):
        service.schedule(request_dict(amount=2.0))
        resp = service.schedule(request_dict(amount=3.0))
        assert not resp.cached

    def test_cache_disabled(self):
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            svc.schedule(request_dict())
            resp = svc.schedule(request_dict())
            assert not resp.cached
            assert svc.stats()["cache"] is None

    def test_clear_cache(self, service):
        service.schedule(request_dict())
        service.clear_cache()
        assert not service.schedule(request_dict()).cached

    def test_cached_copy_does_not_poison_store(self, service):
        service.schedule(request_dict())
        hit = service.schedule(request_dict())
        hit.schedule["order"] = "tampered"  # mutate the returned copy's dict
        # a fresh hit still returns... (shallow copy shares the dict; the
        # flag, however, must never leak back as cached=True on originals)
        again = service.schedule(request_dict())
        assert again.cached


class TestJobs:
    def test_submit_and_result(self, service):
        job_id = service.submit(request_dict())
        resp = service.result(job_id, timeout=60)
        assert resp.n_tasks == 20
        record = service.job(job_id)
        assert record.state == JobState.DONE
        assert record.response is not None
        assert record.finished_at >= record.started_at >= record.submitted_at

    def test_submit_batch_order(self, service):
        ids = service.submit_batch([request_dict(), request_dict(amount=3.0)])
        assert len(ids) == 2 and ids[0] != ids[1]
        service.wait_all(timeout=60)
        assert {service.job(i).state for i in ids} == {JobState.DONE}

    def test_empty_batch_rejected(self, service):
        with pytest.raises(ServiceError, match="at least one"):
            service.submit_batch([])

    def test_failed_job_surfaces_error(self, service):
        # A DAX that does not parse fails at resolve time, inside the worker.
        job_id = service.submit(
            {"workflow": {"dax": "not xml"}, "algorithm": "heft",
             "budget": 1.0}
        )
        with pytest.raises(ServiceError, match="failed to resolve"):
            service.result(job_id, timeout=60)
        assert service.job(job_id).state == JobState.FAILED
        assert "resolve" in service.job(job_id).error

    def test_unknown_job_raises(self, service):
        with pytest.raises(JobNotFoundError):
            service.job("job-999999")
        with pytest.raises(JobNotFoundError):
            service.result("job-999999")
        with pytest.raises(JobNotFoundError):
            service.cancel("job-999999")

    def test_jobs_listing_and_filter(self, service):
        service.submit(request_dict())
        service.wait_all(timeout=60)
        assert len(service.jobs()) == 1
        assert len(service.jobs(state=JobState.DONE)) == 1
        assert service.jobs(state=JobState.FAILED) == []
        with pytest.raises(ServiceError, match="unknown job state"):
            service.jobs(state="zombie")

    def test_cancel_unstarted_job(self):
        # One worker busy with a real job => the second queued job is
        # cancellable before it starts.
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            svc.submit(request_dict(n_tasks=60, n_reps=20))
            second = svc.submit(request_dict(amount=9.9))
            cancelled = svc.cancel(second)
            if cancelled:  # scheduling is fast; only assert when it held
                assert svc.job(second).state == JobState.CANCELLED
                with pytest.raises(ServiceError, match="cancelled"):
                    svc.result(second)
            svc.wait_all(timeout=120)


class TestLifecycle:
    def test_stats_shape(self, service):
        service.schedule(request_dict())
        stats = service.stats()
        assert stats["uptime_s"] >= 0.0
        assert set(stats["jobs"]) == set(JobState.ALL)
        assert "heft_budg" in stats["schedulers"]
        assert stats["metrics"]["counters"]["requests"] == 1
        assert "schedule_latency_s" in stats["metrics"]["series"]

    def test_submit_after_close_rejected(self):
        svc = SchedulingService(max_workers=1)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(request_dict())

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            SchedulingService(max_workers=0)
        with pytest.raises(ServiceError):
            SchedulingService(cache_size=-1)
