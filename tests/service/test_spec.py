"""Request/response model: validation, round trips, fingerprints."""

import pytest

from repro import PAPER_PLATFORM, ServiceError, generate, write_dax
from repro.service.spec import (
    BudgetSpec,
    EvaluationSpec,
    PlatformSpec,
    ScheduleRequest,
    ScheduleResponse,
    WorkflowSpec,
    parse_requests,
)


def make_request(**overrides):
    base = {
        "workflow": {"family": "montage", "n_tasks": 20, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": 2.0},
    }
    base.update(overrides)
    return ScheduleRequest.from_dict(base)


class TestWorkflowSpec:
    def test_generator_mode_resolves(self):
        spec = WorkflowSpec(family="ligo", n_tasks=20, rng=3, sigma_ratio=0.25)
        wf = spec.resolve()
        assert wf.n_tasks == 20

    def test_dax_mode_resolves(self):
        source = generate("montage", 15, rng=1, sigma_ratio=0.5)
        spec = WorkflowSpec(dax=write_dax(source), sigma_ratio=0.5)
        wf = spec.resolve()
        assert wf.n_tasks == 15

    def test_needs_exactly_one_source(self):
        with pytest.raises(ServiceError, match="exactly one"):
            WorkflowSpec()
        with pytest.raises(ServiceError, match="exactly one"):
            WorkflowSpec(family="montage", n_tasks=5, dax="<adag/>")

    def test_rejects_unknown_family(self):
        with pytest.raises(ServiceError, match="unknown workflow family"):
            WorkflowSpec(family="nope", n_tasks=5)

    def test_rejects_bad_n_tasks(self):
        with pytest.raises(ServiceError, match="n_tasks"):
            WorkflowSpec(family="montage", n_tasks=0)

    def test_bad_dax_reported_as_service_error(self):
        spec = WorkflowSpec(dax="this is not XML")
        with pytest.raises(ServiceError, match="failed to resolve"):
            spec.resolve()

    def test_dict_roundtrip(self):
        spec = WorkflowSpec(family="montage", n_tasks=20, rng=7, sigma_ratio=0.5)
        assert WorkflowSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown workflow spec fields"):
            WorkflowSpec.from_dict({"family": "montage", "n_tasks": 5, "bogus": 1})


class TestPlatformSpec:
    def test_paper_default(self):
        assert PlatformSpec().resolve() is PAPER_PLATFORM

    def test_linear_params_forwarded(self):
        spec = PlatformSpec(kind="linear", params={"n_categories": 4})
        assert spec.resolve().n_categories == 4

    def test_inline_roundtrip(self):
        spec = PlatformSpec.inline(PAPER_PLATFORM)
        back = spec.resolve()
        assert back.categories == PAPER_PLATFORM.categories

    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceError, match="platform kind"):
            PlatformSpec(kind="galactic")

    def test_rejects_unknown_linear_params(self):
        with pytest.raises(ServiceError, match="unknown linear platform params"):
            PlatformSpec(kind="linear", params={"warp_factor": 9})

    def test_paper_takes_no_params(self):
        with pytest.raises(ServiceError, match="no params"):
            PlatformSpec(kind="paper", params={"x": 1})


class TestBudgetSpec:
    def test_amount_mode(self):
        wf = generate("montage", 15, rng=1)
        assert BudgetSpec(amount=3.5).resolve(wf, PAPER_PLATFORM) == 3.5

    def test_position_mode_spans_axis(self):
        wf = generate("montage", 20, rng=1, sigma_ratio=0.5).freeze()
        lo = BudgetSpec(position=0.0).resolve(wf, PAPER_PLATFORM)
        mid = BudgetSpec(position=0.5).resolve(wf, PAPER_PLATFORM)
        hi = BudgetSpec(position=1.0).resolve(wf, PAPER_PLATFORM)
        assert lo < mid < hi

    def test_needs_exactly_one_mode(self):
        with pytest.raises(ServiceError, match="exactly one"):
            BudgetSpec()
        with pytest.raises(ServiceError, match="exactly one"):
            BudgetSpec(amount=1.0, position=0.5)

    def test_validation(self):
        with pytest.raises(ServiceError, match="amount"):
            BudgetSpec(amount=-1.0)
        with pytest.raises(ServiceError, match="position"):
            BudgetSpec(position=1.5)

    def test_from_bare_number(self):
        assert BudgetSpec.from_dict(4.0) == BudgetSpec(amount=4.0)


class TestEvaluationSpec:
    def test_defaults(self):
        spec = EvaluationSpec()
        assert spec.n_reps == 0 and spec.dc_capacity is None

    def test_validation(self):
        with pytest.raises(ServiceError, match="n_reps"):
            EvaluationSpec(n_reps=-1)
        with pytest.raises(ServiceError, match="dc_capacity"):
            EvaluationSpec(dc_capacity=0.0)

    def test_dict_roundtrip(self):
        spec = EvaluationSpec(n_reps=5, seed=9, dc_capacity=1e9)
        assert EvaluationSpec.from_dict(spec.to_dict()) == spec


class TestScheduleRequest:
    def test_roundtrip(self):
        req = make_request()
        assert ScheduleRequest.from_dict(req.to_dict()) == req

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ServiceError, match="unknown algorithm"):
            make_request(algorithm="quantum_annealing")

    def test_missing_fields_named(self):
        with pytest.raises(ServiceError, match="missing 'workflow'"):
            ScheduleRequest.from_dict({"algorithm": "heft", "budget": 1.0})
        with pytest.raises(ServiceError, match="missing 'budget'"):
            ScheduleRequest.from_dict(
                {"algorithm": "heft",
                 "workflow": {"family": "montage", "n_tasks": 5}}
            )

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            ScheduleRequest.from_dict([1, 2, 3])

    def test_fingerprint_identity(self):
        assert make_request().fingerprint() == make_request().fingerprint()

    def test_fingerprint_sensitivity(self):
        base = make_request()
        other = make_request(budget={"amount": 3.0})
        assert base.fingerprint() != other.fingerprint()

    def test_algorithm_case_insensitive(self):
        req = make_request(algorithm="HEFT_BUDG")
        assert req.to_dict()["algorithm"] == "heft_budg"


class TestParseRequests:
    def test_single_and_batch(self):
        payload = make_request().to_dict()
        assert len(parse_requests(payload)) == 1
        assert len(parse_requests([payload, payload])) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ServiceError, match="empty"):
            parse_requests([])


class TestScheduleResponse:
    def test_roundtrip(self):
        resp = ScheduleResponse(
            request_fingerprint="f" * 64, algorithm="heft_budg", budget=2.0,
            planned_makespan=10.0, planned_cost=1.5, within_budget_plan=True,
            n_vms=3, n_tasks=20, workflow_name="wf", schedule={"format": "x"},
        )
        assert ScheduleResponse.from_dict(resp.to_dict()) == resp
