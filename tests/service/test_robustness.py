"""Service hardening: backpressure, retries, containment, timeouts, drain."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    JobTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.obs.events import EventBus
from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(n_reps=0):
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": 2.0},
        "evaluation": {"n_reps": n_reps},
    }


class Gate:
    """Blocks worker threads until released; swap in for ``_compute``."""

    def __init__(self, service):
        self.release = threading.Event()
        self.entered = threading.Event()
        self._orig = service._compute

    def __call__(self, request):
        self.entered.set()
        if not self.release.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("gate never released")
        return self._orig(request)


class TestBackpressure:
    def test_submit_rejected_beyond_max_queue_depth(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0,
                               max_queue_depth=1) as svc:
            gate = Gate(svc)
            monkeypatch.setattr(svc, "_compute", gate)
            running = svc.submit(request_dict())
            assert gate.entered.wait(timeout=10)
            svc.submit(request_dict())  # 1 pending: at the bound
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                svc.submit(request_dict())
            assert svc.metrics.counter("jobs_rejected") == 1
            gate.release.set()
            svc.wait_all(timeout=60)
            assert svc.job(running).state == "done"

    def test_http_full_queue_is_429_with_retry_after(self, monkeypatch):
        svc = SchedulingService(max_workers=1, cache_size=0, max_queue_depth=1)
        gate = Gate(svc)
        monkeypatch.setattr(svc, "_compute", gate)
        gw = start_gateway(svc)
        try:
            def post():
                req = urllib.request.Request(
                    gw.url + "/v1/jobs",
                    data=json.dumps(request_dict()).encode(),
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(req, timeout=30)

            post()
            assert gate.entered.wait(timeout=10)
            post()
            with pytest.raises(urllib.error.HTTPError) as info:
                post()
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] is not None
            assert "queue is full" in json.load(info.value)["error"]
        finally:
            gate.release.set()
            gw.shutdown()
            svc.close()


class TestRetries:
    def test_transient_failure_retried_then_succeeds(self, monkeypatch):
        bus = EventBus()
        with SchedulingService(max_workers=1, cache_size=0, events=bus,
                               max_retries=2, retry_backoff_s=0.01) as svc:
            orig, calls = svc._compute, []

            def flaky(request):
                calls.append(1)
                if len(calls) < 3:
                    raise RuntimeError(f"transient #{len(calls)}")
                return orig(request)

            monkeypatch.setattr(svc, "_compute", flaky)
            job_id = svc.submit(request_dict())
            svc.result(job_id, timeout=60)
            record = svc.job(job_id)
            assert record.state == "done" and record.attempts == 3
            retried = bus.history(types=("job.retried",))
            assert [ev.data["attempt"] for ev in retried] == [1, 2]
            assert all("transient" in ev.data["error"] for ev in retried)
            assert svc.metrics.counter("jobs_retried") == 2

    def test_repro_errors_are_not_retried(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0,
                               max_retries=3, retry_backoff_s=0.01) as svc:
            calls = []

            def broken(request):
                calls.append(1)
                raise ServiceError("deterministic spec problem")

            monkeypatch.setattr(svc, "_compute", broken)
            job_id = svc.submit(request_dict())
            with pytest.raises(ServiceError, match="deterministic"):
                svc.result(job_id, timeout=60)
            assert len(calls) == 1
            assert svc.job(job_id).state == "failed"


class TestContainment:
    def test_worker_bomb_marks_failed_and_pool_survives(self, monkeypatch):
        bus = EventBus()
        with SchedulingService(max_workers=1, cache_size=0,
                               events=bus) as svc:
            def bomb(request):
                raise SystemExit("worker bomb")

            orig = svc._compute
            monkeypatch.setattr(svc, "_compute", bomb)
            job_id = svc.submit(request_dict())
            with pytest.raises(ServiceError, match="worker bomb"):
                svc.result(job_id, timeout=60)
            record = svc.job(job_id)
            assert record.state == "failed"
            assert "worker bomb" in record.error
            assert "SystemExit" in record.traceback
            kinds = [ev.type for ev in bus.history()
                     if ev.data.get("job_id") == job_id]
            assert kinds[-2:] == ["job.failed", "job.finished"]
            assert svc.metrics.counter("jobs_failed") == 1
            # the pool is still alive: a healthy job completes
            monkeypatch.setattr(svc, "_compute", orig)
            ok = svc.submit(request_dict())
            svc.result(ok, timeout=60)
            assert svc.job(ok).state == "done"
            svc.stats()  # terminal-state invariant holds


class TestSSEDelivery:
    """Failure-path events reach SSE clients, not just the in-process bus."""

    def read_sse(self, url, timeout=30):
        frames = []
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            event, data = None, None
            for raw in resp:
                line = raw.decode().rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    data = json.loads(line[len("data: "):])
                elif not line and event is not None:
                    frames.append((event, data))
                    event, data = None, None
        return frames

    def test_job_retried_and_failed_frames_on_stream(self, monkeypatch):
        svc = SchedulingService(max_workers=1, cache_size=0,
                                max_retries=1, retry_backoff_s=0.01)

        def doomed(request):
            raise RuntimeError("flaky backend")

        monkeypatch.setattr(svc, "_compute", doomed)
        gw = start_gateway(svc)
        try:
            req = urllib.request.Request(
                gw.url + "/v1/jobs",
                data=json.dumps(request_dict()).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                assert resp.status == 202
                (job_id,) = json.load(resp)["job_ids"]
            svc.wait_all(timeout=60)
            frames = self.read_sse(
                gw.url + f"/v1/jobs/{job_id}/events?timeout=10"
            )
            kinds = [event for event, _ in frames]
            assert "job.retried" in kinds
            assert "job.failed" in kinds
            assert kinds[-1] == "job.finished"
            failed = dict(frames)["job.failed"]
            assert "flaky backend" in failed["data"]["error"]
            assert dict(frames)["job.finished"]["data"]["state"] == "failed"
        finally:
            gw.shutdown()
            svc.close()


class TestTimeouts:
    def test_job_timeout_marks_timed_out(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0,
                               job_timeout=0.05) as svc:
            def slow(request):
                deadline = svc._job_context.deadline
                while time.monotonic() < deadline + 0.1:
                    svc._check_job_deadline()
                    time.sleep(0.005)
                return None  # pragma: no cover - deadline fires first

            monkeypatch.setattr(svc, "_compute", slow)
            job_id = svc.submit(request_dict())
            with pytest.raises(JobTimeoutError):
                svc.result(job_id, timeout=60)
            assert svc.job(job_id).state == "failed"
            assert svc.metrics.counter("jobs_timed_out") == 1


class TestCancelRace:
    def test_cancel_before_future_submission_wins(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            gate = Gate(svc)
            monkeypatch.setattr(svc, "_compute", gate)
            svc.submit(request_dict())
            assert gate.entered.wait(timeout=10)
            queued = svc.submit(request_dict())  # waits behind the gate
            assert svc.cancel(queued) is True
            gate.release.set()
            svc.wait_all(timeout=60)
            assert svc.job(queued).state == "cancelled"

    def test_wait_all_tolerates_cancelled_jobs(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            gate = Gate(svc)
            monkeypatch.setattr(svc, "_compute", gate)
            svc.submit(request_dict())
            assert gate.entered.wait(timeout=10)
            queued = svc.submit(request_dict())
            svc.cancel(queued)
            gate.release.set()
            svc.wait_all(timeout=60)  # must not raise CancelledError


class TestDrain:
    def test_close_drains_and_publishes_lifecycle(self):
        bus = EventBus()
        svc = SchedulingService(max_workers=2, cache_size=0, events=bus)
        ids = [svc.submit(request_dict()) for _ in range(3)]
        svc.close(wait=True)
        assert all(svc.job(j).state == "done" for j in ids)
        kinds = [ev.type for ev in bus.history()]
        assert "service.draining" in kinds and "service.closed" in kinds
        assert kinds.index("service.draining") < kinds.index("service.closed")
        with pytest.raises(ServiceClosedError):
            svc.submit(request_dict())
        with pytest.raises(ServiceClosedError):
            svc.schedule(request_dict())
        svc.close()  # idempotent

    def test_sigterm_triggers_graceful_drain(self, tmp_path):
        script = tmp_path / "serve_once.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import main\n"
            "print('ready', flush=True)\n"
            "sys.exit(main(['serve', '--port', '0', '--workers', '1',\n"
            "               '--cache-size', '0']))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-u", str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                line = proc.stdout.readline()
                # "endpoints:" prints right before serve_forever(); waiting
                # for it (plus a beat) keeps SIGTERM out of the startup gap.
                if "endpoints:" in line:
                    break
            else:  # pragma: no cover - startup hang guard
                pytest.fail("gateway never came up")
            time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup guard
                proc.kill()
        assert proc.returncode == 0
        assert "draining: waiting for in-flight jobs" in out
        assert "drained; bye" in out
