"""SSE endpoints: full job lifecycle over a live gateway, clean disconnect."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.events import EventBus
from repro.obs.ledger import RunLedger
from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(n_reps=2, amount=2.0):
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps},
    }


@pytest.fixture(scope="module")
def gateway():
    bus = EventBus()
    ledger = RunLedger(bus=bus)
    service = SchedulingService(
        max_workers=2, cache_size=0, ledger=ledger, events=bus
    )
    gw = start_gateway(service)
    yield gw
    gw.shutdown()
    service.close()
    ledger.close()


def call(gateway, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        gateway.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def read_sse(gateway, path, timeout=30):
    """Consume an SSE stream to EOF; returns (content_type, frames).

    Frames are (event, payload_dict) pairs; comment lines (keep-alives)
    are returned separately as strings.
    """
    req = urllib.request.Request(gateway.url + path)
    frames, comments = [], []
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        content_type = resp.headers.get("Content-Type", "")
        event, data = None, None
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if line.startswith(":"):
                comments.append(line)
            elif line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
            elif not line and event is not None:
                frames.append((event, data))
                event, data = None, None
    return content_type, frames, comments


def submit_and_wait(gateway, payload):
    status, body = call(gateway, "POST", "/v1/jobs", payload)
    assert status == 202
    (job_id,) = body["job_ids"]
    gateway.service.wait_all(timeout=60)
    status, body = call(gateway, "GET", f"/v1/jobs/{job_id}")
    assert status == 200 and body["state"] == "done"
    return job_id


class TestJobEventStream:
    def test_full_lifecycle_frames(self, gateway):
        job_id = submit_and_wait(gateway, request_dict())
        content_type, frames, _ = read_sse(
            gateway, f"/v1/jobs/{job_id}/events?timeout=10"
        )
        assert content_type.startswith("text/event-stream")
        kinds = [event for event, _ in frames]
        # replayed from history: queued -> started -> ... -> finished
        assert kinds[0] == "job.queued"
        assert "job.started" in kinds
        assert "job.progress" in kinds
        assert "run.recorded" in kinds
        assert kinds[-1] == "job.finished"
        assert kinds.index("job.queued") < kinds.index("job.started")
        assert kinds.index("job.started") < kinds.index("job.finished")
        finished = dict(frames)["job.finished"]
        assert finished["data"]["state"] == "done"
        # seq strictly increases: replay and live merged without dupes
        seqs = [payload["seq"] for _, payload in frames]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_stream_closes_connection_cleanly(self, gateway):
        # the job stream ends at job.finished; the server must close the
        # connection (SSE over HTTP/1.0-style framing, no Content-Length)
        job_id = submit_and_wait(gateway, request_dict())
        req = urllib.request.Request(
            gateway.url + f"/v1/jobs/{job_id}/events?timeout=10"
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers.get("Connection", "").lower() == "close"
            body = resp.read()  # EOF arrives without hanging
        assert b"job.finished" in body

    def test_unknown_job_is_404(self, gateway):
        status, body = call(gateway, "GET", "/v1/jobs/nope/events")
        assert status == 404
        assert "error" in body

    def test_bad_timeout_is_400(self, gateway):
        job_id = submit_and_wait(gateway, request_dict())
        status, body = call(
            gateway, "GET", f"/v1/jobs/{job_id}/events?timeout=banana"
        )
        assert status == 400


class TestBusEventStream:
    def test_replay_and_keepalive(self, gateway):
        submit_and_wait(gateway, request_dict())
        _, frames, comments = read_sse(
            gateway, "/v1/events?timeout=1&replay=5"
        )
        assert len(frames) <= 5 and frames  # bounded replay
        assert any(c.startswith(": timeout") for c in comments)

    def test_type_filter(self, gateway):
        submit_and_wait(gateway, request_dict())
        _, frames, _ = read_sse(
            gateway, "/v1/events?timeout=1&types=run.recorded&replay=50"
        )
        assert frames
        assert all(event == "run.recorded" for event, _ in frames)


class TestRunsEndpoint:
    def test_runs_archived_with_job_trace_id(self, gateway):
        job_id = submit_and_wait(gateway, request_dict(amount=3.0))
        status, body = call(gateway, "GET", "/v1/runs?limit=5")
        assert status == 200
        assert body["enabled"] is True
        assert body["runs"]
        newest = body["runs"][0]
        assert newest["trace_id"] == job_id
        assert newest["source"] == "service"
        assert newest["algorithm"] == "heft_budg"
        status, one = call(gateway, "GET", f"/v1/runs/{newest['run_id']}")
        assert status == 200 and one["run_id"] == newest["run_id"]

    def test_unknown_run_is_404(self, gateway):
        status, _ = call(gateway, "GET", "/v1/runs/99999")
        assert status == 404

    def test_filter_by_algorithm(self, gateway):
        submit_and_wait(gateway, request_dict())
        status, body = call(gateway, "GET", "/v1/runs?algorithm=bdt")
        assert status == 200
        assert body["runs"] == []
