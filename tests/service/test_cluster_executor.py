"""Cluster-executor mode: the service computes on remote worker nodes.

``SchedulingService(executor="cluster", nodes=...)`` ships compute to a
:class:`repro.cluster.ClusterPool` while queueing, backpressure, retries,
timeouts, caching, and drain stay in the parent — the same split as the
process executor, across machines. These tests use in-process
:class:`ClusterWorker` nodes on the loopback so the wire is real but the
fixture is cheap.
"""

import json
import urllib.request

import pytest

from repro.cluster.worker import ClusterWorker
from repro.errors import ServiceError
from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(n_reps=0, rng=1):
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": rng,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": 2.0},
        "evaluation": {"n_reps": n_reps},
    }


@pytest.fixture()
def nodes():
    with ClusterWorker(port=0, slots=1, heartbeat_s=0.2) as a, ClusterWorker(
        port=0, slots=1, heartbeat_s=0.2
    ) as b:
        yield ",".join(f"{w.address[0]}:{w.address[1]}" for w in (a, b))


class TestClusterMode:
    def test_response_matches_thread_executor(self, nodes):
        with SchedulingService(max_workers=1, cache_size=0) as threaded:
            expect = threaded.schedule(request_dict(n_reps=3)).to_dict()
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="cluster", nodes=nodes) as svc:
            got = svc.schedule(request_dict(n_reps=3)).to_dict()
        for out in (expect, got):
            out.pop("elapsed_s")
            out.pop("stages", None)
        assert got == expect

    def test_nodes_required(self):
        with pytest.raises(ServiceError, match="nodes"):
            SchedulingService(executor="cluster")

    def test_stats_expose_cluster_nodes(self, nodes):
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="cluster", nodes=nodes) as svc:
            svc.schedule(request_dict())
            stats = svc.stats()
            assert stats["executor"] == "cluster"
            assert stats["cluster_nodes"] == 2
            assert len(stats["workers"]) == 2
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            assert svc.stats()["cluster_nodes"] is None


class TestHealth:
    """Satellite: /v1/healthz reports the backend and live node count."""

    def test_health_reports_executor_and_node_count(self, nodes):
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="cluster", nodes=nodes) as svc:
            health = svc.health()
            assert health["ready"] is True
            assert health["executor"] == "cluster"
            assert health["worker_count"] == 2

    def test_health_on_thread_and_process_executors(self):
        with SchedulingService(max_workers=3, cache_size=0) as svc:
            health = svc.health()
            assert health["executor"] == "thread"
            assert health["worker_count"] == 3
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="process") as svc:
            health = svc.health()
            assert health["executor"] == "process"
            assert health["worker_count"] >= 1

    def test_healthz_endpoint_carries_new_fields(self, nodes):
        svc = SchedulingService(max_workers=1, cache_size=0,
                                executor="cluster", nodes=nodes)
        gw = start_gateway(svc)
        try:
            with urllib.request.urlopen(
                gw.url + "/v1/healthz", timeout=30
            ) as resp:
                body = json.load(resp)
            assert body["executor"] == "cluster"
            assert body["worker_count"] == 2
            with urllib.request.urlopen(
                gw.url + "/v1/metrics?format=prometheus", timeout=30
            ) as resp:
                text = resp.read().decode()
            assert "repro_cluster_nodes 2" in text
        finally:
            gw.shutdown()
            svc.close()

    def test_lost_node_degrades_but_stays_ready(self):
        a = ClusterWorker(port=0, slots=1, heartbeat_s=0.2)
        b = ClusterWorker(port=0, slots=1, heartbeat_s=0.2)
        a.start()
        b.start()
        nodes = ",".join(f"{w.address[0]}:{w.address[1]}" for w in (a, b))
        svc = SchedulingService(max_workers=1, cache_size=0,
                                executor="cluster", nodes=nodes)
        try:
            b.close()
            # a request forces the pool to notice the dead node
            svc.schedule(request_dict(n_reps=2))
            health = svc.health()
            assert health["worker_count"] == 1
            assert health["ready"] is True
        finally:
            svc.close()
            a.close()
            b.close()
