"""Process-executor mode: same robustness contract as the thread pool.

``SchedulingService(executor="process")`` ships compute to a
:class:`repro.parallel.WorkerPool` while queueing, backpressure, retries,
timeouts, caching, and drain all stay in the parent — so the PR 4
robustness guarantees must hold unchanged. Each test here mirrors one from
``test_robustness.py`` with the process executor switched on.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import JobTimeoutError, ServiceOverloadedError
from repro.obs.events import EventBus
from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(n_reps=0, rng=1):
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": rng,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": 2.0},
        "evaluation": {"n_reps": n_reps},
    }


class Gate:
    """Blocks worker threads until released; swap in for ``_compute``."""

    def __init__(self, service):
        self.release = threading.Event()
        self.entered = threading.Event()
        self._orig = service._compute

    def __call__(self, request):
        self.entered.set()
        if not self.release.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("gate never released")
        return self._orig(request)


class TestProcessMode:
    def test_response_matches_thread_executor(self):
        with SchedulingService(max_workers=1, cache_size=0) as threaded:
            expect = threaded.schedule(request_dict(n_reps=3)).to_dict()
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="process") as svc:
            got = svc.schedule(request_dict(n_reps=3)).to_dict()
        # elapsed_s and stages are wall-clock telemetry, not results.
        for out in (expect, got):
            out.pop("elapsed_s")
            out.pop("stages", None)
        assert got == expect

    def test_stats_expose_executor_and_worker_heartbeats(self):
        with SchedulingService(max_workers=1, cache_size=0,
                               executor="process") as svc:
            svc.schedule(request_dict())
            stats = svc.stats()
            assert stats["executor"] == "process"
            assert stats["workers"]  # at least the warmup task per worker
        with SchedulingService(max_workers=1, cache_size=0) as svc:
            assert svc.stats()["executor"] == "thread"
            assert svc.stats()["workers"] is None

    def test_unknown_executor_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown executor"):
            SchedulingService(executor="fiber")


class TestBackpressure:
    def test_submit_rejected_beyond_max_queue_depth(self, monkeypatch):
        with SchedulingService(max_workers=1, cache_size=0,
                               max_queue_depth=1,
                               executor="process") as svc:
            gate = Gate(svc)
            monkeypatch.setattr(svc, "_compute", gate)
            running = svc.submit(request_dict())
            assert gate.entered.wait(timeout=10)
            svc.submit(request_dict())  # 1 pending: at the bound
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                svc.submit(request_dict())
            assert svc.metrics.counter("jobs_rejected") == 1
            gate.release.set()
            svc.wait_all(timeout=60)
            assert svc.job(running).state == "done"


class TestRetries:
    def test_transient_failure_retried_then_succeeds(self, monkeypatch):
        bus = EventBus()
        with SchedulingService(max_workers=1, cache_size=0, events=bus,
                               max_retries=2, retry_backoff_s=0.01,
                               executor="process") as svc:
            orig, calls = svc._compute, []

            def flaky(request):
                calls.append(1)
                if len(calls) < 3:
                    raise RuntimeError(f"transient #{len(calls)}")
                return orig(request)  # final attempt runs in the pool

            monkeypatch.setattr(svc, "_compute", flaky)
            job_id = svc.submit(request_dict())
            svc.result(job_id, timeout=60)
            record = svc.job(job_id)
            assert record.state == "done" and record.attempts == 3
            retried = bus.history(types=("job.retried",))
            assert [ev.data["attempt"] for ev in retried] == [1, 2]
            assert svc.metrics.counter("jobs_retried") == 2


class TestTimeouts:
    def test_deadline_supervised_from_parent(self):
        # A 1 ms budget expires before even a warm worker returns: the
        # parent's pool-level timeout must convert to JobTimeoutError
        # without trusting the child to watch the clock.
        with SchedulingService(max_workers=1, cache_size=0,
                               job_timeout=0.001,
                               executor="process") as svc:
            job_id = svc.submit(request_dict(n_reps=5))
            with pytest.raises(JobTimeoutError, match="process executor"):
                svc.result(job_id, timeout=60)
            assert svc.job(job_id).state == "failed"
            assert svc.metrics.counter("jobs_timed_out") == 1


class TestDrain:
    def test_close_drains_inflight_jobs(self):
        bus = EventBus()
        svc = SchedulingService(max_workers=2, cache_size=0, events=bus,
                                executor="process")
        ids = [svc.submit(request_dict(rng=i)) for i in range(3)]
        svc.close(wait=True)
        assert all(svc.job(j).state == "done" for j in ids)
        kinds = [ev.type for ev in bus.history()]
        assert "service.draining" in kinds and "service.closed" in kinds

    def test_sigterm_triggers_graceful_drain(self, tmp_path):
        script = tmp_path / "serve_once.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import main\n"
            "print('ready', flush=True)\n"
            "sys.exit(main(['serve', '--port', '0', '--workers', '1',\n"
            "               '--cache-size', '0', '--executor', 'process']))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-u", str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                line = proc.stdout.readline()
                if "endpoints:" in line:
                    break
            else:  # pragma: no cover - startup hang guard
                pytest.fail("gateway never came up")
            time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup guard
                proc.kill()
        assert proc.returncode == 0
        assert "draining: waiting for in-flight jobs" in out
        assert "drained; bye" in out


class TestHTTP:
    def test_gateway_serves_process_backed_jobs(self):
        svc = SchedulingService(max_workers=1, cache_size=0,
                                executor="process")
        gw = start_gateway(svc)
        try:
            req = urllib.request.Request(
                gw.url + "/v1/schedule",
                data=json.dumps(request_dict(n_reps=2)).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                body = json.load(resp)
            assert body["planned_makespan"] > 0
            assert body["evaluation"]["n_reps"] == 2
            assert len(body["evaluation"]["reps"]) == 2
        finally:
            gw.shutdown()
            svc.close()
