"""Readiness endpoint and queue/in-flight gauges on the metrics scrape."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import SchedulingService
from repro.service.http import start_gateway


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestHealthSnapshot:
    def test_ready_service_reports_depth_and_ledger(self):
        svc = SchedulingService()
        try:
            health = svc.health()
        finally:
            svc.close()
        assert health["ready"] is True
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["inflight_jobs"] == 0
        assert health["ledger"] == {"enabled": False, "writable": True}

    def test_draining_service_is_not_ready(self):
        svc = SchedulingService()
        svc.close()
        health = svc.health()
        assert health["ready"] is False
        assert health["status"] == "draining"
        assert health["draining"] is True


class TestHealthzEndpoint:
    @pytest.fixture()
    def service(self):
        svc = SchedulingService(max_workers=2)
        yield svc
        svc.close()

    def test_healthz_is_200_when_ready(self, service):
        gw = start_gateway(service)
        try:
            status, body = fetch(gw.url + "/v1/healthz")
        finally:
            gw.shutdown()
        payload = json.loads(body)
        assert status == 200
        assert payload["ready"] is True
        assert "queue_depth" in payload
        assert "worker_heartbeat_age_s" in payload

    def test_healthz_is_503_while_draining(self, service):
        gw = start_gateway(service)
        try:
            service.close()
            status, body = fetch(gw.url + "/v1/healthz")
        finally:
            gw.shutdown()
        payload = json.loads(body)
        assert status == 503
        assert payload["ready"] is False
        assert payload["status"] == "draining"


class TestScrapeGauges:
    def test_queue_and_inflight_gauges_present_on_every_scrape(self):
        svc = SchedulingService(max_workers=2)
        gw = start_gateway(svc)
        try:
            status, text = fetch(gw.url + "/v1/metrics?format=prometheus")
        finally:
            gw.shutdown()
            svc.close()
        assert status == 200
        lines = text.splitlines()
        assert any(l.startswith("repro_queue_depth_total ") for l in lines)
        assert any(l.startswith("repro_inflight_jobs ") for l in lines)
        assert any(
            l.startswith("repro_queue_oldest_wait_seconds ") for l in lines
        )

    def test_priority_class_labels_render_as_one_family(self):
        from repro.obs.prometheus import render_prometheus

        text = render_prometheus(
            {"counters": {}, "series": {}},
            gauges={
                'queue_depth{class="batch"}': 3,
                'queue_depth{class="interactive"}': 1,
            },
        )
        lines = text.splitlines()
        assert 'repro_queue_depth{class="batch"} 3' in lines
        assert 'repro_queue_depth{class="interactive"} 1' in lines
        # One HELP/TYPE header per family, not per labeled sample.
        assert sum(
            1 for l in lines if l.startswith("# TYPE repro_queue_depth ")
        ) == 1
