"""HTTP gateway: routing, status codes, end-to-end scheduling over JSON."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import SchedulingService
from repro.service.http import start_gateway


def request_dict(amount=2.0, n_reps=0):
    return {
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps},
    }


@pytest.fixture(scope="module")
def gateway():
    service = SchedulingService(max_workers=2, cache_size=32)
    gw = start_gateway(service)
    yield gw
    gw.shutdown()
    service.close()


def call(gateway, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        gateway.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestInfoEndpoints:
    def test_healthz(self, gateway):
        status, body = call(gateway, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0.0

    def test_schedulers(self, gateway):
        status, body = call(gateway, "GET", "/v1/schedulers")
        assert status == 200
        assert "heft_budg" in body["schedulers"]

    def test_metrics(self, gateway):
        status, body = call(gateway, "GET", "/v1/metrics")
        assert status == 200
        assert "jobs" in body and "cache" in body


class TestScheduleEndpoint:
    def test_sync_schedule(self, gateway):
        status, body = call(gateway, "POST", "/v1/schedule",
                            request_dict(n_reps=3))
        assert status == 200
        assert body["algorithm"] == "heft_budg"
        assert body["schedule"]["format"] == "repro.schedule/1"
        assert body["evaluation"]["n_reps"] == 3

    def test_validation_error_is_400(self, gateway):
        bad = request_dict()
        bad["algorithm"] = "nope"
        status, body = call(gateway, "POST", "/v1/schedule", bad)
        assert status == 400
        assert "unknown algorithm" in body["error"]

    def test_batch_on_sync_endpoint_rejected(self, gateway):
        status, body = call(gateway, "POST", "/v1/schedule",
                            [request_dict(), request_dict()])
        assert status == 400
        assert "exactly one" in body["error"]

    def test_malformed_json_is_400(self, gateway):
        req = urllib.request.Request(
            gateway.url + "/v1/schedule", data=b"{nope", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 400

    def test_empty_body_is_400(self, gateway):
        status, body = call(gateway, "POST", "/v1/schedule", None)
        assert status == 400
        assert "empty" in body["error"]


class TestJobEndpoints:
    def test_async_job_lifecycle(self, gateway):
        status, body = call(gateway, "POST", "/v1/jobs", request_dict(amount=4.0))
        assert status == 202
        (job_id,) = body["job_ids"]
        gateway.service.wait_all(timeout=60)
        status, body = call(gateway, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        assert body["state"] == "done"
        assert body["response"]["algorithm"] == "heft_budg"

    def test_batch_submit(self, gateway):
        payload = [request_dict(amount=5.0), request_dict(amount=6.0)]
        status, body = call(gateway, "POST", "/v1/jobs", payload)
        assert status == 202
        assert len(body["job_ids"]) == 2

    def test_jobs_listing(self, gateway):
        call(gateway, "POST", "/v1/jobs", request_dict(amount=7.0))
        gateway.service.wait_all(timeout=60)
        status, body = call(gateway, "GET", "/v1/jobs")
        assert status == 200
        assert any(j["state"] == "done" for j in body["jobs"])
        status, body = call(gateway, "GET", "/v1/jobs?state=failed")
        assert status == 200 and body["jobs"] == []

    def test_unknown_job_is_404(self, gateway):
        status, body = call(gateway, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert "no such job" in body["error"]

    def test_delete_cancels_or_reports(self, gateway):
        _, body = call(gateway, "POST", "/v1/jobs", request_dict(amount=8.0))
        (job_id,) = body["job_ids"]
        status, body = call(gateway, "DELETE", f"/v1/jobs/{job_id}")
        assert status == 200
        assert body["job_id"] == job_id
        assert isinstance(body["cancelled"], bool)
        gateway.service.wait_all(timeout=60)


class TestObservability:
    def test_prometheus_format(self, gateway):
        # Warm at least one latency sample so the summary family renders.
        call(gateway, "POST", "/v1/schedule", request_dict())
        req = urllib.request.Request(gateway.url + "/v1/metrics?format=prometheus")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        lines = text.splitlines()
        assert any(l.startswith("# TYPE repro_") for l in lines)
        assert any("repro_uptime_seconds" in l for l in lines)
        assert any("repro_schedule_latency_s_count" in l for l in lines)
        # Every sample line is "name{labels} value" with a float value.
        for line in lines:
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_json_stays_default(self, gateway):
        status, body = call(gateway, "GET", "/v1/metrics?format=json")
        assert status == 200
        assert "cache" in body

    def test_unknown_format_is_400(self, gateway):
        status, body = call(gateway, "GET", "/v1/metrics?format=xml")
        assert status == 400
        assert "unknown metrics format" in body["error"]

    def test_trace_id_header_on_every_response(self, gateway):
        req = urllib.request.Request(gateway.url + "/v1/healthz")
        with urllib.request.urlopen(req, timeout=30) as resp:
            trace_id = resp.headers["X-Trace-Id"]
        assert trace_id and len(trace_id) == 16
        # Errors carry one too, echoed in the body for correlation.
        status, body = call(gateway, "GET", "/v1/jobs?state=zombie")
        assert status == 400 and body["trace_id"]


class TestRouting:
    def test_unknown_route_is_404(self, gateway):
        status, body = call(gateway, "GET", "/v2/healthz")
        assert status == 404
        status, body = call(gateway, "GET", "/v1/teleport")
        assert status == 404

    def test_bad_state_filter_is_400(self, gateway):
        status, body = call(gateway, "GET", "/v1/jobs?state=zombie")
        assert status == 400
