"""LRU + TTL cache semantics."""

import threading
import time

import pytest

from repro.service.cache import LRUCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBasics:
    def test_get_put(self):
        cache = LRUCache(4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert len(cache) == 1

    def test_default_on_miss(self):
        cache = LRUCache(4)
        assert cache.get("absent", "fallback") == "fallback"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(4, ttl=0.0)


class TestEviction:
    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-store refreshes
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_eviction_counted(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats().evictions == 1


class TestTTL:
    def test_entry_expires(self):
        clock = FakeClock()
        cache = LRUCache(4, ttl=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(9.0)
        assert cache.get("k") == 1
        clock.advance(2.0)
        assert cache.get("k") is None
        assert cache.stats().expirations == 1

    def test_no_ttl_means_forever(self):
        clock = FakeClock()
        cache = LRUCache(4, clock=clock)
        cache.put("k", 1)
        clock.advance(1e9)
        assert cache.get("k") == 1


class TestStats:
    def test_hit_rate(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_peek_does_not_count(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.get("k", touch=False) == 1
        assert cache.stats().lookups == 0

    def test_stats_dict(self):
        assert LRUCache(4).stats().to_dict()["hit_rate"] == 0.0


class TestGetOrCompute:
    def test_computes_once(self):
        cache = LRUCache(4)
        calls = []
        value, was_cached = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert (value, was_cached) == ("v", False)
        value, was_cached = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert (value, was_cached) == ("v", True)
        assert len(calls) == 1

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0


class TestThreadSafety:
    def test_concurrent_put_get(self):
        cache = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    cache.put((base, i % 32), i)
                    cache.get((base, (i + 1) % 32))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestSingleFlight:
    def test_concurrent_misses_coalesce_into_one_compute(self):
        cache = LRUCache(4)
        n_threads = 6
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            entered.set()
            release.wait(timeout=30)
            return "value"

        results = []

        def worker():
            results.append(cache.get_or_compute("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        threads[0].start()
        assert entered.wait(timeout=10)  # leader is inside compute()
        for t in threads[1:]:
            t.start()
        time.sleep(0.1)  # let followers park on the in-flight event
        release.set()
        for t in threads:
            t.join(timeout=30)
        assert len(calls) == 1
        assert [v for v, _ in results] == ["value"] * n_threads
        assert sum(1 for _, was_cached in results if not was_cached) == 1
        stats = cache.stats()
        assert stats.misses == 1
        # every follower that parked counts as both a hit and a coalesce;
        # any straggler thread that started after put() is a plain hit
        assert stats.hits == n_threads - 1
        assert 0 <= stats.coalesced <= n_threads - 1
        assert stats.hits + stats.misses == n_threads

    def test_leader_failure_releases_followers_to_retry(self):
        cache = LRUCache(4)
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            if len(calls) == 1:
                entered.set()
                release.wait(timeout=30)
                raise RuntimeError("leader blew up")
            return "second try"

        outcomes = []

        def worker():
            try:
                outcomes.append(cache.get_or_compute("k", compute))
            except RuntimeError as exc:
                outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads[0].start()
        assert entered.wait(timeout=10)
        for t in threads[1:]:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=30)
        # exactly one caller saw the error (the leader); the followers
        # retried, one of them became the new leader and computed
        errors = [o for o in outcomes if isinstance(o, RuntimeError)]
        values = [o for o in outcomes if not isinstance(o, RuntimeError)]
        assert len(errors) == 1 and "blew up" in str(errors[0])
        assert all(v == "second try" for v, _ in values)
        assert len(calls) == 2

    def test_coalesced_survives_in_stats_dict(self):
        stats = LRUCache(4).stats()
        assert stats.coalesced == 0
        assert "coalesced" in stats.to_dict()
