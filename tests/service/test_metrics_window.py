"""Window-scoped snapshot fields: atomic reset under concurrent observers."""

import threading

import pytest

from repro.service.metrics import MetricsRegistry


class TestResetWindows:
    def test_reset_drains_window_but_keeps_lifetime(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.3):
            reg.observe("lat", v)
        first = reg.snapshot(reset_windows=True)["series"]["lat"]
        assert first["window_count"] == 3
        assert first["window_p50"] == pytest.approx(0.2)
        assert first["count"] == 3  # lifetime untouched

        second = reg.snapshot()["series"]["lat"]
        assert second["window_count"] == 0
        assert "window_p50" not in second  # empty window: no quantiles
        assert second["count"] == 3
        assert second["sum"] == pytest.approx(0.6)
        assert second["buckets"]["+Inf"] == 3

    def test_default_snapshot_does_not_reset(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.0)
        reg.snapshot()
        assert reg.snapshot()["series"]["lat"]["window_count"] == 1

    def test_samples_after_reset_land_in_next_window(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.0)
        reg.snapshot(reset_windows=True)
        reg.observe("lat", 2.0)
        summary = reg.snapshot()["series"]["lat"]
        assert summary["window_count"] == 1
        assert summary["window_p50"] == pytest.approx(2.0)

    def test_every_sample_lands_in_exactly_one_window(self):
        """Concurrent observers vs resetting scrapers: no loss, no double.

        Each scrape computes its summary and clears the window under the
        same lock ``observe`` takes, so summing ``window_count`` over all
        scrapes plus the final drain must equal the number of samples —
        a sample counted twice or dropped breaks the equality. Total
        samples stay under the window's maxlen (1024) so the bounded
        deque can never evict unsampled entries between scrapes.
        """
        reg = MetricsRegistry()
        n_threads, per_thread = 4, 250
        scraped = []
        done = threading.Event()

        def observer():
            for i in range(per_thread):
                reg.observe("lat", 0.001 * (i + 1))

        def scraper():
            while not done.is_set():
                snap = reg.snapshot(reset_windows=True)
                series = snap["series"].get("lat")
                if series:
                    scraped.append(series["window_count"])

        threads = [threading.Thread(target=observer)
                   for _ in range(n_threads)]
        scrape = threading.Thread(target=scraper)
        scrape.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done.set()
        scrape.join()

        final = reg.snapshot(reset_windows=True)["series"]["lat"]
        total_windowed = sum(scraped) + final["window_count"]
        assert total_windowed == n_threads * per_thread
        assert final["count"] == n_threads * per_thread

    def test_window_quantiles_reflect_only_current_window(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("lat", 100.0)
        reg.snapshot(reset_windows=True)
        reg.observe("lat", 1.0)
        summary = reg.snapshot()["series"]["lat"]
        # old 100s are gone from the window (still in lifetime min/max)
        assert summary["window_p99"] == pytest.approx(1.0)
        assert summary["max"] == 100.0
