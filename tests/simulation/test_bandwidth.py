"""Unit tests for the fluid-flow bandwidth pool."""

import math

import pytest

from repro.errors import SimulationError
from repro.simulation.bandwidth import FlowPool


class TestInfiniteCapacity:
    def test_single_flow_at_cap(self):
        pool = FlowPool()
        pool.start("f", 1000.0, cap=100.0)
        assert pool.next_completion() == pytest.approx(10.0)
        done = pool.advance(10.0)
        assert done == [("f", None)]
        assert not pool

    def test_flows_do_not_interfere(self):
        pool = FlowPool()
        pool.start("a", 1000.0, cap=100.0)
        pool.start("b", 500.0, cap=100.0)
        assert pool.next_completion() == pytest.approx(5.0)
        done = pool.advance(5.0)
        assert [f for f, _ in done] == ["b"]
        assert pool.next_completion() == pytest.approx(10.0)

    def test_partial_advance(self):
        pool = FlowPool()
        pool.start("a", 1000.0, cap=100.0)
        assert pool.advance(4.0) == []
        assert pool.next_completion() == pytest.approx(10.0)

    def test_zero_byte_flow_completes_immediately(self):
        pool = FlowPool()
        pool.advance(3.0)
        pool.start("z", 0.0, cap=100.0)
        assert pool.next_completion() == 3.0
        assert pool.advance(3.0) == [("z", None)]

    def test_payload_returned(self):
        pool = FlowPool()
        pool.start("f", 10.0, cap=10.0, payload=("task", "x"))
        assert pool.advance(1.0) == [("f", ("task", "x"))]

    def test_tiny_residual_completes(self):
        """Regression: a residual whose finish-dt underflows the float clock
        must complete instead of stalling the simulation forever."""
        pool = FlowPool()
        pool.advance(568.0)
        pool.start("f", 5e-6, cap=1.25e8)  # finishes 4e-14s later
        t = pool.next_completion()
        done = pool.advance(t)
        assert [f for f, _ in done] == ["f"]


class TestFiniteCapacity:
    def test_two_flows_share_capacity(self):
        pool = FlowPool(capacity=100.0)
        pool.start("a", 1000.0, cap=100.0)
        pool.start("b", 1000.0, cap=100.0)
        # each gets 50 -> both complete at t=20
        assert pool.next_completion() == pytest.approx(20.0)

    def test_water_filling_respects_caps(self):
        pool = FlowPool(capacity=100.0)
        pool.start("small", 100.0, cap=10.0)   # capped at 10
        pool.start("large", 1000.0, cap=100.0)  # gets the remaining 90
        assert pool.next_completion() == pytest.approx(10.0)  # small: 100/10
        pool.advance(10.0)
        # large transferred 900 in 10s, 100 left at rate 100
        assert pool.next_completion() == pytest.approx(11.0)

    def test_rates_rebalance_after_completion(self):
        pool = FlowPool(capacity=100.0)
        pool.start("a", 500.0, cap=100.0)
        pool.start("b", 1000.0, cap=100.0)
        pool.advance(10.0)  # a done (50/s each)
        # b has 500 left, now alone at full 100/s
        assert pool.next_completion() == pytest.approx(15.0)

    def test_aggregate_throughput_bounded(self):
        pool = FlowPool(capacity=100.0)
        for i in range(10):
            pool.start(f"f{i}", 100.0, cap=100.0)
        # 1000 bytes total at aggregate 100/s -> exactly 10s
        assert pool.next_completion() == pytest.approx(10.0)


class TestErrors:
    def test_duplicate_flow_id(self):
        pool = FlowPool()
        pool.start("f", 10.0, cap=1.0)
        with pytest.raises(SimulationError):
            pool.start("f", 10.0, cap=1.0)

    def test_negative_bytes(self):
        with pytest.raises(SimulationError):
            FlowPool().start("f", -1.0, cap=1.0)

    def test_nonpositive_cap(self):
        with pytest.raises(SimulationError):
            FlowPool().start("f", 1.0, cap=0.0)

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            FlowPool(capacity=0.0)

    def test_time_backwards(self):
        pool = FlowPool()
        pool.advance(5.0)
        with pytest.raises(SimulationError):
            pool.advance(4.0)

    def test_empty_pool_idle(self):
        pool = FlowPool()
        assert pool.next_completion() == math.inf
        assert pool.advance(100.0) == []
