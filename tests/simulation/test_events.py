"""Unit tests for the event queue."""

import pytest

from repro.simulation.events import EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop()[1] for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_within_timestamp(self):
        q = EventQueue()
        for i in range(10):
            q.push(1.0, "k", i)
        assert [q.pop()[2] for _ in range(10)] == list(range(10))

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == float("inf")
        q.push(2.5, "x")
        assert q.peek_time() == 2.5
        assert len(q) == 1  # peek does not pop

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "x")
        assert q and len(q) == 1

    def test_payload_roundtrip(self):
        q = EventQueue()
        payload = {"vm": 3}
        q.push(1.0, "boot", payload)
        t, kind, got = q.pop()
        assert (t, kind) == (1.0, "boot")
        assert got is payload

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_invalid_times_rejected(self, bad):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(bad, "x")

    def test_zero_time_allowed(self):
        q = EventQueue()
        q.push(0.0, "start")
        assert q.pop()[0] == 0.0
