"""Tests for the VM usage analysis."""

import pytest

from repro import PAPER_PLATFORM, Schedule, evaluate_schedule, generate, make_scheduler
from repro.simulation import execute_schedule, mean_weights
from repro.simulation.usage import analyze_usage


@pytest.fixture
def run(chain, simple_platform):
    sched = Schedule(
        order=["A", "B", "C"],
        assignment={"A": 0, "B": 1, "C": 0},
        categories={0: simple_platform.cheapest, 1: simple_platform.cheapest},
    )
    return execute_schedule(chain, simple_platform, sched, mean_weights(chain))


class TestAnalyzeUsage:
    def test_hand_computed_breakdown(self, run):
        # vm0 window 0..420: A computes 0-100, idle 100-315, C dl 315-320,
        # C computes 320-420 -> compute 200, download 5, idle 215
        report = analyze_usage(run)
        vm0 = next(u for u in report.vms if u.vm_id == 0)
        assert vm0.window == pytest.approx(420.0)
        assert vm0.compute == pytest.approx(200.0)
        assert vm0.download == pytest.approx(5.0)
        assert vm0.idle == pytest.approx(215.0)
        assert vm0.n_tasks == 2

    def test_components_sum_to_window(self, run):
        for u in analyze_usage(run).vms:
            assert u.compute + u.download + u.idle == pytest.approx(
                u.window, abs=1e-6
            )

    def test_utilization_bounds(self, run):
        report = analyze_usage(run)
        for u in report.vms:
            assert 0.0 <= u.utilization <= 1.0
        assert 0.0 <= report.mean_utilization <= 1.0

    def test_least_utilized_ordering(self, run):
        worst = analyze_usage(run).least_utilized(2)
        assert worst[0].utilization <= worst[1].utilization

    def test_on_real_workflow(self):
        wf = generate("montage", 20, rng=3, sigma_ratio=0.5)
        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 0.5
        ).schedule
        report = analyze_usage(evaluate_schedule(wf, PAPER_PLATFORM, sched))
        assert len(report.vms) == sched.n_vms
        assert report.total_compute > 0
        assert report.mean_utilization > 0.1

    def test_sequential_schedule_high_utilization(self):
        """A single-VM chain has almost no idle time."""
        wf = generate("epigenomics", 20, rng=3, sigma_ratio=0.0)
        sched = Schedule(
            order=wf.topological_order,
            assignment={t: 0 for t in wf.tasks},
            categories={0: PAPER_PLATFORM.cheapest},
        )
        report = analyze_usage(evaluate_schedule(wf, PAPER_PLATFORM, sched))
        assert report.mean_utilization > 0.95
