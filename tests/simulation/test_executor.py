"""Executor tests with hand-computed timelines (simple_platform numbers).

simple_platform: small VM = 1 Gflop/s at $0.001/s, big = 2 Gflop/s at
$0.002/s, bandwidth 100 MB/s, no boot, no setup fee, no datacenter charges.
"""

import math

import pytest

from repro import Schedule, ScheduleValidationError
from repro.errors import SimulationError
from repro.simulation import (
    conservative_weights,
    execute_schedule,
    evaluate_schedule,
    mean_weights,
    sample_weights,
)
from repro.units import GB, GFLOP, MB


def _sched(wf, platform, mapping, order=None, cat=None):
    cats = {}
    for tid, vm in mapping.items():
        cats[vm] = cat or platform.cheapest
    return Schedule(
        order=order or wf.topological_order,
        assignment=dict(mapping),
        categories=cats,
    )


class TestSingleTask:
    def test_hand_computed_timeline(self, single_task, simple_platform):
        # download 200MB -> 2s; compute 50 Gflop -> 50s; upload 100MB -> 1s
        sched = _sched(single_task, simple_platform, {"only": 0})
        run = execute_schedule(
            single_task, simple_platform, sched, {"only": 50 * GFLOP}
        )
        rec = run.tasks["only"]
        assert rec.download_start == pytest.approx(0.0)
        assert rec.compute_start == pytest.approx(2.0)
        assert rec.compute_end == pytest.approx(52.0)
        assert rec.outputs_at_dc == pytest.approx(53.0)
        assert run.makespan == pytest.approx(53.0)

    def test_cost_is_rental_only(self, single_task, simple_platform):
        sched = _sched(single_task, simple_platform, {"only": 0})
        run = execute_schedule(
            single_task, simple_platform, sched, {"only": 50 * GFLOP}
        )
        assert run.total_cost == pytest.approx(53 * 0.001)  # ceil(53.0)=53

    def test_per_second_billing_rounds_up(self, single_task, simple_platform):
        sched = _sched(single_task, simple_platform, {"only": 0})
        run = execute_schedule(
            single_task, simple_platform, sched, {"only": 50.5 * GFLOP}
        )
        # duration 53.5s -> billed 54s
        assert run.cost.vm_rental == pytest.approx(54 * 0.001)

    def test_continuous_billing_option(self, single_task, simple_platform):
        sched = _sched(single_task, simple_platform, {"only": 0})
        run = execute_schedule(
            single_task, simple_platform, sched, {"only": 50.5 * GFLOP},
            per_second_billing=False,
        )
        assert run.cost.vm_rental == pytest.approx(53.5 * 0.001)


class TestChain:
    def test_single_vm_no_transfers(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 0, "C": 0})
        run = execute_schedule(
            chain, simple_platform, sched, mean_weights(chain)
        )
        # pure compute: 100 + 200 + 100 = 400s, no DC involvement
        assert run.makespan == pytest.approx(400.0)
        assert run.tasks["C"].compute_end == pytest.approx(400.0)
        for rec in run.tasks.values():
            assert rec.outputs_at_dc == rec.compute_end

    def test_two_vms_transfer_via_datacenter(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 1, "C": 0})
        run = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        # A: 0-100; upload 5s -> 105; B: dl 105-110, compute 110-310,
        # upload ->315; C: dl 315-320, compute 320-420.
        assert run.tasks["A"].compute_end == pytest.approx(100.0)
        assert run.tasks["B"].compute_start == pytest.approx(110.0)
        assert run.tasks["B"].compute_end == pytest.approx(310.0)
        assert run.tasks["C"].compute_start == pytest.approx(320.0)
        assert run.makespan == pytest.approx(420.0)

    def test_vm_windows_and_cost(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 1, "C": 0})
        run = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        vm0 = next(v for v in run.vms if v.vm_id == 0)
        vm1 = next(v for v in run.vms if v.vm_id == 1)
        assert vm0.ready_at == pytest.approx(0.0)
        assert vm0.end_at == pytest.approx(420.0)
        assert vm1.booked_at == pytest.approx(105.0)  # booked when input at DC
        assert vm1.end_at == pytest.approx(315.0)     # until upload done
        assert run.cost.vm_rental == pytest.approx(420 * 0.001 + 210 * 0.001)

    def test_faster_category_halves_compute(self, chain, simple_platform):
        big = simple_platform.category("big")
        sched = _sched(chain, simple_platform, {"A": 0, "B": 0, "C": 0}, cat=big)
        run = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        assert run.makespan == pytest.approx(200.0)


class TestBootSemantics:
    def test_boot_delays_first_task_uncharged(self, chain, booted_platform):
        sched = _sched(chain, booted_platform, {"A": 0, "B": 0, "C": 0})
        run = execute_schedule(chain, booted_platform, sched, mean_weights(chain))
        rec = run.tasks["A"]
        assert rec.download_start == pytest.approx(100.0)  # after boot
        vm = run.vms[0]
        assert vm.booked_at == pytest.approx(0.0)
        assert vm.ready_at == pytest.approx(100.0)
        # makespan includes the boot (booked at 0, ends at 500)
        assert run.makespan == pytest.approx(500.0)
        # ...but billing starts at ready: 400s of work
        assert vm.billed_duration == pytest.approx(400.0)

    def test_second_vm_boots_on_demand(self, chain, booted_platform):
        sched = _sched(chain, booted_platform, {"A": 0, "B": 1, "C": 0})
        run = execute_schedule(chain, booted_platform, sched, mean_weights(chain))
        vm1 = next(v for v in run.vms if v.vm_id == 1)
        # A computes 100-200 (after boot), uploads ->205; vm1 booked at 205
        assert vm1.booked_at == pytest.approx(205.0)
        assert vm1.ready_at == pytest.approx(305.0)


class TestOverlap:
    def test_upload_overlaps_next_compute(self, simple_platform):
        """A's upload to the other VM runs while B computes on the same VM."""
        from repro import StochasticWeight, Task, Workflow

        wf = Workflow("overlap")
        wf.add_task(Task("A", StochasticWeight(100 * GFLOP)))
        wf.add_task(Task("B", StochasticWeight(100 * GFLOP)))
        wf.add_task(Task("C", StochasticWeight(10 * GFLOP)))
        wf.add_edge("A", "C", 2 * GB)  # 20s upload
        wf.freeze()
        sched = _sched(wf, simple_platform, {"A": 0, "B": 0, "C": 1},
                       order=["A", "B", "C"])
        run = execute_schedule(wf, simple_platform, sched, mean_weights(wf))
        # B starts right at A's compute end, not after A's 20s upload
        assert run.tasks["B"].compute_start == pytest.approx(100.0)
        assert run.tasks["A"].outputs_at_dc == pytest.approx(120.0)

    def test_same_vm_edge_skips_datacenter(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 0, "C": 0})
        run = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        # no flow ever happened: B starts exactly at A's end
        assert run.tasks["B"].compute_start == pytest.approx(
            run.tasks["A"].compute_end
        )


class TestForkJoin:
    def test_parallel_speedup(self, fork_join, simple_platform):
        serial = _sched(fork_join, simple_platform,
                        {t: 0 for t in fork_join.tasks})
        spread = {"src": 0, "sink": 0}
        spread.update({f"par{i}": i for i in range(4)})
        parallel = _sched(fork_join, simple_platform, spread)
        r_serial = execute_schedule(
            fork_join, simple_platform, serial, mean_weights(fork_join))
        r_parallel = execute_schedule(
            fork_join, simple_platform, parallel, mean_weights(fork_join))
        assert r_parallel.makespan < r_serial.makespan / 2.5
        assert r_parallel.n_vms == 4

    def test_sink_waits_for_all_uploads(self, fork_join, simple_platform):
        spread = {"src": 0, "sink": 0}
        spread.update({f"par{i}": i for i in range(4)})
        sched = _sched(fork_join, simple_platform, spread)
        run = execute_schedule(
            fork_join, simple_platform, sched, mean_weights(fork_join))
        latest_upload = max(
            run.tasks[f"par{i}"].outputs_at_dc for i in range(1, 4)
        )
        assert run.tasks["sink"].download_start >= latest_upload - 1e-9


class TestDcContention:
    def test_finite_capacity_slows_transfers(self, fork_join, simple_platform):
        spread = {"src": 0, "sink": 0}
        spread.update({f"par{i}": i for i in range(4)})
        sched = _sched(fork_join, simple_platform, spread)
        free = execute_schedule(
            fork_join, simple_platform, sched, mean_weights(fork_join))
        congested = execute_schedule(
            fork_join, simple_platform, sched, mean_weights(fork_join),
            dc_capacity=20 * MB,
        )
        assert congested.makespan > free.makespan

    def test_infinite_capacity_is_default(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 1, "C": 0})
        a = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        b = execute_schedule(chain, simple_platform, sched, mean_weights(chain),
                             dc_capacity=math.inf)
        assert a.makespan == b.makespan


class TestWeightHandling:
    def test_sampled_weights_change_makespan(self, diamond, simple_platform):
        sched = _sched(diamond, simple_platform, {t: 0 for t in diamond.tasks})
        runs = {
            execute_schedule(
                diamond, simple_platform, sched, sample_weights(diamond, rng=i)
            ).makespan
            for i in range(5)
        }
        assert len(runs) > 1

    def test_missing_weights_rejected(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 0, "C": 0})
        with pytest.raises(SimulationError, match="weights missing"):
            execute_schedule(chain, simple_platform, sched, {"A": 1.0})

    def test_conservative_weights_helper(self, diamond):
        w = conservative_weights(diamond)
        for tid in diamond.tasks:
            assert w[tid] == diamond.task(tid).conservative_weight

    def test_evaluate_schedule_deterministic(self, diamond, simple_platform):
        sched = _sched(diamond, simple_platform, {t: 0 for t in diamond.tasks})
        a = evaluate_schedule(diamond, simple_platform, sched)
        b = evaluate_schedule(diamond, simple_platform, sched)
        assert a.makespan == b.makespan
        assert a.total_cost == b.total_cost


class TestValidation:
    def test_bad_order_rejected(self, chain, simple_platform):
        sched = Schedule(
            order=["C", "B", "A"],
            assignment={"A": 0, "B": 0, "C": 0},
            categories={0: simple_platform.cheapest},
        )
        with pytest.raises(ScheduleValidationError):
            execute_schedule(
                chain, simple_platform, sched, mean_weights(chain)
            )

    def test_missing_assignment_rejected(self, chain, simple_platform):
        sched = Schedule(
            order=["A", "B", "C"],
            assignment={"A": 0, "B": 0},
            categories={0: simple_platform.cheapest},
        )
        with pytest.raises(ScheduleValidationError):
            execute_schedule(chain, simple_platform, sched, mean_weights(chain))

    def test_respects_budget(self, chain, simple_platform):
        sched = _sched(chain, simple_platform, {"A": 0, "B": 0, "C": 0})
        run = execute_schedule(chain, simple_platform, sched, mean_weights(chain))
        assert run.respects_budget(run.total_cost)
        assert run.respects_budget(run.total_cost + 1.0)
        assert not run.respects_budget(run.total_cost - 0.01)
