"""Executor edge cases: degenerate sizes, boot/billing corners, flows."""

import math

import pytest

from repro import (
    CloudPlatform,
    Schedule,
    StochasticWeight,
    Task,
    VMCategory,
    Workflow,
)
from repro.errors import SimulationError
from repro.simulation import evaluate_schedule, execute_schedule, mean_weights
from repro.units import GB, GFLOP, MB


@pytest.fixture
def free_boot_platform():
    return CloudPlatform(
        categories=(VMCategory("c", speed=1 * GFLOP, hourly_cost=3.6),),
        bandwidth=100 * MB,
    )


def _single(ext_in=0.0, ext_out=0.0):
    wf = Workflow("one")
    wf.add_task(Task("t", StochasticWeight(10 * GFLOP),
                     external_input=ext_in, external_output=ext_out))
    return wf.freeze()


def _sched_all_on(wf, platform, vm=0):
    return Schedule(
        order=wf.topological_order,
        assignment={t: vm for t in wf.tasks},
        categories={vm: platform.categories[0]},
    )


class TestDegenerateSizes:
    def test_single_task_no_io(self, free_boot_platform):
        wf = _single()
        run = execute_schedule(
            wf, free_boot_platform, _sched_all_on(wf, free_boot_platform),
            mean_weights(wf),
        )
        assert run.makespan == pytest.approx(10.0)
        assert run.tasks["t"].download_start == 0.0

    def test_single_task_io_only_cost(self, free_boot_platform):
        wf = _single(ext_in=1 * GB, ext_out=1 * GB)
        run = execute_schedule(
            wf, free_boot_platform, _sched_all_on(wf, free_boot_platform),
            mean_weights(wf),
        )
        # 10s download + 10s compute + 10s upload
        assert run.makespan == pytest.approx(30.0)

    def test_two_independent_tasks_two_vms(self, free_boot_platform):
        wf = Workflow("two")
        wf.add_task(Task("a", StochasticWeight(10 * GFLOP)))
        wf.add_task(Task("b", StochasticWeight(10 * GFLOP)))
        wf.freeze()
        sched = Schedule(
            order=["a", "b"], assignment={"a": 0, "b": 1},
            categories={0: free_boot_platform.categories[0],
                        1: free_boot_platform.categories[0]},
        )
        run = execute_schedule(wf, free_boot_platform, sched, mean_weights(wf))
        assert run.makespan == pytest.approx(10.0)
        assert run.n_vms == 2


class TestBillingCorners:
    def test_zero_boot_zero_init_costs_nothing_extra(self, free_boot_platform):
        wf = _single()
        run = execute_schedule(
            wf, free_boot_platform, _sched_all_on(wf, free_boot_platform),
            mean_weights(wf),
        )
        assert run.cost.vm_initial == 0.0
        assert run.cost.vm_rental == pytest.approx(10 * 0.001)

    def test_boot_only_delays_never_bills(self, booted_platform):
        wf = _single()
        sched = _sched_all_on(wf, booted_platform)
        run = execute_schedule(wf, booted_platform, sched, mean_weights(wf))
        vm = run.vms[0]
        assert vm.ready_at - vm.booked_at == pytest.approx(100.0)
        assert vm.billed_duration == pytest.approx(10.0)

    def test_cost_breakdown_total_consistency(self, diamond, booted_platform):
        sched = _sched_all_on(diamond, booted_platform)
        run = execute_schedule(diamond, booted_platform, sched,
                               mean_weights(diamond))
        assert run.total_cost == pytest.approx(
            run.cost.vm_rental + run.cost.datacenter_time
            + run.cost.datacenter_io
        )


class TestFlowCorners:
    def test_zero_byte_edge_still_orders(self, free_boot_platform):
        wf = Workflow.from_spec(
            "zb", [("a", 10 * GFLOP, 0.0), ("b", 10 * GFLOP, 0.0)],
            [("a", "b", 0.0)],
        )
        sched = Schedule(
            order=["a", "b"], assignment={"a": 0, "b": 1},
            categories={0: free_boot_platform.categories[0],
                        1: free_boot_platform.categories[0]},
        )
        run = execute_schedule(wf, free_boot_platform, sched, mean_weights(wf))
        # zero-byte upload and download are instantaneous but still gate
        assert run.tasks["b"].compute_start == pytest.approx(10.0)

    def test_tiny_dc_capacity_finishes(self, fork_join, simple_platform):
        spread = {"src": 0, "sink": 0}
        spread.update({f"par{i}": i for i in range(4)})
        sched = Schedule(
            order=fork_join.topological_order,
            assignment=spread,
            categories={v: simple_platform.cheapest for v in set(spread.values())},
        )
        run = execute_schedule(
            fork_join, simple_platform, sched, mean_weights(fork_join),
            dc_capacity=1 * MB,
        )
        assert set(run.tasks) == set(fork_join.tasks)

    def test_weight_floor_protects_simulation(self, free_boot_platform):
        """Sampled weights are floored > 0, so compute events always advance."""
        wf = Workflow("floored")
        wf.add_task(Task("t", StochasticWeight(10 * GFLOP, 100 * GFLOP)))
        wf.freeze()
        from repro.simulation import sample_weights

        for seed in range(5):
            weights = sample_weights(wf, rng=seed)
            assert weights["t"] > 0
            run = execute_schedule(
                wf, free_boot_platform, _sched_all_on(wf, free_boot_platform),
                weights,
            )
            assert run.makespan > 0


class TestEvaluateOptions:
    def test_mean_vs_conservative_evaluation(self, diamond, simple_platform):
        sched = _sched_all_on(diamond, simple_platform)
        cons = evaluate_schedule(diamond, simple_platform, sched,
                                 use_conservative=True)
        mean = evaluate_schedule(diamond, simple_platform, sched,
                                 use_conservative=False)
        assert cons.makespan > mean.makespan

    def test_validate_flag(self, chain, simple_platform):
        bad = Schedule(
            order=["C", "B", "A"], assignment={t: 0 for t in "ABC"},
            categories={0: simple_platform.cheapest},
        )
        # without validation the executor detects the deadlock itself
        with pytest.raises(SimulationError):
            execute_schedule(chain, simple_platform, bad, mean_weights(chain),
                             validate=False)
