"""Tests for the ASCII Gantt renderer."""

import pytest

from repro import PAPER_PLATFORM, Schedule, evaluate_schedule, generate
from repro.simulation import mean_weights, execute_schedule
from repro.simulation.gantt import render_gantt, render_task_table


@pytest.fixture()
def run(chain, simple_platform):
    sched = Schedule(
        order=["A", "B", "C"],
        assignment={"A": 0, "B": 1, "C": 0},
        categories={0: simple_platform.cheapest,
                    1: simple_platform.category("big")},
    )
    return execute_schedule(chain, simple_platform, sched, mean_weights(chain))


class TestRenderGantt:
    def test_one_row_per_vm(self, run):
        text = render_gantt(run)
        lines = text.splitlines()
        assert sum(1 for l in lines if l.startswith("vm")) == run.n_vms

    def test_contains_phases(self, run):
        text = render_gantt(run)
        assert "█" in text   # compute
        assert "▒" in text   # download (B pulls A's output)
        assert "legend" in text

    def test_respects_width(self, run):
        for width in (20, 60, 120):
            text = render_gantt(run, width=width)
            rows = [l for l in text.splitlines() if l.startswith("vm")]
            label = rows[0].split(" ", 1)[0]
            assert all(len(r) <= len(label) + 1 + width + 2 for r in rows)

    def test_width_validation(self, run):
        with pytest.raises(ValueError):
            render_gantt(run, width=2)

    def test_realistic_workflow_renders(self):
        wf = generate("montage", 20, rng=1, sigma_ratio=0.5)
        from repro import make_scheduler

        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 1.0
        ).schedule
        run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        text = render_gantt(run)
        assert text.count("\n") >= run.n_vms

    def test_compute_dominates_markers(self, run):
        """Compute cells must not be overpainted by uploads."""
        text = render_gantt(run, width=200)
        vm0 = next(l for l in text.splitlines() if l.startswith("vm0"))
        assert vm0.count("█") >= vm0.count("░")


class TestTaskTable:
    def test_all_tasks_listed(self, run):
        text = render_task_table(run)
        for tid in ("A", "B", "C"):
            assert tid in text

    def test_limit(self, run):
        text = render_task_table(run, limit=1)
        assert len(text.strip().splitlines()) == 2  # header + 1 row

    def test_sorted_by_compute_start(self, run):
        lines = render_task_table(run).strip().splitlines()[1:]
        starts = [float(l.split()[3]) for l in lines]
        assert starts == sorted(starts)
