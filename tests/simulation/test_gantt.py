"""Tests for the ASCII Gantt renderer."""

import pytest

from repro import PAPER_PLATFORM, Schedule, evaluate_schedule, generate
from repro.platform.pricing import CostBreakdown
from repro.platform.vm import VMCategory
from repro.simulation import mean_weights, execute_schedule
from repro.simulation.gantt import render_gantt, render_task_table
from repro.simulation.trace import SimulationResult, TaskRecord, VMRecord


@pytest.fixture()
def run(chain, simple_platform):
    sched = Schedule(
        order=["A", "B", "C"],
        assignment={"A": 0, "B": 1, "C": 0},
        categories={0: simple_platform.cheapest,
                    1: simple_platform.category("big")},
    )
    return execute_schedule(chain, simple_platform, sched, mean_weights(chain))


class TestRenderGantt:
    def test_one_row_per_vm(self, run):
        text = render_gantt(run)
        lines = text.splitlines()
        assert sum(1 for l in lines if l.startswith("vm")) == run.n_vms

    def test_contains_phases(self, run):
        text = render_gantt(run)
        assert "█" in text   # compute
        assert "▒" in text   # download (B pulls A's output)
        assert "legend" in text

    def test_respects_width(self, run):
        for width in (20, 60, 120):
            text = render_gantt(run, width=width)
            rows = [l for l in text.splitlines() if l.startswith("vm")]
            label = rows[0].split(" ", 1)[0]
            assert all(len(r) <= len(label) + 1 + width + 2 for r in rows)

    def test_width_validation(self, run):
        with pytest.raises(ValueError):
            render_gantt(run, width=2)

    def test_realistic_workflow_renders(self):
        wf = generate("montage", 20, rng=1, sigma_ratio=0.5)
        from repro import make_scheduler

        sched = make_scheduler("heft_budg").schedule(
            wf, PAPER_PLATFORM, 1.0
        ).schedule
        run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        text = render_gantt(run)
        assert text.count("\n") >= run.n_vms

    def test_compute_dominates_markers(self, run):
        """Compute cells must not be overpainted by uploads."""
        text = render_gantt(run, width=200)
        vm0 = next(l for l in text.splitlines() if l.startswith("vm0"))
        assert vm0.count("█") >= vm0.count("░")


def synthetic_result(tasks, vms, *, start=0.0, end=10.0):
    cost = CostBreakdown(vm_rental=0.0, vm_initial=0.0,
                         datacenter_time=0.0, datacenter_io=0.0)
    return SimulationResult(
        makespan=end - start, start=start, end=end, cost=cost,
        tasks={rec.tid: rec for rec in tasks}, vms=vms,
    )


class TestEdgeCases:
    def test_zero_duration_task_renders(self):
        cat = VMCategory(name="small", speed=1e9, hourly_cost=3.6)
        vm = VMRecord(vm_id=0, category=cat, booked_at=0.0, ready_at=0.0,
                      end_at=10.0, n_tasks=1)
        instant = TaskRecord(tid="Z", vm_id=0, download_start=5.0,
                             compute_start=5.0, compute_end=5.0,
                             outputs_at_dc=5.0)
        text = render_gantt(synthetic_result([instant], [vm]))
        assert text.startswith("vm0/small")
        assert "legend" in text
        table = render_task_table(synthetic_result([instant], [vm]))
        assert "Z" in table

    def test_empty_result_renders_axis_and_legend(self):
        text = render_gantt(synthetic_result([], []))
        lines = text.splitlines()
        assert len(lines) == 2  # axis + legend, no VM rows
        assert "legend" in lines[-1]
        assert render_task_table(synthetic_result([], [])).count("\n") == 1

    def test_zero_span_result_does_not_divide_by_zero(self):
        cat = VMCategory(name="small", speed=1e9, hourly_cost=3.6)
        vm = VMRecord(vm_id=0, category=cat, booked_at=0.0, ready_at=0.0,
                      end_at=0.0, n_tasks=0)
        text = render_gantt(synthetic_result([], [vm], end=0.0))
        assert text.startswith("vm0/small")

    def test_custom_width_changes_row_length(self):
        cat = VMCategory(name="small", speed=1e9, hourly_cost=3.6)
        vm = VMRecord(vm_id=0, category=cat, booked_at=0.0, ready_at=0.0,
                      end_at=10.0, n_tasks=1)
        task = TaskRecord(tid="T", vm_id=0, download_start=0.0,
                          compute_start=0.0, compute_end=10.0,
                          outputs_at_dc=10.0)
        result = synthetic_result([task], [vm])
        narrow = render_gantt(result, width=10).splitlines()[0]
        wide = render_gantt(result, width=100).splitlines()[0]
        label = "vm0/small "
        assert len(narrow) == len(label) + 10
        assert len(wide) == len(label) + 100
        assert set(wide[len(label):]) == {"█"}


class TestTaskTable:
    def test_all_tasks_listed(self, run):
        text = render_task_table(run)
        for tid in ("A", "B", "C"):
            assert tid in text

    def test_limit(self, run):
        text = render_task_table(run, limit=1)
        assert len(text.strip().splitlines()) == 2  # header + 1 row

    def test_sorted_by_compute_start(self, run):
        lines = render_task_table(run).strip().splitlines()[1:]
        starts = [float(l.split()[3]) for l in lines]
        assert starts == sorted(starts)
