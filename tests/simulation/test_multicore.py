"""Multi-core VM semantics (§III-B: ``n_k`` processors per VM).

The paper's evaluation uses single-core VMs but its model allows several
processors per VM, "one processor being able to process one task at a
time". These tests pin down the extension: FIFO dispatch without
leapfrogging, per-core parallel compute, one rental window per VM, and
planner/executor parity.
"""

import pytest

from repro import (
    CloudPlatform,
    Schedule,
    StochasticWeight,
    Task,
    VMCategory,
    Workflow,
)
from repro.scheduling.planning import PlanningState
from repro.simulation import evaluate_schedule, execute_schedule, mean_weights
from repro.units import GB, GFLOP, MB


@pytest.fixture
def dual_platform() -> CloudPlatform:
    """One dual-core category, 1 Gflop/s per core, $3.6/h, no boot."""
    return CloudPlatform(
        categories=(
            VMCategory("dual", speed=1 * GFLOP, hourly_cost=3.6, cores=2),
        ),
        bandwidth=100 * MB,
        name="dual",
    )


@pytest.fixture
def bag4() -> Workflow:
    """Four independent 100-Gflop tasks."""
    wf = Workflow("bag4")
    for i in range(4):
        wf.add_task(Task(f"t{i}", StochasticWeight(100 * GFLOP)))
    return wf.freeze()


def _sched(wf, platform, vm=0):
    return Schedule(
        order=wf.topological_order,
        assignment={t: vm for t in wf.tasks},
        categories={vm: platform.categories[0]},
    )


class TestExecutorMulticore:
    def test_two_cores_halve_bag_makespan(self, bag4, dual_platform):
        run = execute_schedule(
            bag4, dual_platform, _sched(bag4, dual_platform), mean_weights(bag4)
        )
        # 4 x 100s tasks on 2 cores -> 200s, not 400s
        assert run.makespan == pytest.approx(200.0)
        assert run.n_vms == 1

    def test_pairwise_start_times(self, bag4, dual_platform):
        run = execute_schedule(
            bag4, dual_platform, _sched(bag4, dual_platform), mean_weights(bag4)
        )
        starts = sorted(r.compute_start for r in run.tasks.values())
        assert starts == pytest.approx([0.0, 0.0, 100.0, 100.0])

    def test_single_rental_window_cost(self, bag4, dual_platform):
        run = execute_schedule(
            bag4, dual_platform, _sched(bag4, dual_platform), mean_weights(bag4)
        )
        # one VM billed 200s at $0.001/s, regardless of core count
        assert run.cost.vm_rental == pytest.approx(0.2)

    def test_fifo_no_leapfrogging(self, dual_platform):
        """A blocked head must hold back later, ready tasks."""
        wf = Workflow("blocked-head")
        wf.add_task(Task("producer", StochasticWeight(100 * GFLOP)))
        wf.add_task(Task("blocked", StochasticWeight(10 * GFLOP)))
        wf.add_task(Task("eager", StochasticWeight(10 * GFLOP)))
        wf.add_edge("producer", "blocked", 1 * GB)
        wf.freeze()
        # producer alone on vm1; vm0 queue = [blocked, eager]
        sched = Schedule(
            order=["producer", "blocked", "eager"],
            assignment={"producer": 1, "blocked": 0, "eager": 0},
            categories={0: dual_platform.categories[0],
                        1: dual_platform.categories[0]},
        )
        run = execute_schedule(wf, dual_platform, sched, mean_weights(wf))
        # "eager" has no inputs but sits behind "blocked" in the queue:
        # it must not start before the head is dispatched.
        assert run.tasks["eager"].download_start >= (
            run.tasks["blocked"].download_start - 1e-9
        )
        # head waits for producer's upload (100s + 10s) then downloads 10s
        assert run.tasks["blocked"].compute_start == pytest.approx(120.0)

    def test_dependent_chain_still_serial(self, dual_platform):
        wf = Workflow.from_spec(
            "chain2",
            tasks=[("a", 100 * GFLOP, 0.0), ("b", 100 * GFLOP, 0.0)],
            edges=[("a", "b", 0.0)],
        )
        run = execute_schedule(
            wf, dual_platform, _sched(wf, dual_platform), mean_weights(wf)
        )
        assert run.tasks["b"].compute_start == pytest.approx(
            run.tasks["a"].compute_end
        )
        assert run.makespan == pytest.approx(200.0)


class TestPlannerMulticoreParity:
    def test_planner_matches_executor_on_bag(self, bag4, dual_platform):
        state = PlanningState(bag4, dual_platform)
        for tid in bag4.topological_order:
            evaluations = state.evaluate_all(tid)
            # force everything onto the first (possibly new) dual VM
            ev = next(
                e for e in evaluations
                if e.vm_id == 0 or (e.is_new_vm and not state.vms)
            )
            state.commit(ev)
        sched = state.to_schedule()
        run = evaluate_schedule(bag4, dual_platform, sched, validate=True)
        for tid in bag4.tasks:
            assert run.tasks[tid].compute_end == pytest.approx(
                state.finish[tid]
            ), tid

    def test_planner_sees_free_second_core(self, bag4, dual_platform):
        state = PlanningState(bag4, dual_platform)
        vm = state.commit(state.evaluate("t0", None, dual_platform.categories[0]))
        ev = state.evaluate("t1", vm, vm.category)
        assert ev.compute_start == pytest.approx(0.0)  # second core idle
        state.commit(ev)
        ev3 = state.evaluate("t2", vm, vm.category)
        assert ev3.compute_start == pytest.approx(100.0)  # both cores busy

    def test_single_core_unaffected(self, chain, simple_platform):
        """Regression guard: cores=1 planning identical to the serial model."""
        state = PlanningState(chain, simple_platform)
        vm = state.commit(state.evaluate("A", None, simple_platform.cheapest))
        ev = state.evaluate("B", vm, vm.category)
        assert ev.compute_start == pytest.approx(100.0)
