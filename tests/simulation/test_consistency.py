"""Planner ↔ executor consistency.

The incremental planner (Eq. 7) and the event-driven executor implement the
same platform semantics; run deterministically (conservative weights,
infinite DC capacity) on the *same* schedule, every task's planned EFT must
equal its simulated compute end, and the planner's conservative cost
envelope must upper-bound the simulated VM rental.
"""

import math

import pytest

from repro import PAPER_PLATFORM, generate, heft_order
from repro.scheduling.planning import PlanningState
from repro.simulation import evaluate_schedule


def _plan_greedy_eft(wf, platform):
    """Plain HEFT via the planner, returning the state (with finish times)."""
    state = PlanningState(wf, platform)
    for tid in heft_order(wf, platform.mean_speed, platform.bandwidth):
        evaluations = state.evaluate_all(tid)
        best = min(evaluations, key=lambda ev: (ev.eft, ev.cost))
        state.commit(best)
    return state


@pytest.mark.parametrize("family", ["cybershake", "ligo", "montage"])
@pytest.mark.parametrize("seed", [0, 1])
def test_planned_eft_equals_simulated_finish(family, seed):
    wf = generate(family, 30, rng=seed, sigma_ratio=0.5)
    state = _plan_greedy_eft(wf, PAPER_PLATFORM)
    schedule = state.to_schedule()
    result = evaluate_schedule(wf, PAPER_PLATFORM, schedule, validate=True)
    for tid in wf.tasks:
        assert result.tasks[tid].compute_end == pytest.approx(
            state.finish[tid], rel=1e-9, abs=1e-6
        ), f"task {tid} diverges"


@pytest.mark.parametrize("family", ["cybershake", "montage"])
def test_planner_cost_envelope_upper_bounds_actual(family):
    """The planner assumes every output is uploaded; the executor uploads
    only what is needed, so planned VM rental >= simulated VM rental."""
    wf = generate(family, 30, rng=3, sigma_ratio=0.5)
    state = _plan_greedy_eft(wf, PAPER_PLATFORM)
    schedule = state.to_schedule()
    result = evaluate_schedule(wf, PAPER_PLATFORM, schedule)
    # per-second billing can add <= 1s * rate per VM to the actual side;
    # vm_rental includes the setup fees the planner accounts separately.
    slack = sum(vm.category.cost_rate for vm in result.vms)
    actual_rental = result.cost.vm_rental - result.cost.vm_initial
    assert state.vm_rental_cost() + slack >= actual_rental - 1e-9


@pytest.mark.parametrize("seed", [0, 5])
def test_planner_makespan_upper_bounds_simulated(seed):
    wf = generate("ligo", 30, rng=seed, sigma_ratio=0.25)
    state = _plan_greedy_eft(wf, PAPER_PLATFORM)
    schedule = state.to_schedule()
    result = evaluate_schedule(wf, PAPER_PLATFORM, schedule)
    assert state.makespan >= result.makespan - 1e-6


def test_vm_booking_times_match(simple_platform):
    """Planner booked_at (t_begin of first task) equals executor booked_at."""
    wf = generate("montage", 20, rng=2, sigma_ratio=0.5)
    state = _plan_greedy_eft(wf, simple_platform)
    schedule = state.to_schedule()
    result = evaluate_schedule(wf, simple_platform, schedule)
    planned = {vm.vm_id: vm.booked_at for vm in state.vms}
    actual = {vm.vm_id: vm.booked_at for vm in result.vms}
    for vm_id, t in planned.items():
        assert actual[vm_id] == pytest.approx(t, abs=1e-6)
