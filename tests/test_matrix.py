"""Cross-product sanity matrix: every algorithm × every paper family.

A cheap guarantee that no (algorithm, workflow-structure) combination
crashes, deadlocks, or produces structurally invalid schedules — the kind
of coverage individual unit tests can miss.
"""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    available_schedulers,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.experiments.budgets import minimal_budget

FAMILIES = ("cybershake", "ligo", "montage", "epigenomics", "sipht")
FAST_ALGOS = ("minmin", "heft", "minmin_budg", "heft_budg", "bdt", "cg",
              "maxmin", "maxmin_budg", "sufferage", "sufferage_budg")
SLOW_ALGOS = ("heft_budg_plus", "heft_budg_plus_inv", "cg_plus")


@pytest.fixture(scope="module")
def workflows():
    return {
        family: generate(family, 20, rng=17, sigma_ratio=0.5)
        for family in FAMILIES
    }


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", FAST_ALGOS)
class TestFastMatrix:
    def test_medium_budget(self, workflows, family, algorithm):
        wf = workflows[family]
        budget = 2.0 * minimal_budget(wf, PAPER_PLATFORM)
        result = make_scheduler(algorithm).schedule(wf, PAPER_PLATFORM, budget)
        result.schedule.validate(wf)
        run = evaluate_schedule(wf, PAPER_PLATFORM, result.schedule)
        assert set(run.tasks) == set(wf.tasks)
        assert run.makespan > 0 and run.total_cost > 0

    def test_infinite_budget(self, workflows, family, algorithm):
        wf = workflows[family]
        result = make_scheduler(algorithm).schedule(wf, PAPER_PLATFORM, math.inf)
        result.schedule.validate(wf)


@pytest.mark.parametrize("family", ("ligo", "sipht"))
@pytest.mark.parametrize("algorithm", SLOW_ALGOS)
class TestSlowMatrix:
    def test_medium_budget(self, workflows, family, algorithm):
        wf = workflows[family]
        budget = 2.0 * minimal_budget(wf, PAPER_PLATFORM)
        result = make_scheduler(algorithm).schedule(wf, PAPER_PLATFORM, budget)
        result.schedule.validate(wf)
        run = evaluate_schedule(wf, PAPER_PLATFORM, result.schedule)
        assert set(run.tasks) == set(wf.tasks)


def test_registry_covers_matrix():
    assert set(FAST_ALGOS) | set(SLOW_ALGOS) == set(available_schedulers())
