"""Shared fixtures: small canonical workflows and platforms."""

from __future__ import annotations

import pytest

from repro import CloudPlatform, StochasticWeight, Task, VMCategory, Workflow
from repro.units import GB, GFLOP, MB


@pytest.fixture
def simple_platform() -> CloudPlatform:
    """Two categories, cost linear in speed, no boot/init — easy arithmetic.

    cat1: 1 Gflop/s at $3.6/h  -> $0.001/s
    cat2: 2 Gflop/s at $7.2/h  -> $0.002/s
    bandwidth 100 MB/s; no datacenter charges.
    """
    return CloudPlatform(
        categories=(
            VMCategory("small", speed=1 * GFLOP, hourly_cost=3.6),
            VMCategory("big", speed=2 * GFLOP, hourly_cost=7.2),
        ),
        bandwidth=100 * MB,
        name="simple",
    )


@pytest.fixture
def booted_platform() -> CloudPlatform:
    """Like simple_platform but with boot delay and setup/datacenter costs."""
    return CloudPlatform(
        categories=(
            VMCategory("small", speed=1 * GFLOP, hourly_cost=3.6,
                       initial_cost=0.01, boot_time=100.0),
            VMCategory("big", speed=2 * GFLOP, hourly_cost=7.2,
                       initial_cost=0.01, boot_time=100.0),
        ),
        bandwidth=100 * MB,
        transfer_cost_per_byte=0.05 / GB,
        storage_cost_per_byte_month=0.02 / GB,
        name="booted",
    )


@pytest.fixture
def diamond() -> Workflow:
    """A → (B, C) → D diamond, 100 Gflop per task, 1 GB per edge."""
    wf = Workflow("diamond")
    for tid in "ABCD":
        wf.add_task(Task(tid, StochasticWeight(100 * GFLOP, 10 * GFLOP)))
    wf.add_edge("A", "B", 1 * GB)
    wf.add_edge("A", "C", 1 * GB)
    wf.add_edge("B", "D", 1 * GB)
    wf.add_edge("C", "D", 1 * GB)
    return wf.freeze()


@pytest.fixture
def chain() -> Workflow:
    """A → B → C chain with deterministic weights (sigma 0)."""
    return Workflow.from_spec(
        "chain",
        tasks=[("A", 100 * GFLOP, 0.0), ("B", 200 * GFLOP, 0.0),
               ("C", 100 * GFLOP, 0.0)],
        edges=[("A", "B", 500 * MB), ("B", "C", 500 * MB)],
    )


@pytest.fixture
def fork_join() -> Workflow:
    """One source fanning to 4 parallel tasks joined by a sink."""
    tasks = [("src", 10 * GFLOP, 0.0)]
    edges = []
    for i in range(4):
        tasks.append((f"par{i}", 400 * GFLOP, 0.0))
        edges.append(("src", f"par{i}", 100 * MB))
        edges.append((f"par{i}", "sink", 100 * MB))
    tasks.append(("sink", 10 * GFLOP, 0.0))
    return Workflow.from_spec("forkjoin", tasks, edges)


@pytest.fixture
def single_task() -> Workflow:
    """Degenerate single-task workflow with external I/O."""
    wf = Workflow("single")
    wf.add_task(
        Task("only", StochasticWeight(50 * GFLOP, 5 * GFLOP),
             external_input=200 * MB, external_output=100 * MB)
    )
    return wf.freeze()
