"""Tenant policies: token-bucket rate, cost-budget windows, slots."""

import pytest

from repro.admission import TenantPolicy, TenantRegistry
from repro.errors import ServiceError


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def registry(clock, **policy):
    policies = {"t": TenantPolicy(name="t", **policy)} if policy else None
    return TenantRegistry(policies, clock=clock)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        clock = FakeClock()
        reg = registry(clock, rate=1.0, burst=2.0)
        assert reg.try_rate("t") == (True, 0.0)
        assert reg.try_rate("t") == (True, 0.0)
        ok, retry = reg.try_rate("t")
        assert not ok
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        reg = registry(clock, rate=2.0, burst=2.0)
        assert reg.try_rate("t")[0]
        assert reg.try_rate("t")[0]
        assert not reg.try_rate("t")[0]
        clock.advance(0.5)  # 2 tokens/s x 0.5s = 1 token back
        assert reg.try_rate("t")[0]
        assert not reg.try_rate("t")[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        reg = registry(clock, rate=10.0, burst=3.0)
        clock.advance(100.0)
        for _ in range(3):
            assert reg.try_rate("t")[0]
        assert not reg.try_rate("t")[0]

    def test_unlimited_tenant_never_rate_limited(self):
        reg = registry(FakeClock())
        for _ in range(1000):
            assert reg.try_rate("anyone")[0]

    def test_default_burst_is_twice_rate(self):
        assert TenantPolicy(name="x", rate=5.0).bucket_capacity == 10.0
        assert TenantPolicy(name="x", rate=0.1).bucket_capacity == 1.0


class TestCostBudget:
    def test_exhaustion_and_retry_hint(self):
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 6.0) == (True, 0.0)
        ok, retry = reg.try_reserve("t", 6.0)  # 6 + 6 > 10
        assert not ok
        assert retry == pytest.approx(60.0)

    def test_window_reset_restores_budget(self):
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 8.0)[0]
        reg.commit("t", 8.0, 8.0)
        assert not reg.try_reserve("t", 8.0)[0]
        clock.advance(61.0)
        assert reg.try_reserve("t", 8.0)[0]

    def test_reservations_survive_window_roll(self):
        # In-flight reservations belong to running work and must not be
        # wiped by a window reset — only committed spend resets.
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 7.0)[0]
        clock.advance(61.0)
        assert not reg.try_reserve("t", 7.0)[0]  # 7 reserved + 7 > 10
        assert reg.try_reserve("t", 3.0)[0]

    def test_concurrent_reservations_cannot_overshoot(self):
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 4.0)[0]
        assert reg.try_reserve("t", 4.0)[0]
        assert not reg.try_reserve("t", 4.0)[0]  # projected 12 > 10

    def test_release_refunds_reservation(self):
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 9.0)[0]
        reg.release("t", 9.0)
        assert reg.try_reserve("t", 9.0)[0]

    def test_commit_converts_reservation_to_spend(self):
        clock = FakeClock()
        reg = registry(clock, cost_budget=10.0, budget_window_s=60.0)
        assert reg.try_reserve("t", 5.0)[0]
        reg.commit("t", 5.0, 3.0)  # actual came in under the estimate
        assert reg.spent_window("t") == pytest.approx(3.0)
        assert reg.try_reserve("t", 7.0)[0]  # 3 + 7 <= 10


class TestSlots:
    def test_concurrency_cap(self):
        reg = registry(FakeClock(), max_concurrent=2)
        assert reg.acquire_slot("t")
        assert reg.acquire_slot("t")
        assert not reg.can_run("t")
        assert not reg.acquire_slot("t")
        reg.release_slot("t")
        assert reg.can_run("t")
        assert reg.acquire_slot("t")

    def test_weighted_virtual_time(self):
        clock = FakeClock()
        reg = TenantRegistry(
            {"heavy": TenantPolicy(name="heavy", weight=2.0),
             "light": TenantPolicy(name="light", weight=1.0)},
            clock=clock,
        )
        for _ in range(2):
            reg.acquire_slot("heavy")
            reg.acquire_slot("light")
        assert reg.virtual_time("heavy") == pytest.approx(1.0)
        assert reg.virtual_time("light") == pytest.approx(2.0)


class TestJsonLoading:
    def test_round_trip(self, tmp_path):
        doc = {
            "default": {"rate": 50.0},
            "tenants": {
                "a": {"rate": 10.0, "burst": 20.0, "max_concurrent": 4,
                      "cost_budget": 25.0, "budget_window_s": 120.0,
                      "weight": 2.0},
                "b": {"cost_budget": 5.0},
            },
        }
        path = tmp_path / "tenants.json"
        path.write_text(__import__("json").dumps(doc))
        reg = TenantRegistry.from_json_file(str(path))
        assert reg.policy("a").max_concurrent == 4
        assert reg.policy("b").cost_budget == 5.0
        assert reg.policy("unlisted").rate == 50.0  # default applies
        snap = reg.snapshot()
        assert set(snap["tenants"]) >= {"a", "b"}

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServiceError, match="unknown policy fields"):
            TenantRegistry.from_json({"tenants": {"a": {"ratee": 1}}})
        with pytest.raises(ServiceError, match="unknown tenants document"):
            TenantRegistry.from_json({"tenant": {}})

    def test_invalid_values_rejected(self):
        with pytest.raises(ServiceError, match="rate must be > 0"):
            TenantPolicy(name="x", rate=0.0)
        with pytest.raises(ServiceError, match="cost_budget must be > 0"):
            TenantPolicy(name="x", cost_budget=-1.0)
        with pytest.raises(ServiceError, match="weight must be > 0"):
            TenantPolicy(name="x", weight=0.0)
