"""Spec-family batching: bit-identical responses, shared replications."""

from dataclasses import replace

import pytest

from repro.admission import FamilyBatcher
from repro.service import SchedulingService
from repro.service.spec import ScheduleRequest


def request(seed=100, n_reps=4, amount=2.0):
    return ScheduleRequest.from_dict({
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps, "seed": seed},
    })


def normalized(response):
    """Response dict with the wall-clock telemetry fields removed."""
    out = replace(response, elapsed_s=0.0, stages=None).to_dict()
    return out


class TestBitIdentity:
    def test_batched_equals_unbatched(self):
        with SchedulingService(max_workers=1, cache_size=0,
                               batching=True) as batched, \
             SchedulingService(max_workers=1, cache_size=0,
                               batching=False) as plain:
            for req in (request(seed=100), request(seed=102, n_reps=6)):
                assert normalized(batched.schedule(req)) == \
                    normalized(plain.schedule(req))

    def test_overlapping_seed_ranges_share_reps(self):
        with SchedulingService(max_workers=1, cache_size=0,
                               batching=True) as svc:
            a = svc.schedule(request(seed=100, n_reps=6))
            b = svc.schedule(request(seed=103, n_reps=6))  # overlaps 103..105
            stats = svc.stats()["batching"]
            assert stats["requests"] == 2
            assert stats["batched"] == 1  # second request reused the base
            assert stats["reps_shared"] == 3
            # The shared replications are literally the same numbers.
            by_seed = {rep["seed"]: rep for rep in a.evaluation["reps"]}
            for rep in b.evaluation["reps"]:
                if rep["seed"] in by_seed:
                    assert rep == by_seed[rep["seed"]]

    def test_mutating_a_response_does_not_corrupt_the_cache(self):
        with SchedulingService(max_workers=1, cache_size=0,
                               batching=True) as svc:
            first = svc.schedule(request(seed=100))
            first.evaluation["reps"][0]["makespan"] = -1.0
            again = svc.schedule(request(seed=100))
            assert again.evaluation["reps"][0]["makespan"] != -1.0

    def test_tenant_and_priority_do_not_split_families(self):
        base = request(seed=100)
        other = replace(base, tenant="team-a", priority="interactive")
        assert base.family_key() == other.family_key()
        assert base.fingerprint() == other.fingerprint()


class TestBatcherUnit:
    def test_base_computed_once_per_family(self):
        calls = {"base": 0, "rep": 0}

        def compute_base(req):
            calls["base"] += 1
            return f"base:{req.family_key()}"

        def compute_rep(base, seed):
            calls["rep"] += 1
            return {"seed": seed}

        def assemble(base, reps, req):
            return {"base": base, "reps": list(reps)}

        batcher = FamilyBatcher(compute_base, compute_rep, assemble)
        first = batcher.compute(request(seed=0, n_reps=3))
        second = batcher.compute(request(seed=1, n_reps=3))
        assert calls["base"] == 1
        assert calls["rep"] == 4  # seeds 0,1,2 then only 3 is new
        assert [r["seed"] for r in second["reps"]] == [1, 2, 3]
        assert batcher.served_batched(request(seed=9))
        stats = batcher.stats()
        assert stats["requests"] == 2
        assert stats["reps_shared"] == 2
        assert first["base"] == second["base"]

    def test_clear_forgets_families(self):
        batcher = FamilyBatcher(
            lambda req: "b", lambda base, seed: {"seed": seed},
            lambda base, reps, req: reps,
        )
        batcher.compute(request(seed=0, n_reps=1))
        assert batcher.served_batched(request(seed=5))
        batcher.clear()
        assert not batcher.served_batched(request(seed=5))

    def test_distinct_families_get_distinct_bases(self):
        seen = []

        def compute_base(req):
            seen.append(req.family_key())
            return req.family_key()

        batcher = FamilyBatcher(
            compute_base, lambda base, seed: {"seed": seed},
            lambda base, reps, req: base,
        )
        batcher.compute(request(amount=2.0, n_reps=1))
        batcher.compute(request(amount=3.0, n_reps=1))
        assert len(seen) == 2 and seen[0] != seen[1]
