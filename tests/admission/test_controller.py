"""Admission controller gate chain and engine-level accounting."""

import pytest

from repro.admission import (
    AdmissionController,
    TenantPolicy,
    TenantRegistry,
)
from repro.errors import AdmissionRejected
from repro.service import SchedulingService
from repro.service.metrics import MetricsRegistry
from repro.service.spec import ScheduleRequest


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def request(amount=2.0, tenant="default", priority="batch", seed=42,
            n_reps=0):
    return ScheduleRequest.from_dict({
        "workflow": {"family": "montage", "n_tasks": 15, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps, "seed": seed},
        "tenant": tenant,
        "priority": priority,
    })


def controller(clock=None, **policy):
    clock = clock or FakeClock()
    registry = TenantRegistry(
        {"t": TenantPolicy(name="t", **policy)} if policy else None,
        clock=clock,
    )
    return AdmissionController(
        tenants=registry, metrics=MetricsRegistry(), clock=clock
    )


class TestGateChain:
    def test_permissive_default_admits_everything(self):
        ctl = controller()
        for i in range(50):
            ctl.admit(request(), f"job-{i}")
        assert ctl.stats()["queue"]["depth"] == 50

    def test_rate_limited_refusal_is_typed(self):
        ctl = controller(rate=1.0, burst=1.0)
        ctl.admit(request(tenant="t"), "job-1")
        with pytest.raises(AdmissionRejected, match="rate limited") as err:
            ctl.admit(request(tenant="t"), "job-2")
        assert err.value.reason == "rate_limited"
        assert err.value.tenant == "t"
        assert err.value.retry_after_s > 0.0

    def test_budget_exhausted_refusal_is_typed(self):
        ctl = controller(cost_budget=3.0, budget_window_s=60.0)
        ctl.admit(request(amount=2.0, tenant="t"), "job-1")
        with pytest.raises(AdmissionRejected, match="budget") as err:
            ctl.admit(request(amount=2.0, tenant="t"), "job-2")
        assert err.value.reason == "budget_exhausted"
        assert err.value.estimated_cost == pytest.approx(2.0)

    def test_queue_full_refunds_the_reservation(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {"t": TenantPolicy(name="t", cost_budget=10.0)}, clock=clock
        )
        ctl = AdmissionController(
            tenants=registry, max_queue_depth=1, clock=clock
        )
        ctl.admit(request(amount=2.0, tenant="t"), "job-1")
        with pytest.raises(AdmissionRejected, match="queue is full") as err:
            ctl.admit(request(amount=2.0, tenant="t"), "job-2")
        assert err.value.reason == "queue_full"
        # The refused request's reservation was released: 8 still fits.
        assert registry.try_reserve("t", 8.0)[0]

    def test_sync_admit_skips_the_queue(self):
        ctl = controller(cost_budget=3.0)
        decision = ctl.admit(request(amount=2.0, tenant="t"), "sync-1",
                             enqueue=False)
        assert ctl.stats()["queue"]["depth"] == 0
        ctl.release(decision)


class TestSettlement:
    def test_reconcile_commits_and_is_exactly_once(self):
        ctl = controller(cost_budget=10.0)
        decision = ctl.admit(request(amount=4.0, tenant="t"), "job-1")
        first = ctl.reconcile(request(amount=4.0, tenant="t"), decision,
                              actual_cost=3.0, actual_duration_s=0.1)
        assert first is not None
        assert first["tenant"] == "t"
        assert ctl.reconcile(request(amount=4.0, tenant="t"), decision,
                             actual_cost=3.0, actual_duration_s=0.1) is None
        assert ctl.tenants.spent_window("t") == pytest.approx(3.0)

    def test_release_after_reconcile_is_a_noop(self):
        ctl = controller(cost_budget=10.0)
        decision = ctl.admit(request(amount=4.0, tenant="t"), "job-1")
        ctl.reconcile(request(amount=4.0, tenant="t"), decision,
                      actual_cost=4.0, actual_duration_s=0.1)
        ctl.release(decision)  # must not refund committed spend
        assert ctl.tenants.spent_window("t") == pytest.approx(4.0)

    def test_withdraw_refunds_a_queued_entry(self):
        ctl = controller(cost_budget=4.0)
        ctl.admit(request(amount=4.0, tenant="t"), "job-1")
        assert ctl.withdraw("job-1")
        assert not ctl.withdraw("job-1")
        # Budget free again.
        ctl.admit(request(amount=4.0, tenant="t"), "job-2")


class TestEngineIntegration:
    def test_tenant_budget_enforced_through_submit(self):
        registry = TenantRegistry(
            {"team": TenantPolicy(name="team", cost_budget=2.5)}
        )
        with SchedulingService(max_workers=2, cache_size=0,
                               tenants=registry) as svc:
            req = request(amount=2.0, tenant="team")
            job = svc.submit(req)
            # A bigger-budget request is priced analytically at its
            # declared amount; 3.0 cannot fit in what remains of 2.5
            # whether the first job is still reserved or already settled.
            with pytest.raises(AdmissionRejected) as err:
                svc.submit(request(amount=3.0, tenant="team", seed=7))
            assert err.value.reason == "budget_exhausted"
            svc.result(job, timeout=60)
            assert svc.metrics.counter("jobs_rejected") == 1
            assert svc.metrics.counter("admission_rejected") == 1
            spent = registry.spent_window("team")
            assert 0.0 < spent <= 2.5

    def test_sync_schedule_is_admission_gated(self):
        registry = TenantRegistry(
            {"team": TenantPolicy(name="team", cost_budget=2.5)}
        )
        with SchedulingService(max_workers=1, cache_size=0,
                               tenants=registry) as svc:
            svc.schedule(request(amount=2.0, tenant="team"))
            with pytest.raises(AdmissionRejected) as err:
                svc.schedule(request(amount=3.0, tenant="team", seed=7))
            assert err.value.reason == "budget_exhausted"

    def test_cancelled_job_refunds_its_reservation(self):
        import threading

        registry = TenantRegistry(
            {"team": TenantPolicy(name="team", cost_budget=2.5)}
        )
        with SchedulingService(max_workers=1, cache_size=0,
                               tenants=registry) as svc:
            gate = threading.Event()
            orig = svc._compute

            def slow(req):
                gate.wait(timeout=30)
                return orig(req)

            svc._compute = slow
            running = svc.submit(request(amount=2.0, tenant="team"))
            # The budget is fully reserved; a queued second job would be
            # refused, so cancel the running window via a queued one.
            with pytest.raises(AdmissionRejected):
                svc.submit(request(amount=2.0, tenant="team", seed=7))
            gate.set()
            svc.result(running, timeout=60)
        # After completion the reservation became committed spend.
        assert registry.spent_window("team") > 0.0

    def test_cache_hits_still_commit_spend(self):
        registry = TenantRegistry(
            {"team": TenantPolicy(name="team", cost_budget=100.0)}
        )
        with SchedulingService(max_workers=1, cache_size=16,
                               tenants=registry) as svc:
            req = request(amount=2.0, tenant="team")
            first = svc.schedule(req)
            second = svc.schedule(req)
            assert second.cached and not first.cached
            spent = registry.spent_window("team")
            # Both calls committed their (identical) actual cost.
            assert spent == pytest.approx(2.0 * first.planned_cost)

    def test_ledger_row_carries_admission_diagnostics(self, tmp_path):
        from repro.obs.ledger import RunLedger

        db = tmp_path / "runs.db"
        with RunLedger(str(db)) as ledger:
            with SchedulingService(max_workers=1, cache_size=0,
                                   ledger=ledger) as svc:
                svc.schedule(request(amount=2.0, tenant="team"))
            rows = ledger.runs()
            assert len(rows) == 1
            admission = rows[0].extra["admission"]
            assert admission["tenant"] == "team"
            assert admission["source"] in ("observed", "ledger", "analytic")
            assert "cost_rel_error" in admission

    def test_stats_exposes_admission_section(self):
        with SchedulingService(max_workers=1) as svc:
            stats = svc.stats()
            assert "queue" in stats["admission"]
            assert "tenants" in stats["admission"]
            assert stats["batching"] is not None
