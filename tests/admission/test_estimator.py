"""Cost estimator tiers, reconciliation, and the ledger error report."""

import pytest

from repro.admission import CostEstimator, estimate_error_report
from repro.service.spec import ScheduleRequest


def request(amount=2.0, n_reps=3, seed=42, n_tasks=15):
    return ScheduleRequest.from_dict({
        "workflow": {"family": "montage", "n_tasks": n_tasks, "rng": 1,
                     "sigma_ratio": 0.5},
        "algorithm": "heft_budg",
        "budget": {"amount": amount},
        "evaluation": {"n_reps": n_reps, "seed": seed},
    })


class TestAnalyticTier:
    def test_declared_budget_is_the_ceiling(self):
        est = CostEstimator().estimate(request(amount=3.5))
        assert est.source == "analytic"
        assert est.cost == pytest.approx(3.5)

    def test_duration_scales_with_reps(self):
        estimator = CostEstimator()
        small = estimator.estimate(request(n_reps=1))
        large = estimator.estimate(request(n_reps=100))
        assert large.duration_s > small.duration_s

    def test_budget_axis_request_gets_positive_cost(self):
        req = ScheduleRequest.from_dict({
            "workflow": {"family": "montage", "n_tasks": 15, "rng": 1},
            "algorithm": "heft_budg",
            "budget": {"position": 0.5},
        })
        est = CostEstimator().estimate(req)
        assert est.cost > 0.0


class TestObservedTier:
    def test_first_observation_prices_repeats_exactly(self):
        estimator = CostEstimator()
        req = request()
        first = estimator.estimate(req)
        estimator.observe(req, first, actual_cost=1.25,
                          actual_duration_s=0.5)
        second = estimator.estimate(req)
        assert second.source == "observed"
        assert second.cost == pytest.approx(1.25, abs=0.0)
        assert second.duration_s == pytest.approx(0.5, abs=0.0)

    def test_family_members_share_calibration(self):
        # Same spec modulo seed => same family => same observed price.
        estimator = CostEstimator()
        estimator.observe(request(seed=1), estimator.estimate(request(seed=1)),
                          actual_cost=2.0, actual_duration_s=1.0)
        est = estimator.estimate(request(seed=999))
        assert est.source == "observed"
        assert est.cost == pytest.approx(2.0)

    def test_observe_reports_signed_relative_errors(self):
        estimator = CostEstimator()
        req = request(amount=2.0)
        est = estimator.estimate(req)  # analytic: cost == 2.0
        diag = estimator.observe(req, est, actual_cost=1.0,
                                 actual_duration_s=0.0)
        assert diag["cost_rel_error"] == pytest.approx(1.0)  # (2-1)/1
        assert diag["duration_rel_error"] is None  # zero actual
        accuracy = estimator.accuracy()
        assert accuracy["heft_budg"]["n"] == 1.0
        assert accuracy["heft_budg"]["cost_mare"] == pytest.approx(1.0)


class TestLedgerTier:
    def test_ledger_rows_calibrate_a_fresh_estimator(self, tmp_path):
        from repro.obs.ledger import RunLedger

        from repro.service import SchedulingService

        db = tmp_path / "runs.db"
        with RunLedger(str(db)) as ledger:
            with SchedulingService(max_workers=1, cache_size=0,
                                   ledger=ledger) as svc:
                svc.schedule(request())
            fresh = CostEstimator(ledger)
            est = fresh.estimate(request())
            assert est.source == "ledger"
            assert est.cost > 0.0

    def test_estimate_error_report_aggregates(self, tmp_path):
        from repro.obs.ledger import RunLedger

        from repro.service import SchedulingService

        db = tmp_path / "runs.db"
        with RunLedger(str(db)) as ledger:
            with SchedulingService(max_workers=1, cache_size=0,
                                   ledger=ledger) as svc:
                svc.schedule(request(seed=1))
                svc.schedule(request(seed=2))
            report = estimate_error_report(ledger)
        assert "heft_budg" in report
        entry = report["heft_budg"]
        assert entry["n"] == 2
        assert sum(entry["sources"].values()) == 2
        assert "cost_mare" in entry

    def test_broken_ledger_never_blocks_admission(self):
        class Broken:
            enabled = True

            def runs(self, **kwargs):
                raise RuntimeError("corrupt archive")

        est = CostEstimator(Broken()).estimate(request(amount=2.0))
        assert est.source == "analytic"
        assert est.cost == pytest.approx(2.0)
