"""Admission queue: priority classes, fair sharing, starvation aging."""

import pytest

from repro.admission import AdmissionQueue, QueuedEntry
from repro.errors import AdmissionRejected


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def entry(job_id, tenant="default", priority="batch"):
    return QueuedEntry(job_id=job_id, tenant=tenant, priority=priority)


class TestPriorityOrdering:
    def test_interactive_beats_batch_beats_best_effort(self):
        q = AdmissionQueue(clock=FakeClock())
        q.push(entry("be", priority="best_effort"))
        q.push(entry("ba", priority="batch"))
        q.push(entry("ia", priority="interactive"))
        assert q.pop().job_id == "ia"
        assert q.pop().job_id == "ba"
        assert q.pop().job_id == "be"

    def test_fifo_within_a_tenant_and_class(self):
        q = AdmissionQueue(clock=FakeClock())
        for i in range(3):
            q.push(entry(f"j{i}"))
        assert [q.pop().job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_empty_pop_returns_none_immediately(self):
        q = AdmissionQueue(clock=FakeClock())
        assert q.pop() is None


class TestStarvationAging:
    def test_best_effort_promotes_after_waiting(self):
        clock = FakeClock()
        q = AdmissionQueue(aging_s=10.0, clock=clock)
        q.push(entry("old", priority="best_effort"))
        clock.advance(25.0)  # two promotion steps: best_effort -> interactive
        q.push(entry("new", priority="interactive"))
        # Same effective rank; the starved entry has both lower virtual
        # service (equal) and the earlier seq, so it goes first.
        assert q.pop().job_id == "old"
        stats = q.stats()
        assert stats["promoted_pops"] == 1

    def test_no_promotion_before_aging_interval(self):
        clock = FakeClock()
        q = AdmissionQueue(aging_s=10.0, clock=clock)
        q.push(entry("be", priority="best_effort"))
        clock.advance(9.0)
        q.push(entry("ba", priority="batch"))
        assert q.pop().job_id == "ba"

    def test_effective_rank_floor_is_zero(self):
        e = entry("x", priority="best_effort")
        e.enqueued_at = 0.0
        assert e.effective_rank(1e6, 10.0) == 0


class TestFairSharing:
    def test_interleaves_tenants_under_contention(self):
        clock = FakeClock()
        q = AdmissionQueue(clock=clock)
        for i in range(3):
            q.push(entry(f"a{i}", tenant="a"))
        for i in range(3):
            q.push(entry(f"b{i}", tenant="b"))
        order = [q.pop().tenant for _ in range(6)]
        # Strict FIFO would be a,a,a,b,b,b; fair sharing alternates.
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weights_skew_the_share(self):
        clock = FakeClock()
        weights = {"heavy": 2.0, "light": 1.0}
        q = AdmissionQueue(clock=clock, weight_of=lambda t: weights[t])
        for i in range(4):
            q.push(entry(f"h{i}", tenant="heavy"))
        for i in range(2):
            q.push(entry(f"l{i}", tenant="light"))
        first_three = [q.pop().tenant for _ in range(3)]
        assert first_three.count("heavy") == 2
        assert first_three.count("light") == 1

    def test_eligibility_filter_skips_capped_tenants(self):
        q = AdmissionQueue(clock=FakeClock())
        q.push(entry("a0", tenant="a", priority="interactive"))
        q.push(entry("b0", tenant="b", priority="best_effort"))
        got = q.pop(eligible=lambda tenant: tenant == "b", timeout=0.01)
        assert got.job_id == "b0"
        # And when nobody is eligible the bounded pop times out.
        assert q.pop(eligible=lambda tenant: False, timeout=0.01) is None


class TestCapacityAndRemoval:
    def test_queue_full_is_typed(self):
        q = AdmissionQueue(max_depth=1, clock=FakeClock())
        q.push(entry("a"))
        with pytest.raises(AdmissionRejected, match="queue is full") as err:
            q.push(entry("b"))
        assert err.value.reason == "queue_full"
        assert err.value.queue_depth == 1

    def test_remove_withdraws_and_reports(self):
        q = AdmissionQueue(clock=FakeClock())
        q.push(entry("a"))
        q.push(entry("b"))
        removed = q.remove("a")
        assert removed is not None and removed.job_id == "a"
        assert q.remove("a") is None
        assert q.pop().job_id == "b"
        assert q.stats()["removed"] == 1

    def test_requeue_preserves_position_and_age(self):
        clock = FakeClock()
        q = AdmissionQueue(clock=clock)
        q.push(entry("first"))
        q.push(entry("second"))
        popped = q.pop()
        assert popped.job_id == "first"
        q.requeue(popped)
        assert q.pop().job_id == "first"  # seq order survived the round trip

    def test_stats_shape(self):
        clock = FakeClock()
        q = AdmissionQueue(max_depth=8, clock=clock)
        q.push(entry("a", tenant="t1", priority="interactive"))
        q.push(entry("b", tenant="t2"))
        clock.advance(2.0)
        stats = q.stats()
        assert stats["depth"] == 2
        assert stats["by_priority"] == {"batch": 1, "interactive": 1}
        assert stats["by_tenant"] == {"t1": 1, "t2": 1}
        assert stats["oldest_wait_s"] == pytest.approx(2.0)
