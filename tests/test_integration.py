"""End-to-end integration tests reproducing the paper's headline claims.

Each test runs the real pipeline (generate → schedule → simulate) at reduced
scale and checks the *shape* of the result the paper reports. The full-scale
regenerators live in benchmarks/.
"""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    execute_schedule,
    generate,
    make_scheduler,
    sample_weights,
)
from repro.experiments import ExperimentConfig, run_point, run_sweep
from repro.experiments.budgets import high_budget, minimal_budget
from repro.rng import spawn


@pytest.fixture(scope="module", params=["cybershake", "ligo", "montage"])
def family(request):
    return request.param


@pytest.fixture(scope="module")
def wf(family):
    return generate(family, 30, rng=13, sigma_ratio=0.5)


class TestBudgetEnforcement:
    """§V-B: 'The budget constraint is respected in almost all cases.'"""

    def test_stochastic_runs_respect_budget(self, wf):
        budget = minimal_budget(wf, PAPER_PLATFORM) * 2.0
        records = run_point(wf, PAPER_PLATFORM, "heft_budg", budget, 10, rng=3)
        valid = sum(r.valid for r in records)
        assert valid >= 9  # at most one stochastic outlier

    def test_extreme_sigma_still_respected(self, family):
        """§V-B: budget respected 'even in scenarios where task weights can
        be twice their mean value' (sigma = 100%)."""
        wild = generate(family, 30, rng=13, sigma_ratio=1.0)
        budget = minimal_budget(wild, PAPER_PLATFORM) * 2.5
        records = run_point(wild, PAPER_PLATFORM, "heft_budg", budget, 10, rng=3)
        valid = sum(r.valid for r in records)
        assert valid >= 8


class TestConvergenceToBaseline:
    """§V-B: with enough budget the budget-aware variants reach the
    baseline makespan."""

    @pytest.mark.parametrize("pair", [("heft", "heft_budg"),
                                      ("minmin", "minmin_budg")])
    def test_high_budget_matches_baseline_makespan(self, wf, pair):
        baseline, budgeted = pair
        b_high = high_budget(wf, PAPER_PLATFORM)
        mk_base = evaluate_schedule(
            wf, PAPER_PLATFORM,
            make_scheduler(baseline).schedule(wf, PAPER_PLATFORM, math.inf).schedule,
        ).makespan
        mk_budg = evaluate_schedule(
            wf, PAPER_PLATFORM,
            make_scheduler(budgeted).schedule(wf, PAPER_PLATFORM, b_high).schedule,
        ).makespan
        assert mk_budg <= mk_base * 1.05


class TestMakespanMonotonicity:
    """Figure 1 first column: makespan falls (weakly) as budget grows."""

    def test_mean_makespan_decreases_from_min_to_high(self, wf):
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        mk = []
        for budget in (b_min, 0.5 * (b_min + b_high), b_high):
            res = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget)
            mk.append(evaluate_schedule(wf, PAPER_PLATFORM, res.schedule).makespan)
        assert mk[2] <= mk[1] * 1.05 <= mk[0] * 1.2


class TestSigmaImpact:
    """§V-B: larger sigma needs a larger budget for the same makespan."""

    def test_sigma_inflates_minimal_budget(self, family):
        calm = generate(family, 30, rng=13, sigma_ratio=0.25)
        wild = calm.with_sigma_ratio(1.0)
        assert minimal_budget(wild, PAPER_PLATFORM) > minimal_budget(
            calm, PAPER_PLATFORM
        )


class TestRefinedVariants:
    """§V-C headline: refined variants shorten makespans within budget,
    with fewer or equal VMs."""

    def test_plus_improves_or_matches_everywhere(self):
        wf = generate("montage", 20, rng=2, sigma_ratio=0.5)
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        for budget in (1.5 * b_min, 0.5 * (b_min + b_high)):
            plain = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, budget)
            plus = make_scheduler("heft_budg_plus").schedule(wf, PAPER_PLATFORM, budget)
            mk_plain = evaluate_schedule(wf, PAPER_PLATFORM, plain.schedule).makespan
            mk_plus = evaluate_schedule(wf, PAPER_PLATFORM, plus.schedule).makespan
            assert mk_plus <= mk_plain + 1e-9
            run = evaluate_schedule(wf, PAPER_PLATFORM, plus.schedule)
            assert run.total_cost <= budget


class TestCompetitorShapes:
    """Figure 3 shapes: BDT invalid at tight budgets; CG budget-insensitive."""

    def test_bdt_low_validity_at_minimum(self, wf, family):
        if family == "ligo":
            # LIGO's minimal budget is dominated by external-I/O dollars that
            # every algorithm pays alike, leaving BDT's eager VM spending
            # within B_min on some instances; the compute-dominated families
            # expose the overrun reliably.
            pytest.skip("B_min is I/O-dominated on LIGO")
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        records = run_point(wf, PAPER_PLATFORM, "bdt", b_min, 5, rng=1)
        assert sum(r.valid for r in records) <= 2

    def test_cg_cost_insensitive_to_budget(self):
        wf = generate("montage", 20, rng=2, sigma_ratio=0.5)
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        costs = []
        for budget in (2 * b_min, b_high):
            res = make_scheduler("cg").schedule(wf, PAPER_PLATFORM, budget)
            costs.append(
                evaluate_schedule(wf, PAPER_PLATFORM, res.schedule).total_cost
            )
        # CG's spend barely moves while the budget grows a lot
        assert abs(costs[1] - costs[0]) <= 0.35 * (b_high - 2 * b_min)


class TestSweepPipeline:
    def test_full_sweep_smoke(self):
        cfg = ExperimentConfig(
            families=("cybershake",), n_tasks=20, n_instances=1,
            budgets_per_workflow=3, n_reps=2,
            algorithms=("heft", "heft_budg"), seed=1,
        )
        records = run_sweep(cfg)
        assert len(records) == 12
        assert all(r.makespan > 0 and r.total_cost > 0 for r in records)
