"""Unit tests for unit helpers and the rng utilities."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.units import (
    GB,
    HOUR,
    MB,
    ceil_seconds,
    per_gb_month,
    per_hour,
    pretty_bytes,
    pretty_money,
    pretty_seconds,
)


class TestUnits:
    def test_per_hour(self):
        assert per_hour(3.6) == pytest.approx(0.001)

    def test_per_gb_month(self):
        # $0.03/GB/month over 2 GB => 0.06 $/month => /seconds-per-month
        rate = per_gb_month(0.03, 2 * GB)
        assert rate * 30 * 24 * 3600 == pytest.approx(0.06)

    def test_ceil_seconds_rounds_up(self):
        assert ceil_seconds(10.2) == 11.0

    def test_ceil_seconds_integer_stays(self):
        assert ceil_seconds(10.0) == 10.0

    def test_ceil_seconds_float_fuzz(self):
        assert ceil_seconds(10.0 + 1e-12) == 10.0
        assert ceil_seconds(10.0 - 1e-12) == 10.0

    def test_ceil_seconds_nonpositive(self):
        assert ceil_seconds(0.0) == 0.0
        assert ceil_seconds(-5.0) == 0.0

    def test_pretty_bytes(self):
        assert pretty_bytes(1.2 * GB) == "1.20 GB"
        assert pretty_bytes(500) == "500 B"

    def test_pretty_seconds(self):
        assert pretty_seconds(2 * HOUR + 3 * 60) == "2h03m"
        assert pretty_seconds(45.23).startswith("45.2")

    def test_pretty_money(self):
        assert pretty_money(1234.5) == "$1,234.50"


class TestRng:
    def test_as_generator_from_int_deterministic(self):
        a = rng_mod.as_generator(7).random()
        b = rng_mod.as_generator(7).random()
        assert a == b

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_mod.as_generator(g) is g

    def test_as_generator_none(self):
        assert isinstance(rng_mod.as_generator(None), np.random.Generator)

    def test_spawn_children_independent(self):
        children = rng_mod.spawn(123, 5)
        values = [c.random() for c in children]
        assert len(set(values)) == 5

    def test_spawn_deterministic(self):
        a = [g.random() for g in rng_mod.spawn(9, 3)]
        b = [g.random() for g in rng_mod.spawn(9, 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            rng_mod.spawn(0, -1)

    def test_spawn_from_generator_advances(self):
        g = np.random.default_rng(5)
        first = rng_mod.spawn(g, 2)
        second = rng_mod.spawn(g, 2)
        assert [c.random() for c in first] != [c.random() for c in second]

    def test_stream_yields_distinct(self):
        it = rng_mod.stream(11)
        values = [next(it).random() for _ in range(4)]
        assert len(set(values)) == 4
