"""ClusterPool over in-process workers: ordering, faults, reassignment."""

import threading
import time

import pytest

from repro.cluster import ClusterPool
from repro.cluster.worker import ClusterWorker
from repro.errors import ClusterError, ClusterProtocolError, WorkerCrashError
from repro.obs.events import NODE_JOINED, NODE_LOST, SHARD_REASSIGNED, EventBus
from repro.service.metrics import MetricsRegistry


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.05)
    return x * x


def _boom(x):
    if x == 7:
        raise ValueError("item 7 is cursed")
    return x


@pytest.fixture()
def two_workers():
    with ClusterWorker(port=0, slots=1, heartbeat_s=0.2) as a, ClusterWorker(
        port=0, slots=1, heartbeat_s=0.2
    ) as b:
        yield a, b


def _addresses(*workers):
    return ",".join(f"{w.address[0]}:{w.address[1]}" for w in workers)


class TestMap:
    def test_ordered_results_match_serial(self, two_workers):
        with ClusterPool(_addresses(*two_workers)) as pool:
            assert pool.workers == 2
            assert pool.alive_count == 2
            got = pool.map(_square, list(range(37)), timeout=60)
        assert got == [x * x for x in range(37)]

    def test_empty_and_single_item(self, two_workers):
        with ClusterPool(_addresses(*two_workers)) as pool:
            assert pool.map(_square, [], timeout=60) == []
            assert pool.run(_square, 9, timeout=60) == 81

    def test_fn_exception_propagates_unchanged(self, two_workers):
        with ClusterPool(_addresses(*two_workers)) as pool:
            with pytest.raises(ValueError, match="item 7 is cursed"):
                pool.map(_boom, list(range(12)), timeout=60)
            # a task failure is the item's answer, not a node fault
            assert pool.n_crashes == 0
            assert pool.alive_count == 2
            # the pool stays usable for the next map
            assert pool.map(_square, [4, 5], timeout=60) == [16, 25]

    def test_worker_stats_shape(self, two_workers):
        with ClusterPool(_addresses(*two_workers)) as pool:
            pool.map(_square, list(range(8)), timeout=60)
            stats = pool.worker_stats()
        assert len(stats) == 2
        assert sum(s["tasks"] for s in stats.values()) == 8
        for s in stats.values():
            assert s["alive"] is True
            assert s["slots"] == 1
            assert s["busy_s"] >= 0.0


class TestFaults:
    def test_connect_refused_is_cluster_error(self):
        with pytest.raises(ClusterError, match="cannot connect"):
            ClusterPool("127.0.0.1:1")  # reserved port, nothing listens

    def test_token_mismatch_rejected(self):
        with ClusterWorker(port=0, token="right") as w:
            with pytest.raises(ClusterProtocolError, match="refused"):
                ClusterPool(_addresses(w), token="wrong")
            # matching token connects fine
            with ClusterPool(_addresses(w), token="right") as pool:
                assert pool.map(_square, [3], timeout=60) == [9]

    def test_node_loss_reassigns_and_completes(self, two_workers):
        a, b = two_workers
        events = EventBus()
        metrics = MetricsRegistry()
        with ClusterPool(
            _addresses(a, b),
            events=events,
            metrics=metrics,
            heartbeat_timeout=5.0,
        ) as pool:
            assert len(events.history(types=[NODE_JOINED])) == 2
            killer = threading.Timer(0.4, b.close)
            killer.start()
            try:
                got = pool.map(_slow_square, list(range(40)), timeout=120)
            finally:
                killer.cancel()
            assert got == [x * x for x in range(40)]
            assert pool.n_crashes == 1
            assert pool.alive_count == 1
        lost = events.history(types=[NODE_LOST])
        assert len(lost) == 1
        assert lost[0].data["node"] == f"{b.address[0]}:{b.address[1]}"
        # the killed node held in-flight shards (bounded at 2 x slots),
        # each either reassigned or already answered by a duplicate
        reassigned = events.history(types=[SHARD_REASSIGNED])
        assert len(reassigned) == pool.n_reassignments
        if pool.n_reassignments:
            counters = metrics.snapshot()["counters"]
            assert counters["cluster_reassignments"] == pool.n_reassignments

    def test_all_nodes_lost_raises_worker_crash(self):
        with ClusterWorker(port=0, slots=1, heartbeat_s=0.2) as w:
            with ClusterPool(
                _addresses(w), heartbeat_timeout=5.0
            ) as pool:
                threading.Timer(0.3, w.close).start()
                with pytest.raises(WorkerCrashError) as excinfo:
                    pool.map(_slow_square, list(range(50)), timeout=120)
                assert excinfo.value.shard_indices  # names the unfinished work
                assert pool.alive_count == 0

    def test_map_timeout(self, two_workers):
        with ClusterPool(_addresses(*two_workers)) as pool:
            with pytest.raises(TimeoutError):
                pool.map(time.sleep, [5.0, 5.0], timeout=0.5)

    def test_closed_pool_rejects_map(self, two_workers):
        pool = ClusterPool(_addresses(*two_workers))
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_square, [1])


class TestStealing:
    def test_idle_node_duplicates_slow_shard_first_result_wins(self):
        # one very slow item: node A gets stuck on it, node B finishes the
        # rest, goes idle, and steals a duplicate after steal_after_s.
        with ClusterWorker(port=0, slots=1, heartbeat_s=0.2) as a, (
            ClusterWorker(port=0, slots=1, heartbeat_s=0.2)
        ) as b:
            with ClusterPool(
                _addresses(a, b), steal_after_s=0.3
            ) as pool:
                got = pool.map(_slow_square, list(range(10)), timeout=120)
                assert got == [x * x for x in range(10)]
                # duplicates (if any fired) were suppressed: every node
                # still alive, nothing retried as a fault
                assert pool.n_crashes == 0
