"""Cluster execution is bit-identical to serial, even through node loss.

Real worker *processes* (launched through the CLI entry point, exactly as
a deployment would) back these tests, so the full path is exercised:
pickle → socket → remote execution → socket → ordered merge.
"""

import os
import re
import signal
import subprocess
import sys
import threading
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cluster import ClusterPool
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point, run_sweep

SRC = Path(__file__).resolve().parents[2] / "src"


def smoke_config(seed):
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=15, n_instances=1,
        budgets_per_workflow=2, n_reps=8, seed=seed,
        algorithms=("heft_budg", "minmin"),
    )


def strip_wallclock(records):
    return [replace(r, sched_seconds=0.0) for r in records]


def _spawn_worker():
    """Launch one ``repro-exp worker`` subprocess; returns (proc, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import main; import sys; sys.exit(main())",
            "worker", "--listen", "127.0.0.1:0", "--heartbeat", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker did not announce its address: {line!r}")
    return proc, match.group(1)


def _reap(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture(scope="module")
def worker_nodes():
    spawned = [_spawn_worker() for _ in range(2)]
    yield ",".join(address for _proc, address in spawned)
    _reap(*(proc for proc, _address in spawned))


class TestClusterSweepParity:
    def test_run_sweep_bit_identical_to_serial(self, worker_nodes):
        serial = run_sweep(smoke_config(2018))
        clustered = run_sweep(smoke_config(2018), workers=worker_nodes)
        assert strip_wallclock(clustered) == strip_wallclock(serial)

    def test_run_point_bit_identical_to_serial(self, worker_nodes):
        from repro.experiments.budgets import high_budget
        from repro.platform.cloud import PAPER_PLATFORM
        from repro.workflow.generators import generate

        wf = generate("cybershake", 20, rng=5, sigma_ratio=0.5)
        budget = high_budget(wf, PAPER_PLATFORM)
        serial = run_point(wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42)
        clustered = run_point(
            wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42,
            workers=worker_nodes,
        )
        assert strip_wallclock(clustered) == strip_wallclock(serial)


class TestKillNodeParity:
    def test_sigkill_one_node_mid_sweep_still_bit_identical(
        self, monkeypatch
    ):
        """Hard-kill a worker once the sweep is demonstrably mid-flight.

        The victim is killed the instant it receives its *first* shard
        (dispatch is recorded before ``_send_shard`` returns), so that
        shard is provably dispatched-and-unanswered when the SIGKILL
        lands and the sweep can only complete through reassignment.
        Killing on a later trigger (say, the first *result*) is racy: a
        starved coordinator thread can wake to find every result already
        queued and nothing left in flight.
        """
        procs = {}
        (proc_a, addr_a), (proc_b, addr_b) = _spawn_worker(), _spawn_worker()
        procs[addr_a], procs[addr_b] = proc_a, proc_b
        pool_box = {}
        try:
            config = smoke_config(7)
            serial = run_sweep(config)

            def instrumented_make_pool(backend, **kwargs):
                pool = ClusterPool(
                    ",".join(procs), heartbeat_timeout=5.0, **kwargs
                )
                pool_box["pool"] = pool
                original = pool._send_shard
                dispatched_to = []
                fired = threading.Event()

                def hooked(fn, items, index, node, state, trace_ctx):
                    sent = original(fn, items, index, node, state, trace_ctx)
                    if sent and not fired.is_set():
                        if node.address not in dispatched_to:
                            dispatched_to.append(node.address)
                        if len(dispatched_to) == 2:
                            fired.set()
                            pool_box["victim"] = node.address
                            procs[node.address].send_signal(signal.SIGKILL)
                    return sent

                pool._send_shard = hooked
                return pool

            monkeypatch.setattr(
                "repro.experiments.runner.make_pool", instrumented_make_pool
            )
            clustered = run_sweep(config, workers=",".join(procs))

            assert strip_wallclock(clustered) == strip_wallclock(serial)
            pool = pool_box["pool"]
            assert pool.n_crashes == 1
            assert pool.n_reassignments >= 1
            assert procs[pool_box["victim"]].wait(timeout=10) is not None
        finally:
            _reap(*procs.values())
