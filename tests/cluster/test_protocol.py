"""Wire protocol: framing, payloads, handshakes, and exact roundtrips."""

import json
import math
import socket

import pytest

from repro.cluster import protocol
from repro.errors import ClusterProtocolError, ReproError
from repro.parallel import Shard, ShardPlan, ShardStats


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        sent = {"type": "hello", "version": 1, "nested": {"x": [1, 2.5]}}
        protocol.send_frame(a, sent)
        protocol.send_frame(a, protocol.bye_frame("done"))
        assert protocol.recv_frame(b) == sent
        assert protocol.recv_frame(b)["type"] == "bye"
        a.close()
        assert protocol.recv_frame(b) is None  # clean EOF
    finally:
        a.close()
        b.close()


def test_truncated_frame_raises():
    a, b = socket.socketpair()
    try:
        import struct

        a.sendall(struct.pack("!I", 100) + b'{"type"')
        a.close()
        with pytest.raises(ClusterProtocolError, match="mid-frame"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_oversized_frame_announcement_rejected():
    a, b = socket.socketpair()
    try:
        import struct

        a.sendall(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(ClusterProtocolError, match="max"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_non_json_frame_rejected():
    a, b = socket.socketpair()
    try:
        import struct

        body = b"\xff\xfe not json"
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(ClusterProtocolError, match="undecodable"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_payload_roundtrip_arbitrary_picklables():
    obj = {"fn": max, "items": [(1, 2), {"a": math.pi}], "inf": math.inf}
    assert protocol.decode_payload(protocol.encode_payload(obj)) == obj


def test_exception_roundtrip_preserves_type():
    doc = protocol.encode_exception(ReproError("boom"))
    exc = protocol.decode_exception(doc)
    assert isinstance(exc, ReproError)
    assert str(exc) == "boom"


def test_exception_roundtrip_degrades_to_runtime_error():
    exc = protocol.decode_exception(
        {"payload": None, "kind_name": "WeirdError", "message": "gone"}
    )
    assert isinstance(exc, RuntimeError)
    assert "WeirdError" in str(exc) and "gone" in str(exc)


def test_handshake_version_mismatch_rejected():
    frame = protocol.hello_frame()
    frame["version"] = protocol.PROTOCOL_VERSION + 1
    with pytest.raises(ClusterProtocolError, match="version mismatch"):
        protocol.check_handshake(frame, expect="hello")


def test_handshake_token_mismatch_rejected():
    frame = protocol.hello_frame(token="alpha")
    with pytest.raises(ClusterProtocolError, match="token"):
        protocol.check_handshake(frame, expect="hello", token="beta")
    # and matches pass
    protocol.check_handshake(
        protocol.hello_frame(token="beta"), expect="hello", token="beta"
    )


def test_handshake_wrong_type_and_eof_rejected():
    with pytest.raises(ClusterProtocolError, match="expected"):
        protocol.check_handshake(protocol.bye_frame(), expect="welcome")
    with pytest.raises(ClusterProtocolError, match="closed"):
        protocol.check_handshake(None, expect="welcome")


def test_shard_wire_roundtrip():
    plan = ShardPlan.plan(100, 7)
    for shard in plan.shards:
        doc = json.loads(json.dumps(protocol.shard_to_wire(shard)))
        assert protocol.shard_from_wire(doc) == shard
    with pytest.raises(ClusterProtocolError):
        protocol.shard_from_wire({"index": 0})


def test_stats_wire_roundtrip_is_bit_exact():
    values = [0.1, -1.5e-17, 3.141592653589793, 2.0 ** -1074, 1e300]
    stats = ShardStats.of(values)
    doc = json.loads(json.dumps(protocol.stats_to_wire(stats)))
    back = protocol.stats_from_wire(doc)
    assert back == stats  # dataclass eq: every field, bit for bit


def test_stats_wire_roundtrip_empty_uses_null_sentinels():
    doc = protocol.stats_to_wire(ShardStats())
    assert doc["minimum"] is None and doc["maximum"] is None
    back = protocol.stats_from_wire(json.loads(json.dumps(doc)))
    assert back == ShardStats()
    assert back.minimum == math.inf and back.maximum == -math.inf


def test_parse_address():
    assert protocol.parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert protocol.parse_address(" host:0 ") == ("host", 0)
    for bad in ("hostonly", ":9000", "h:abc", "h:70000", "h:-1"):
        with pytest.raises(ClusterProtocolError):
            protocol.parse_address(bad)
