"""Backend selection (`parse_workers`/`make_pool`) and REPRO_WORKERS."""

import pytest

from repro.cluster import BackendSpec, make_pool, parse_workers
from repro.errors import WorkerConfigError
from repro.parallel import WorkerPool, resolve_workers


class TestParseWorkers:
    def test_int_paths(self):
        assert parse_workers(0) == BackendSpec("serial", 0, ())
        assert parse_workers(1).is_serial
        assert parse_workers(4) == BackendSpec("process", 4, ())
        assert parse_workers(None).is_serial

    def test_numeric_strings_behave_like_ints(self):
        assert parse_workers(" 3 ") == BackendSpec("process", 3, ())
        assert parse_workers("0").is_serial
        assert parse_workers("").is_serial

    def test_node_list(self):
        spec = parse_workers(" 127.0.0.1:9000, 127.0.0.1:9001, ")
        assert spec.kind == "cluster"
        assert spec.nodes == ("127.0.0.1:9000", "127.0.0.1:9001")
        assert not spec.is_serial
        assert "cluster[" in spec.describe()

    def test_spec_passthrough(self):
        spec = BackendSpec("process", 2, ())
        assert parse_workers(spec) is spec

    def test_rejections(self):
        with pytest.raises(WorkerConfigError):
            parse_workers("not-a-node-list")
        with pytest.raises(WorkerConfigError):
            parse_workers("host:port")  # non-numeric port
        with pytest.raises(WorkerConfigError):
            parse_workers(",,,")  # separators without any node
        with pytest.raises(WorkerConfigError):
            parse_workers(True)  # bool is not a worker count
        with pytest.raises(WorkerConfigError):
            parse_workers(3.5)


class TestMakePool:
    def test_serial_spec_yields_no_pool(self):
        assert make_pool(parse_workers(0)) is None
        assert make_pool(parse_workers(1)) is None

    def test_process_spec_yields_worker_pool(self):
        pool = make_pool(parse_workers(2))
        try:
            assert isinstance(pool, WorkerPool)
            assert pool.map(abs, [-1, -2, -3]) == [1, 2, 3]
        finally:
            pool.close()

    def test_max_workers_caps_process_pool(self):
        pool = make_pool(parse_workers(8), max_workers=2)
        try:
            assert pool.workers == 2
        finally:
            pool.close()


class TestReproWorkersEnv:
    """REPRO_WORKERS steers the default only — explicit flags win."""

    def test_env_override_applies_at_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(0) == 3
        assert parse_workers(0) == BackendSpec("process", 3, ())

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2
        assert resolve_workers(-1) >= 1  # autodetect, not env

    def test_unset_or_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(0) == 0
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert resolve_workers(0) == 0

    def test_non_integer_env_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(WorkerConfigError, match="integer"):
            resolve_workers(0)

    def test_non_positive_env_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(WorkerConfigError, match="positive"):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        with pytest.raises(WorkerConfigError, match="positive"):
            resolve_workers(0)
