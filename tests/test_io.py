"""Tests for JSON persistence of schedules and results."""

import io
import json

import pytest

from repro import (
    PAPER_PLATFORM,
    ScheduleValidationError,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.io import (
    dump_schedule,
    load_schedule,
    result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=12, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def sched(wf):
    return make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, 1.0).schedule


class TestScheduleRoundTrip:
    def test_dict_roundtrip_identical(self, wf, sched):
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.order == sched.order
        assert back.assignment == sched.assignment
        assert back.categories == sched.categories
        back.validate(wf)

    def test_roundtrip_replays_identically(self, wf, sched):
        back = schedule_from_dict(schedule_to_dict(sched))
        a = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        b = evaluate_schedule(wf, PAPER_PLATFORM, back)
        assert a.makespan == b.makespan
        assert a.total_cost == b.total_cost

    def test_file_roundtrip(self, wf, sched, tmp_path):
        path = str(tmp_path / "sched.json")
        dump_schedule(sched, path)
        back = load_schedule(path)
        assert back.assignment == sched.assignment

    def test_stream_roundtrip(self, sched):
        buf = io.StringIO()
        dump_schedule(sched, buf)
        buf.seek(0)
        back = load_schedule(buf)
        assert back.order == sched.order

    def test_json_is_plain(self, sched):
        text = json.dumps(schedule_to_dict(sched))
        assert "cat" in text  # categories embedded by value

    def test_unknown_format_rejected(self):
        with pytest.raises(ScheduleValidationError, match="format"):
            schedule_from_dict({"format": "bogus/9"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ScheduleValidationError, match="malformed"):
            schedule_from_dict({"format": "repro.schedule/1", "order": []})

    def test_multicore_category_preserved(self):
        from repro import Schedule, StochasticWeight, Task, VMCategory, Workflow

        wf = Workflow("w")
        wf.add_task(Task("t", StochasticWeight(1e9)))
        wf.freeze()
        cat = VMCategory("dual", speed=1e9, hourly_cost=1.0, cores=2)
        sched = Schedule(order=["t"], assignment={"t": 0}, categories={0: cat})
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.categories[0].cores == 2


class TestResultExport:
    def test_result_dict_complete(self, wf, sched):
        run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        data = result_to_dict(run)
        assert data["makespan"] == run.makespan
        assert data["total_cost"] == pytest.approx(run.total_cost)
        assert set(data["tasks"]) == set(wf.tasks)
        assert len(data["vms"]) == run.n_vms

    def test_result_json_serializable(self, wf, sched):
        run = evaluate_schedule(wf, PAPER_PLATFORM, sched)
        text = json.dumps(result_to_dict(run))
        assert json.loads(text)["format"] == "repro.result/1"


class TestPlatformRoundTrip:
    def test_paper_platform_roundtrip(self):
        from repro.io import platform_from_dict, platform_to_dict

        back = platform_from_dict(platform_to_dict(PAPER_PLATFORM))
        assert back.categories == PAPER_PLATFORM.categories
        assert back.bandwidth == PAPER_PLATFORM.bandwidth
        assert back.transfer_cost_per_byte == PAPER_PLATFORM.transfer_cost_per_byte
        assert back.name == PAPER_PLATFORM.name

    def test_json_serializable(self):
        from repro.io import platform_from_dict, platform_to_dict

        text = json.dumps(platform_to_dict(PAPER_PLATFORM))
        back = platform_from_dict(json.loads(text))
        assert back.n_categories == PAPER_PLATFORM.n_categories

    def test_rejects_unknown_format(self):
        from repro import PlatformError
        from repro.io import platform_from_dict

        with pytest.raises(PlatformError, match="unsupported platform format"):
            platform_from_dict({"format": "repro.platform/999"})

    def test_rejects_malformed_payload(self):
        from repro import PlatformError
        from repro.io import platform_from_dict

        with pytest.raises(PlatformError, match="malformed platform payload"):
            platform_from_dict({"format": "repro.platform/1"})


class TestFingerprint:
    def test_canonical_json_is_order_insensitive(self):
        from repro.io import canonical_json

        assert canonical_json({"a": 1, "b": [2, 3]}) == canonical_json(
            {"b": [2, 3], "a": 1}
        )

    def test_fingerprint_stable_and_distinct(self):
        from repro.io import fingerprint

        a = fingerprint({"x": 1})
        assert a == fingerprint({"x": 1})
        assert a != fingerprint({"x": 2})
        assert len(a) == 64

    def test_fingerprint_rejects_nan(self):
        from repro.io import fingerprint

        with pytest.raises(ValueError):
            fingerprint({"x": float("nan")})
