"""Additional property-based tests: DAX round-trips, schedule persistence,
HEFT-order stability, and risk-probability consistency."""

import math

from hypothesis import given, settings, strategies as st

from repro import parse_dax, write_dax
from repro.experiments.risk import Distribution
from repro.io import schedule_from_dict, schedule_to_dict
from repro.platform.cloud import make_linear_platform
from repro.scheduling.heft import HeftBudgScheduler
from repro.workflow.analysis import heft_order
from repro.workflow.generators import generate_random_layered

import numpy as np

seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def workflows(draw, max_tasks: int = 20):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    depth = draw(st.integers(min_value=1, max_value=5))
    sigma = draw(st.sampled_from([0.0, 0.5, 1.0]))
    return generate_random_layered(
        n, depth=depth, sigma_ratio=sigma, rng=draw(seeds)
    )


@given(wf=workflows())
@settings(max_examples=25, deadline=None)
def test_dax_roundtrip_preserves_structure(wf):
    back = parse_dax(write_dax(wf))
    assert back.n_tasks == wf.n_tasks
    assert back.n_edges == wf.n_edges
    for tid in wf.tasks:
        assert set(back.predecessors(tid)) == set(wf.predecessors(tid))
        assert math.isclose(
            back.task(tid).mean_weight, wf.task(tid).mean_weight,
            rel_tol=1e-6,
        )
        assert math.isclose(
            sum(back.predecessors(tid).values()),
            sum(wf.predecessors(tid).values()),
            rel_tol=1e-6, abs_tol=1.0,
        )


@given(wf=workflows(), seed=seeds)
@settings(max_examples=20, deadline=None)
def test_schedule_json_roundtrip_is_lossless(wf, seed):
    platform = make_linear_platform()
    sched = HeftBudgScheduler().schedule(wf, platform, 5.0).schedule
    back = schedule_from_dict(schedule_to_dict(sched))
    assert back.order == sched.order
    assert back.assignment == sched.assignment
    assert back.categories == sched.categories


@given(wf=workflows())
@settings(max_examples=25, deadline=None)
def test_heft_order_is_stable_and_valid(wf):
    platform = make_linear_platform()
    a = heft_order(wf, platform.mean_speed, platform.bandwidth)
    b = heft_order(wf, platform.mean_speed, platform.bandwidth)
    assert a == b
    pos = {t: i for i, t in enumerate(a)}
    for edge in wf.edges():
        assert pos[edge.producer] < pos[edge.consumer]


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200
    )
)
def test_distribution_summary_bounds(samples):
    d = Distribution.from_samples(np.array(samples))
    tol = 1e-9 * max(abs(d.minimum), abs(d.maximum), 1.0)  # mean() ulp noise
    assert d.minimum - tol <= d.mean <= d.maximum + tol
    values = [d.percentiles[p] for p in sorted(d.percentiles)]
    assert values == sorted(values)
    assert d.minimum - 1e-9 <= values[0]
    assert values[-1] <= d.maximum + 1e-9


@given(wf=workflows(max_tasks=14), seed=seeds)
@settings(max_examples=15, deadline=None)
def test_idle_split_is_safe_by_construction(wf, seed):
    """The idle-gap pass never raises cost and keeps schedules valid."""
    from repro.scheduling.idle_split import split_idle_gaps

    platform = make_linear_platform()
    sched = HeftBudgScheduler().schedule(wf, platform, 5.0).schedule
    out = split_idle_gaps(wf, platform, sched, makespan_tolerance=0.05)
    out.schedule.validate(wf)
    assert out.cost_after <= out.cost_before + 1e-9
    assert out.makespan_after <= out.makespan_before * 1.05 + 1e-6


@given(seed=seeds, budget_scale=st.floats(min_value=0.0, max_value=3.0))
@settings(max_examples=10, deadline=None)
def test_ensemble_never_overspends(seed, budget_scale):
    """Admission + redistribution keep the planned spend within budget."""
    from repro.experiments.budgets import minimal_budget
    from repro.scheduling.ensemble import EnsembleMember, schedule_ensemble

    platform = make_linear_platform()
    members = [
        EnsembleMember(
            generate_random_layered(8 + 2 * i, depth=3, rng=seed + i),
            priority=float(1 + i),
        )
        for i in range(3)
    ]
    needed = sum(minimal_budget(m.workflow, platform) for m in members)
    budget = needed * budget_scale
    out = schedule_ensemble(members, platform, budget)
    assert out.planned_spend <= budget * 1.02 + 1e-9
    assert out.n_admitted + len(out.rejected) == 3
    for a in out.admitted:
        a.schedule.validate(a.member.workflow)
