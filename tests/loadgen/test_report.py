"""HTML load report: structure, grouping, escaping."""

from repro.loadgen import ArrivalConfig, LoadDriver, render_load_report
from repro.loadgen.report import write_load_report
from repro.obs.ledger import LoadRunRow
from repro.service.engine import SchedulingService


def run_row(label="demo", seed=1):
    svc = SchedulingService(cache_size=32)
    try:
        driver = LoadDriver(svc, pace=False)
        cfg = ArrivalConfig(rate=500.0, n_requests=15, seed=seed,
                            spec_seeds=1, n_reps=1)
        return driver.run(cfg, label=label).to_row()
    finally:
        svc.close()


class TestReport:
    def test_document_is_standalone_html(self):
        doc = render_load_report([run_row()])
        assert doc.startswith("<!DOCTYPE html>")
        assert "<script" not in doc
        assert 'href="http' not in doc  # no external assets
        assert "demo" in doc
        assert "Stage latency decomposition" in doc

    def test_rows_group_by_label(self):
        rows = [run_row("alpha", 1), run_row("alpha", 2), run_row("beta", 3)]
        doc = render_load_report(rows)
        assert doc.count("<h2>") == 2
        assert "alpha" in doc and "beta" in doc

    def test_labels_are_escaped(self):
        row = run_row()
        hostile = LoadRunRow(**{**row.to_dict(),
                                "label": "<script>alert(1)</script>"})
        doc = render_load_report([hostile])
        assert "<script>alert(1)</script>" not in doc
        assert "&lt;script&gt;" in doc

    def test_empty_input_renders_a_note(self):
        doc = render_load_report([])
        assert "No load runs matched" in doc

    def test_write_report(self, tmp_path):
        path = str(tmp_path / "report.html")
        assert write_load_report([run_row()], path) == path
        with open(path, encoding="utf-8") as fh:
            assert "<!DOCTYPE html>" in fh.read()

    def test_refusal_columns_appear_when_present(self):
        row = run_row()
        with_refusals = LoadRunRow(**{
            **row.to_dict(), "refusals": {"rate_limited": 7},
        })
        doc = render_load_report([with_refusals])
        assert "rate_limited" in doc
        assert ">7<" in doc
