"""Arrival planning: determinism, processes, validation, fingerprints."""

import pytest

from repro.errors import ServiceError
from repro.loadgen import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    generate_sequence,
    sequence_fingerprint,
)
from repro.loadgen.arrivals import load_trace_offsets


def small(**overrides):
    base = dict(process="poisson", rate=100.0, n_requests=50, seed=11,
                n_tasks=(15,), spec_seeds=2, n_reps=1)
    base.update(overrides)
    return ArrivalConfig(**base)


class TestDeterminism:
    def test_same_seed_same_sequence_bit_identical(self):
        cfg = small()
        a = generate_sequence(cfg)
        b = generate_sequence(cfg)
        assert [p.offset_s for p in a] == [p.offset_s for p in b]
        assert [p.fingerprint for p in a] == [p.fingerprint for p in b]
        assert [(p.tenant, p.priority) for p in a] == [
            (p.tenant, p.priority) for p in b
        ]
        assert sequence_fingerprint(a) == sequence_fingerprint(b)

    def test_different_seed_different_sequence(self):
        a = generate_sequence(small(seed=1))
        b = generate_sequence(small(seed=2))
        assert sequence_fingerprint(a) != sequence_fingerprint(b)

    def test_sequence_is_worker_count_free(self):
        # The plan carries no replay mechanics: regenerating after
        # unrelated RNG activity still matches.
        import random

        cfg = small(process="mmpp", batch_tail_alpha=1.3,
                    tenants={"a": 1.0, "b": 3.0})
        a = generate_sequence(cfg)
        random.random()
        b = generate_sequence(cfg)
        assert sequence_fingerprint(a) == sequence_fingerprint(b)

    def test_config_fingerprint_stable_and_seed_sensitive(self):
        assert small().fingerprint() == small().fingerprint()
        assert small().fingerprint() != small(seed=99).fingerprint()


class TestProcesses:
    def test_all_processes_are_exposed(self):
        assert ARRIVAL_PROCESSES == ("poisson", "mmpp", "trace")

    def test_poisson_offsets_monotonic_and_roughly_rated(self):
        cfg = small(rate=200.0, n_requests=2000, seed=5)
        planned = generate_sequence(cfg)
        offsets = [p.offset_s for p in planned]
        assert offsets == sorted(offsets)
        span = offsets[-1]
        assert span > 0
        # Mean rate within 15% of the offered rate at n=2000.
        assert abs(len(offsets) / span - 200.0) / 200.0 < 0.15

    def test_mmpp_is_burstier_than_poisson(self):
        import statistics

        def cv2(cfg):
            offsets = [p.offset_s for p in generate_sequence(cfg)]
            gaps = [b - a for a, b in zip(offsets, offsets[1:])]
            mean = statistics.fmean(gaps)
            return statistics.pvariance(gaps) / (mean * mean)

        poisson = cv2(small(rate=100.0, n_requests=3000, seed=3))
        mmpp = cv2(small(process="mmpp", rate=100.0, n_requests=3000,
                         seed=3, burstiness=10.0))
        assert mmpp > poisson

    def test_trace_offsets_are_rebased_and_capped(self):
        cfg = small(process="trace", trace_offsets=(5.0, 5.5, 6.5, 9.0),
                    n_requests=3)
        planned = generate_sequence(cfg)
        assert [p.offset_s for p in planned] == [0.0, 0.5, 1.5]

    def test_batching_preserves_request_count(self):
        cfg = small(batch_tail_alpha=1.1, n_requests=400)
        planned = generate_sequence(cfg)
        assert len(planned) == 400
        offsets = [p.offset_s for p in planned]
        assert offsets == sorted(offsets)
        # Heavy tail regroups arrivals: some instants repeat.
        assert len(set(offsets)) < len(offsets)

    def test_offered_rate_for_trace_is_span_based(self):
        cfg = small(process="trace", trace_offsets=(0.0, 1.0, 2.0, 4.0),
                    n_requests=4)
        assert cfg.offered_rate == pytest.approx(1.0)


class TestValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ServiceError):
            small(process="uniform")

    def test_family_minimum_task_count_enforced(self):
        with pytest.raises(ServiceError, match="at least 12"):
            small(families=("montage",), n_tasks=(10,))

    def test_unknown_priority_rejected(self):
        with pytest.raises(ServiceError):
            small(priorities={"urgent": 1.0})

    def test_empty_tenant_mix_rejected(self):
        with pytest.raises(ServiceError):
            small(tenants={})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ServiceError):
            small(tenants={"a": 0.0})

    def test_trace_process_needs_offsets(self):
        with pytest.raises(ServiceError):
            small(process="trace")

    def test_burstiness_must_exceed_one(self):
        with pytest.raises(ServiceError):
            small(process="mmpp", burstiness=1.0)


class TestEncoding:
    def test_to_from_dict_roundtrip_preserves_fingerprint(self):
        cfg = small(process="mmpp", tenants={"x": 1.0, "y": 2.0},
                    batch_tail_alpha=1.5)
        clone = ArrivalConfig.from_dict(cfg.to_dict())
        assert clone.fingerprint() == cfg.fingerprint()
        assert clone == cfg

    def test_planned_requests_carry_admission_attributes(self):
        cfg = small(tenants={"acme": 1.0},
                    priorities={"interactive": 1.0})
        planned = generate_sequence(cfg)
        assert all(p.tenant == "acme" for p in planned)
        assert all(p.priority == "interactive" for p in planned)
        assert all(p.request["tenant"] == "acme" for p in planned)

    def test_load_trace_offsets_parses_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# recorded offsets\n0.0\n1.5\n\n2.5\n")
        assert load_trace_offsets(str(path)) == (0.0, 1.5, 2.5)
