"""Dashboard: pure rendering, rolling state, bounded in-process runs."""

import io

from repro.loadgen import ArrivalConfig, Dashboard, LoadDriver
from repro.loadgen.dash import DashState, render, sparkline
from repro.service.engine import SchedulingService


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5.0] * 6) == "▁" * 6

    def test_monotone_series_rises(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_width_caps_the_tail(self):
        assert len(sparkline(list(range(100)), width=16)) == 16


class TestState:
    def test_throughput_derives_from_counter_deltas(self):
        state = DashState()
        stats = {"metrics": {"counters": {"requests": 0}, "series": {}},
                 "admission": {"queue": {"depth": 0}}}
        state.update({}, stats, {}, now=10.0)
        stats2 = {"metrics": {"counters": {"requests": 50}, "series": {}},
                  "admission": {"queue": {"depth": 3}}}
        state.update({}, stats2, {}, now=12.0)
        assert list(state.throughput) == [25.0]
        assert list(state.queue_depth) == [0.0, 3.0]

    def test_counter_reset_never_goes_negative(self):
        state = DashState()
        high = {"metrics": {"counters": {"requests": 100}, "series": {}}}
        low = {"metrics": {"counters": {"requests": 5}, "series": {}}}
        state.update({}, high, {}, now=1.0)
        state.update({}, low, {}, now=2.0)
        assert state.throughput[-1] == 0.0


class TestRender:
    def test_render_is_pure_text_without_ansi(self):
        frame = render(DashState(), ansi=False)
        assert "repro load observatory" in frame
        assert "\x1b[" not in frame
        assert "q quit" in frame

    def test_render_with_ansi_colours_status(self):
        state = DashState()
        state.update({"ready": True, "status": "ok"}, {}, {})
        assert "\x1b[32m" in render(state, ansi=True)

    def test_tenant_budget_fill_renders(self):
        state = DashState()
        stats = {"admission": {"tenants": {"tenants": {"acme": {
            "policy": {"cost_budget": 10.0},
            "spent_window": 8.0, "reserved": 1.0,
            "admitted": 4, "rejected": {"budget_exhausted": 2},
        }}}, "queue": {}}, "metrics": {}}
        state.update({}, stats, {})
        frame = render(state, ansi=False)
        assert "acme" in frame
        assert "(90%)" in frame
        assert "rejected=2" in frame

    def test_slo_burn_rates_render(self):
        state = DashState()
        slo = {"targets": [{"name": "latency_fast", "windows": {
            "5m": {"burn_rate": 2.5, "budget_exhausted": True},
        }}]}
        state.update({}, {}, slo)
        frame = render(state, ansi=False)
        assert "latency_fast" in frame and "5m=2.50" in frame


class TestDashboardLoop:
    def test_bounded_inprocess_run_draws_frames(self):
        svc = SchedulingService(cache_size=32)
        try:
            driver = LoadDriver(svc, pace=False)
            driver.run(ArrivalConfig(rate=500.0, n_requests=10, seed=1,
                                     spec_seeds=1, n_reps=1))
            dash = Dashboard(svc, interval_s=0.01, ansi=False)
            buf = io.StringIO()
            frames = dash.run(iterations=2, stream=buf, events=True)
        finally:
            svc.close()
        text = buf.getvalue()
        assert frames == 2
        assert text.count("repro load observatory") == 2
        assert "throughput" in text

    def test_poll_error_lands_in_state_not_raised(self):
        dash = Dashboard("http://127.0.0.1:1", interval_s=0.01, ansi=False)
        dash.poll()
        assert dash.state.error
        frame = render(dash.state, ansi=False)
        assert "poll error" in frame
