"""Open-loop driver: replay outcomes, ledger archival, typed refusals."""

import pytest

from repro.admission.tenants import TenantRegistry
from repro.errors import ServiceError
from repro.loadgen import ArrivalConfig, LoadDriver
from repro.obs.ledger import RunLedger
from repro.service.engine import SchedulingService


def config(**overrides):
    base = dict(process="poisson", rate=500.0, n_requests=40, seed=9,
                n_tasks=(15,), spec_seeds=2, n_reps=1)
    base.update(overrides)
    return ArrivalConfig(**base)


@pytest.fixture()
def service():
    svc = SchedulingService(cache_size=64)
    yield svc
    svc.close()


class TestReplay:
    def test_outcome_counts_cover_every_request(self, service):
        driver = LoadDriver(service, concurrency=4, pace=False)
        result = driver.run(config(), label="t")
        assert sum(result.outcomes.values()) == 40
        assert result.outcomes.get("error", 0) == 0
        assert result.n_completed == (result.outcomes.get("ok", 0)
                                      + result.outcomes.get("cached", 0))
        assert result.achieved_rps > 0
        assert result.duration_s > 0

    def test_stage_decomposition_recorded_and_consistent(self, service):
        driver = LoadDriver(service, concurrency=2, pace=False)
        result = driver.run(config())
        assert result.n_stage_violations == 0
        stages = result.stage_percentiles()
        assert "request" in stages
        assert "admit" in stages
        for pcts in stages.values():
            assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]

    def test_same_seed_runs_share_the_sequence_fingerprint(self, service):
        driver = LoadDriver(service, pace=False)
        first = driver.run(config(seed=4))
        second = driver.run(config(seed=4))
        assert first.sequence_fp == second.sequence_fp
        assert first.sequence_fp != driver.run(config(seed=5)).sequence_fp

    def test_pacing_honours_planned_offsets(self, service):
        # 20 requests at 100 req/s paced should take ~0.2s wall time.
        driver = LoadDriver(service, concurrency=4, pace=True)
        result = driver.run(config(rate=100.0, n_requests=20, seed=2))
        planned_span = 20 / 100.0
        assert result.duration_s >= planned_span * 0.5

    def test_keep_records_retains_per_request_rows(self, service):
        driver = LoadDriver(service, pace=False)
        result = driver.run(config(n_requests=10), keep_records=True)
        assert len(result.records) == 10
        indexes = sorted(r.index for r in result.records)
        assert indexes == list(range(10))


class TestRefusals:
    def test_draining_service_yields_typed_refusals(self):
        svc = SchedulingService()
        svc.close()
        driver = LoadDriver(svc, pace=False)
        with pytest.raises(ServiceError, match="not ready"):
            driver.run(config(n_requests=5), warmup_timeout_s=0.2)

    def test_budget_exhausted_is_counted_not_errored(self):
        registry = TenantRegistry.from_json(
            {"tenants": {"poor": {"cost_budget": 0.001}}}
        )
        svc = SchedulingService(tenants=registry)
        try:
            driver = LoadDriver(svc, pace=False)
            result = driver.run(config(tenants={"poor": 1.0}))
        finally:
            svc.close()
        assert result.outcomes.get("error", 0) == 0
        assert result.outcomes.get("budget_exhausted", 0) > 0
        assert result.refusals.get("budget_exhausted", 0) > 0


class TestLedgerArchival:
    def test_to_row_roundtrips_through_the_ledger(self, service, tmp_path):
        driver = LoadDriver(service, pace=False)
        result = driver.run(config(), label="archived")
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            load_id = ledger.record_load_run(result.to_row())
            row = ledger.load_run(load_id)
        assert row.label == "archived"
        assert row.sequence_fingerprint == result.sequence_fp
        assert row.config_fingerprint == result.config.fingerprint()
        assert row.n_requests == 40
        assert row.n_ok + row.n_cached == result.n_completed
        assert row.p50_s <= row.p95_s <= row.p99_s
        assert set(row.sketches) >= {"request", "admit"}
        assert row.extra["n_stage_violations"] == 0

    def test_sketches_in_the_row_reproduce_percentiles(self, service,
                                                       tmp_path):
        from repro.obs.sketch import QuantileSketch

        driver = LoadDriver(service, pace=False)
        result = driver.run(config())
        with RunLedger(str(tmp_path / "led.db")) as ledger:
            row = ledger.load_run(ledger.record_load_run(result.to_row()))
        sketch = QuantileSketch.from_dict(row.sketches["request"])
        assert sketch.quantile(0.99) == pytest.approx(row.p99_s)
        assert sketch.count == result.n_completed
