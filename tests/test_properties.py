"""Property-based tests (hypothesis) on core invariants.

These exercise randomly generated workflows, platforms, schedules and
stochastic weights against the invariants that must hold for *every* input:
DAG consistency, budget-division conservation, executor timeline sanity,
precedence preservation, and cost accounting consistency.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import (
    CloudPlatform,
    Schedule,
    StochasticWeight,
    VMCategory,
    divide_budget,
    execute_schedule,
    evaluate_schedule,
    sample_weights,
)
from repro.scheduling.heft import HeftBudgScheduler
from repro.simulation.bandwidth import FlowPool
from repro.units import GB, GFLOP, MB
from repro.workflow.generators import generate_random_layered

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def workflows(draw, max_tasks: int = 22):
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    depth = draw(st.integers(min_value=1, max_value=6))
    fan = draw(st.integers(min_value=1, max_value=3))
    sigma = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    seed = draw(seeds)
    return generate_random_layered(
        n, depth=depth, max_fan_in=fan, sigma_ratio=sigma, rng=seed
    )


@st.composite
def platforms(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    base_speed = draw(st.floats(min_value=0.5, max_value=8.0)) * GFLOP
    base_cost = draw(st.floats(min_value=0.01, max_value=1.0))
    boot = draw(st.sampled_from([0.0, 30.0, 120.0]))
    cores = draw(st.sampled_from([1, 1, 2, 4]))  # mostly single-core
    cats = tuple(
        VMCategory(
            f"c{i}",
            speed=base_speed * (1.7**i),
            hourly_cost=base_cost * (2.0**i),
            initial_cost=0.002,
            boot_time=boot,
            cores=cores,
        )
        for i in range(k)
    )
    bw = draw(st.sampled_from([20.0 * MB, 125.0 * MB, 1.0 * GB]))
    return CloudPlatform(
        categories=cats, bandwidth=bw,
        transfer_cost_per_byte=0.05 / GB,
        storage_cost_per_byte_month=0.02 / GB,
    )


# ---------------------------------------------------------------------------
# StochasticWeight
# ---------------------------------------------------------------------------

@given(
    mean=st.floats(min_value=1e3, max_value=1e15),
    ratio=st.floats(min_value=0.0, max_value=3.0),
    seed=seeds,
)
def test_weight_samples_positive_and_floored(mean, ratio, seed):
    w = StochasticWeight(mean, ratio * mean)
    value = w.sample(rng=seed)
    assert value > 0.0
    assert value >= 0.01 * mean - 1e-9


# ---------------------------------------------------------------------------
# DAG invariants
# ---------------------------------------------------------------------------

@given(wf=workflows())
@settings(max_examples=40, deadline=None)
def test_topological_order_is_linear_extension(wf):
    pos = {t: i for i, t in enumerate(wf.topological_order)}
    for edge in wf.edges():
        assert pos[edge.producer] < pos[edge.consumer]


@given(wf=workflows())
@settings(max_examples=40, deadline=None)
def test_levels_monotone_along_edges(wf):
    levels = wf.levels()
    for edge in wf.edges():
        assert levels[edge.consumer] >= levels[edge.producer] + 1


@given(wf=workflows())
@settings(max_examples=40, deadline=None)
def test_aggregate_data_conservation(wf):
    per_task_in = sum(wf.input_data_of(t) for t in wf.tasks)
    per_task_out = sum(wf.output_data_of(t) for t in wf.tasks)
    assert math.isclose(per_task_in, per_task_out, rel_tol=1e-9)
    assert math.isclose(per_task_in, wf.total_edge_data, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# Budget division (Algorithm 1)
# ---------------------------------------------------------------------------

@given(wf=workflows(), platform=platforms(),
       budget=st.floats(min_value=0.0, max_value=1000.0))
@settings(max_examples=40, deadline=None)
def test_budget_shares_conserve_b_calc(wf, platform, budget):
    plan = divide_budget(wf, platform, budget)
    assert plan.b_calc >= 0.0
    assert all(s >= 0.0 for s in plan.shares.values())
    assert math.isclose(plan.total_shares, plan.b_calc,
                        rel_tol=1e-9, abs_tol=1e-12)
    assert set(plan.shares) == set(wf.tasks)


@given(wf=workflows(), platform=platforms())
@settings(max_examples=25, deadline=None)
def test_budget_shares_monotone_in_budget(wf, platform):
    small = divide_budget(wf, platform, 5.0)
    large = divide_budget(wf, platform, 50.0)
    for tid in wf.tasks:
        assert large.share(tid) >= small.share(tid) - 1e-12


# ---------------------------------------------------------------------------
# FlowPool conservation
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=1e9),
                   min_size=1, max_size=8),
    capacity=st.sampled_from([math.inf, 50.0 * MB, 200.0 * MB]),
)
def test_flowpool_transfers_everything(sizes, capacity):
    pool = FlowPool(capacity=capacity)
    for i, size in enumerate(sizes):
        pool.start(i, size, cap=100.0 * MB)
    done = []
    for _ in range(10 * len(sizes) + 10):
        t = pool.next_completion()
        if t == math.inf:
            break
        done.extend(fid for fid, _ in pool.advance(t))
    assert sorted(done) == list(range(len(sizes)))
    assert not pool


@given(
    n=st.integers(min_value=1, max_value=10),
    capacity=st.floats(min_value=10.0, max_value=500.0),
)
def test_flowpool_finite_capacity_lower_bounds_duration(n, capacity):
    """n equal flows of S bytes can never finish before n*S/capacity."""
    size = 1000.0
    pool = FlowPool(capacity=capacity)
    for i in range(n):
        pool.start(i, size, cap=1e9)
    last = 0.0
    while pool:
        t = pool.next_completion()
        pool.advance(t)
        last = t
    assert last >= n * size / capacity - 1e-6


# ---------------------------------------------------------------------------
# End-to-end: schedule + execute
# ---------------------------------------------------------------------------

@given(wf=workflows(), platform=platforms(),
       budget=st.floats(min_value=0.001, max_value=100.0), seed=seeds)
@settings(max_examples=30, deadline=None)
def test_heftbudg_execution_invariants(wf, platform, budget, seed):
    result = HeftBudgScheduler().schedule(wf, platform, budget)
    result.schedule.validate(wf)
    weights = sample_weights(wf, rng=seed)
    run = execute_schedule(wf, platform, result.schedule, weights)

    # every task ran exactly once with a sane timeline
    assert set(run.tasks) == set(wf.tasks)
    for tid, rec in run.tasks.items():
        assert rec.download_start <= rec.compute_start + 1e-9
        assert rec.compute_start <= rec.compute_end + 1e-9
        assert rec.compute_end <= rec.outputs_at_dc + 1e-9
        speed = result.schedule.category_of(tid).speed
        assert math.isclose(
            rec.compute_end - rec.compute_start, weights[tid] / speed,
            rel_tol=1e-9, abs_tol=1e-9,
        )

    # precedence: a consumer never starts computing before its producer ends
    for edge in wf.edges():
        assert (
            run.tasks[edge.consumer].compute_start
            >= run.tasks[edge.producer].compute_end - 1e-9
        )

    # per-VM capacity: never more than `cores` concurrent computes, and on
    # single-core VMs computes are fully serialized
    by_vm = {}
    for rec in run.tasks.values():
        by_vm.setdefault(rec.vm_id, []).append(rec)
    for vm_id, recs in by_vm.items():
        cores = result.schedule.categories[vm_id].cores
        recs.sort(key=lambda r: r.compute_start)
        if cores == 1:
            for a, b in zip(recs, recs[1:]):
                assert b.download_start >= a.compute_end - 1e-9
        else:
            boundaries = sorted(
                {r.compute_start for r in recs} | {r.compute_end for r in recs}
            )
            for t in boundaries[:-1]:
                concurrent = sum(
                    1 for r in recs
                    if r.compute_start - 1e-9 <= t < r.compute_end - 1e-9
                )
                assert concurrent <= cores

    # accounting sanity
    assert run.makespan >= 0.0
    assert run.total_cost > 0.0
    assert run.cost.vm_rental >= 0.0
    assert run.n_vms == result.schedule.n_vms


@given(wf=workflows(max_tasks=15), platform=platforms(), seed=seeds)
@settings(max_examples=20, deadline=None)
def test_generous_budget_is_respected(wf, platform, seed):
    """With a budget far above the conservative envelope, the deterministic
    cost must stay within it."""
    from repro.experiments.budgets import high_budget

    budget = high_budget(wf, platform) * 2.0
    result = HeftBudgScheduler().schedule(wf, platform, budget)
    run = evaluate_schedule(wf, platform, result.schedule)
    assert run.total_cost <= budget


@given(wf=workflows(max_tasks=15), platform=platforms(), seed=seeds)
@settings(max_examples=20, deadline=None)
def test_reassignment_keeps_executability(wf, platform, seed):
    """Any single-task move to a fresh fastest VM still executes cleanly."""
    import numpy as np

    result = HeftBudgScheduler().schedule(wf, platform, math.inf)
    sched = result.schedule
    rng = np.random.default_rng(seed)
    tid = sched.order[int(rng.integers(len(sched.order)))]
    moved = sched.reassigned(tid, sched.fresh_vm_id(), platform.fastest)
    moved.validate(wf)
    run = evaluate_schedule(wf, platform, moved)
    assert set(run.tasks) == set(wf.tasks)
