"""Executable documentation: every python block in docs/TUTORIAL.md runs.

Tutorials rot silently; this test executes the code blocks cumulatively in
one namespace (as a reader following along would) and re-checks the two
hand-computed EFT numbers the text quotes.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def _python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.fixture(scope="module")
def namespace():
    return {}


def test_tutorial_exists():
    assert TUTORIAL.exists()


def test_all_python_blocks_execute(namespace):
    blocks = _python_blocks(TUTORIAL.read_text())
    assert len(blocks) >= 6
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            pytest.fail(f"tutorial block {i} failed: {exc}\n{block}")


def test_quoted_eft_numbers_are_correct(namespace):
    test_all_python_blocks_execute(namespace)
    assert namespace["ev_same"].eft == pytest.approx(250.0)
    assert namespace["ev_fresh"].eft == pytest.approx(270.0)


def test_quoted_conservation_holds(namespace):
    test_all_python_blocks_execute(namespace)
    plan = namespace["plan"]
    # the last `plan` bound in the tutorial is the advisor's recommendation;
    # the budget plan from section 4 is re-derived here
    from repro import PAPER_PLATFORM, divide_budget

    bplan = divide_budget(namespace["wf"], PAPER_PLATFORM, 1.0)
    assert sum(bplan.shares.values()) == pytest.approx(bplan.b_calc)
