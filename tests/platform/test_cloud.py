"""Unit tests for the platform specification."""

import pytest

from repro import CloudPlatform, PAPER_PLATFORM, PlatformError, VMCategory
from repro.platform.cloud import make_linear_platform
from repro.units import GB, GFLOP, MB, MONTH


def _cats():
    return (
        VMCategory("slow", speed=1 * GFLOP, hourly_cost=1.0),
        VMCategory("fast", speed=4 * GFLOP, hourly_cost=4.0),
        VMCategory("mid", speed=2 * GFLOP, hourly_cost=2.0),
    )


class TestCloudPlatform:
    def test_categories_sorted_by_cost(self):
        p = CloudPlatform(categories=_cats(), bandwidth=1 * MB)
        assert [c.name for c in p.categories] == ["slow", "mid", "fast"]

    def test_cheapest_and_most_expensive(self):
        p = CloudPlatform(categories=_cats(), bandwidth=1 * MB)
        assert p.cheapest.name == "slow"
        assert p.most_expensive.name == "fast"
        assert p.fastest.name == "fast"

    def test_mean_speed(self):
        p = CloudPlatform(categories=_cats(), bandwidth=1 * MB)
        assert p.mean_speed == pytest.approx((1 + 2 + 4) / 3 * GFLOP)

    def test_category_lookup(self):
        p = CloudPlatform(categories=_cats(), bandwidth=1 * MB)
        assert p.category("mid").speed == 2 * GFLOP
        with pytest.raises(PlatformError):
            p.category("nope")

    def test_transfer_time(self):
        p = CloudPlatform(categories=_cats(), bandwidth=100 * MB)
        assert p.transfer_time(1 * GB) == pytest.approx(10.0)
        with pytest.raises(PlatformError):
            p.transfer_time(-1.0)

    def test_needs_categories_and_bandwidth(self):
        with pytest.raises(PlatformError):
            CloudPlatform(categories=(), bandwidth=1.0)
        with pytest.raises(PlatformError):
            CloudPlatform(categories=_cats(), bandwidth=0.0)

    def test_duplicate_names_rejected(self):
        cats = (
            VMCategory("x", speed=1.0, hourly_cost=1.0),
            VMCategory("x", speed=2.0, hourly_cost=2.0),
        )
        with pytest.raises(PlatformError):
            CloudPlatform(categories=cats, bandwidth=1.0)

    def test_with_bandwidth(self):
        p = CloudPlatform(categories=_cats(), bandwidth=1 * MB)
        p2 = p.with_bandwidth(5 * MB)
        assert p2.bandwidth == 5 * MB
        assert p2.categories == p.categories

    def test_datacenter_rate_from_storage(self, diamond):
        p = CloudPlatform(
            categories=_cats(),
            bandwidth=1 * MB,
            storage_cost_per_byte_month=0.02 / GB,
        )
        footprint = diamond.total_edge_data  # 4 GB, no external I/O
        expected = 0.02 * (footprint / GB) / MONTH
        assert p.datacenter_rate(diamond) == pytest.approx(expected)

    def test_datacenter_rate_override(self, diamond):
        p = CloudPlatform(
            categories=_cats(), bandwidth=1 * MB,
            storage_cost_per_byte_month=1.0, datacenter_rate_override=0.5,
        )
        assert p.datacenter_rate(diamond) == 0.5

    def test_io_cost(self, single_task):
        p = CloudPlatform(
            categories=_cats(), bandwidth=1 * MB,
            transfer_cost_per_byte=0.05 / GB,
        )
        expected = (200e6 + 100e6) / 1e9 * 0.05
        assert p.io_cost(single_task) == pytest.approx(expected)


class TestPaperPlatform:
    def test_three_categories(self):
        assert PAPER_PLATFORM.n_categories == 3

    def test_faster_categories_less_cost_efficient(self):
        """Faster categories pay more dollars per instruction (see the
        make_linear_platform docstring for why the paper requires this)."""
        per_flop = [c.hourly_cost / c.speed for c in PAPER_PLATFORM.categories]
        assert per_flop == sorted(per_flop)
        assert per_flop[-1] > per_flop[0]

    def test_cost_roughly_linear_in_speed(self):
        """§V-A: 'the cost ... is linear with the speed of the VM' — we keep
        it within ~25% of proportional."""
        base = PAPER_PLATFORM.categories[0]
        for cat in PAPER_PLATFORM.categories:
            ratio = (cat.hourly_cost / cat.speed) / (base.hourly_cost / base.speed)
            assert 1.0 <= ratio < 1.30

    def test_shared_setup_parameters(self):
        """Table II lists one setup delay/cost for all categories."""
        boots = {c.boot_time for c in PAPER_PLATFORM.categories}
        inits = {c.initial_cost for c in PAPER_PLATFORM.categories}
        assert len(boots) == 1
        assert len(inits) == 1

    def test_speeds_and_costs_increase(self):
        speeds = [c.speed for c in PAPER_PLATFORM.categories]
        costs = [c.hourly_cost for c in PAPER_PLATFORM.categories]
        assert speeds == sorted(speeds)
        assert costs == sorted(costs)
        assert costs[1] == pytest.approx(2 * costs[0])


class TestMakeLinearPlatform:
    def test_category_count(self):
        p = make_linear_platform(n_categories=5)
        assert p.n_categories == 5

    def test_invalid_args(self):
        with pytest.raises(PlatformError):
            make_linear_platform(n_categories=0)
        with pytest.raises(PlatformError):
            make_linear_platform(speed_factor=0.0)
