"""Unit tests for the cost model (Eq. 1 and Eq. 2)."""

import pytest

from repro import CostBreakdown, PlatformError, VMCategory
from repro.platform.pricing import datacenter_cost, vm_cost
from repro.units import GB, GFLOP, MB


@pytest.fixture
def cat():
    return VMCategory("c", speed=1 * GFLOP, hourly_cost=3.6, initial_cost=0.5)


class TestVmCost:
    def test_equation_1(self, cat):
        # 100s at $0.001/s + $0.5 init
        assert vm_cost(cat, 10.0, 110.0) == pytest.approx(0.1 + 0.5)

    def test_per_second_billing_rounds_up(self, cat):
        exact = vm_cost(cat, 0.0, 10.2, per_second_billing=True)
        assert exact == pytest.approx(11 * 0.001 + 0.5)

    def test_continuous_billing(self, cat):
        exact = vm_cost(cat, 0.0, 10.2, per_second_billing=False)
        assert exact == pytest.approx(10.2 * 0.001 + 0.5)

    def test_zero_duration_still_pays_init(self, cat):
        assert vm_cost(cat, 5.0, 5.0) == pytest.approx(0.5)

    def test_end_before_start_rejected(self, cat):
        with pytest.raises(PlatformError):
            vm_cost(cat, 10.0, 5.0)

    def test_float_fuzz_not_bumped(self, cat):
        # a duration of 100 + 1e-12 seconds must not bill 101 seconds
        assert vm_cost(cat, 0.0, 100.0 + 1e-12) == pytest.approx(
            100 * 0.001 + 0.5
        )


class TestDatacenterCost:
    def test_equation_2(self, single_task, booted_platform):
        makespan = 1000.0
        cost = datacenter_cost(booted_platform, single_task, makespan)
        io = (200e6 + 100e6) * 0.05 / GB
        rate = booted_platform.datacenter_rate(single_task)
        assert cost == pytest.approx(io + makespan * rate)

    def test_negative_makespan_rejected(self, single_task, booted_platform):
        with pytest.raises(PlatformError):
            datacenter_cost(booted_platform, single_task, -1.0)

    def test_zero_charges_platform(self, diamond, simple_platform):
        # simple_platform has no datacenter pricing at all
        assert datacenter_cost(simple_platform, diamond, 500.0) == 0.0


class TestCostBreakdown:
    def test_total_is_sum(self):
        b = CostBreakdown(vm_rental=1.0, vm_initial=0.2,
                          datacenter_time=0.3, datacenter_io=0.4)
        # vm_initial is informational, already inside vm_rental
        assert b.total == pytest.approx(1.7)

    def test_build_aggregates_vms(self, diamond, booted_platform, cat):
        usage = [(cat, 0.0, 100.0), (cat, 50.0, 150.0)]
        b = CostBreakdown.build(booted_platform, diamond, 150.0, usage)
        assert b.vm_rental == pytest.approx(2 * (0.1 + 0.5))
        assert b.vm_initial == pytest.approx(1.0)
        assert b.datacenter_io == 0.0  # diamond has no external I/O
        assert b.total == pytest.approx(
            b.vm_rental + b.datacenter_time + b.datacenter_io
        )
