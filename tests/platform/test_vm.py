"""Unit tests for VM categories."""

import pytest

from repro import PlatformError, VMCategory
from repro.units import GFLOP, HOUR


class TestVMCategory:
    def test_cost_rate_conversion(self):
        cat = VMCategory("c", speed=1 * GFLOP, hourly_cost=3.6)
        assert cat.cost_rate == pytest.approx(0.001)

    def test_compute_time(self):
        cat = VMCategory("c", speed=2 * GFLOP, hourly_cost=1.0)
        assert cat.compute_time(10 * GFLOP) == pytest.approx(5.0)

    def test_compute_time_negative_rejected(self):
        cat = VMCategory("c", speed=1 * GFLOP, hourly_cost=1.0)
        with pytest.raises(PlatformError):
            cat.compute_time(-1.0)

    def test_zero_instructions(self):
        cat = VMCategory("c", speed=1 * GFLOP, hourly_cost=1.0)
        assert cat.compute_time(0.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(speed=0.0),
            dict(speed=-1.0),
            dict(speed=float("nan")),
            dict(hourly_cost=-1.0),
            dict(initial_cost=-0.1),
            dict(boot_time=-1.0),
            dict(cores=0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        base = dict(name="c", speed=1 * GFLOP, hourly_cost=1.0)
        base.update(kwargs)
        with pytest.raises(PlatformError):
            VMCategory(**base)

    def test_frozen(self):
        cat = VMCategory("c", speed=1.0, hourly_cost=1.0)
        with pytest.raises(AttributeError):
            cat.speed = 2.0

    def test_free_category_allowed(self):
        # hourly cost 0 is legal (useful in tests / degenerate scenarios)
        cat = VMCategory("free", speed=1.0, hourly_cost=0.0)
        assert cat.cost_rate == 0.0
