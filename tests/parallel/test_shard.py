"""ShardPlan invariants and ShardStats merge exactness."""

import statistics

import numpy as np
import pytest

from repro.parallel import MIN_SHARD_SIZE, Shard, ShardPlan, ShardStats


class TestShardPlan:
    @pytest.mark.parametrize("n_items", [0, 1, 3, 4, 7, 8, 25, 100, 101])
    @pytest.mark.parametrize("workers", [0, 1, 2, 3, 4, 8])
    def test_shards_cover_range_exactly_once(self, n_items, workers):
        plan = ShardPlan.plan(n_items, workers)
        covered = [
            i for shard in plan.shards for i in range(shard.start, shard.stop)
        ]
        assert covered == list(range(n_items))
        assert [s.index for s in plan.shards] == list(range(plan.n_shards))

    def test_serial_fallback_below_min_shard_size(self):
        # 2 * MIN_SHARD_SIZE - 1 items cannot fill two minimum shards
        plan = ShardPlan.plan(2 * MIN_SHARD_SIZE - 1, workers=4)
        assert plan.is_serial and plan.n_shards == 1
        assert ShardPlan.plan(2 * MIN_SHARD_SIZE, workers=4).n_shards == 2

    def test_workers_zero_is_serial(self):
        plan = ShardPlan.plan(100, workers=0)
        assert plan.is_serial
        assert plan.shards == (Shard(index=0, start=0, stop=100),)

    def test_remainder_spread_over_first_shards(self):
        plan = ShardPlan.plan(10, workers=2, min_shard_size=1)
        assert [s.size for s in plan.shards] == [5, 5]
        plan = ShardPlan.plan(11, workers=2, min_shard_size=1)
        assert [s.size for s in plan.shards] == [6, 5]

    def test_shards_per_worker_over_partitions(self):
        plan = ShardPlan.plan(64, workers=2, shards_per_worker=4)
        assert plan.n_shards == 8

    def test_never_more_shards_than_items_allow(self):
        plan = ShardPlan.plan(9, workers=8, min_shard_size=4)
        assert plan.n_shards == 2  # 9 // 4

    def test_zero_items(self):
        plan = ShardPlan.plan(0, workers=4)
        assert plan.n_shards == 0 and plan.is_serial
        assert plan.merge([]) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="cannot shard"):
            ShardPlan.plan(-1, 2)
        with pytest.raises(ValueError, match="min_shard_size"):
            ShardPlan.plan(10, 2, min_shard_size=0)
        with pytest.raises(ValueError, match="shards_per_worker"):
            ShardPlan.plan(10, 2, shards_per_worker=0)

    def test_slice_matches_shard_bounds(self):
        items = list(range(20))
        plan = ShardPlan.plan(20, workers=3, min_shard_size=1)
        rebuilt = [x for shard in plan.shards for x in shard.slice(items)]
        assert rebuilt == items


class TestMerge:
    def test_merge_restores_serial_order(self):
        plan = ShardPlan.plan(10, workers=3, min_shard_size=1)
        per_shard = [list(shard.slice(range(10))) for shard in plan.shards]
        # completion order must not matter: merge takes shard order as given
        assert plan.merge(per_shard) == list(range(10))

    def test_merge_rejects_wrong_shard_count(self):
        plan = ShardPlan.plan(8, workers=2, min_shard_size=1)
        with pytest.raises(ValueError, match="shard results"):
            plan.merge([[0, 1, 2, 3]])

    def test_merge_rejects_short_shard(self):
        plan = ShardPlan.plan(8, workers=2, min_shard_size=1)
        with pytest.raises(ValueError, match="shard 1 returned"):
            plan.merge([[0, 1, 2, 3], [4, 5, 6]])


class TestShardStats:
    def test_matches_statistics_module(self):
        rng = np.random.default_rng(11)
        samples = list(rng.normal(50, 9, 40))
        stats = ShardStats.of(samples)
        assert stats.n == 40
        assert stats.mean == pytest.approx(statistics.fmean(samples))
        assert stats.std == pytest.approx(statistics.stdev(samples))
        assert stats.minimum == min(samples)
        assert stats.maximum == max(samples)
        assert stats.values == samples

    def test_merge_equals_stats_of_union(self):
        rng = np.random.default_rng(3)
        shards = [list(rng.normal(100, 20, n)) for n in (5, 1, 12)]
        merged = ShardStats.merge([ShardStats.of(s) for s in shards])
        union = ShardStats.of([x for s in shards for x in s])
        assert merged.n == union.n
        assert merged.mean == pytest.approx(union.mean, abs=0, rel=1e-12)
        assert merged.std == pytest.approx(union.std, abs=0, rel=1e-12)
        assert merged.values == union.values
        assert merged.to_dict()["min"] == union.minimum

    def test_empty_and_singleton(self):
        empty = ShardStats()
        assert empty.mean == 0.0 and empty.std == 0.0
        assert empty.to_dict() == {"mean": 0.0, "std": 0.0, "n": 0,
                                   "min": 0.0, "max": 0.0}
        one = ShardStats.of([7.5])
        assert one.mean == 7.5 and one.std == 0.0
        assert one.to_dict()["min"] == 7.5 and one.to_dict()["max"] == 7.5
