"""Golden parity: parallel execution is bit-identical to serial.

The contract from ``docs/PARALLEL.md``: for any worker count, every
returned float equals the serial run exactly — not approximately. The only
exempt fields are wall-clock measurements (``sched_seconds``), which by
nature differ between runs.
"""

import random
from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.resilience import resilience_sweep
from repro.experiments.runner import run_point, run_sweep
from repro.obs.ledger import RunLedger, use_ledger
from repro.parallel import ShardPlan, ShardStats
from repro.workflow.generators import generate


def smoke_config(seed):
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=15, n_instances=1,
        budgets_per_workflow=2, n_reps=8, seed=seed,
        algorithms=("heft_budg", "minmin"),
    )


def strip_wallclock(records):
    """Records with wall-clock fields zeroed — everything else must match."""
    return [replace(r, sched_seconds=0.0) for r in records]


class TestSweepParity:
    @pytest.mark.parametrize("seed", [2018, 7])
    def test_run_sweep_bit_identical_across_workers(self, seed):
        serial = run_sweep(smoke_config(seed))
        parallel = run_sweep(smoke_config(seed), workers=4)
        assert strip_wallclock(parallel) == strip_wallclock(serial)

    def test_ledger_rows_match_serial(self):
        def rows(workers):
            with RunLedger() as ledger, use_ledger(ledger):
                run_sweep(smoke_config(5), workers=workers)
                return ledger.runs(limit=0)

        serial, parallel = rows(0), rows(2)
        assert len(serial) == len(parallel) > 0
        for a, b in zip(serial, parallel):
            assert a.algorithm == b.algorithm and a.budget == b.budget
            assert a.sim_makespan == b.sim_makespan
            assert a.sim_cost == b.sim_cost
            assert a.success_rate == b.success_rate
            assert a.extra["makespan_stats"] == b.extra["makespan_stats"]


class TestPointParity:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_run_point_shards_reps_identically(self, workers):
        wf = generate("cybershake", 20, rng=5, sigma_ratio=0.5)
        from repro.experiments.budgets import high_budget
        from repro.platform.cloud import PAPER_PLATFORM

        budget = high_budget(wf, PAPER_PLATFORM)
        serial = run_point(
            wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42
        )
        sharded = run_point(
            wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42, workers=workers
        )
        assert strip_wallclock(sharded) == strip_wallclock(serial)


class TestMergeOrderIndependence:
    """Property tests for the cluster-merge contract (docs/CLUSTER.md).

    A coordinator receives shard results in *arbitrary* arrival order,
    possibly more than once (work stealing, reassignment after node
    loss), and keeps only the first result per shard. Because each shard
    result is a pure function of the shard, any such history — reordered
    by shard index and merged — must be bit-identical to the serial run.
    """

    @staticmethod
    def _random_values(rng, n):
        # Magnitudes spread over many decades so any fp reordering of
        # the merge would actually change bits.
        return [
            rng.uniform(-5.0, 5.0) * 10.0 ** rng.randrange(-8, 9)
            for _ in range(n)
        ]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_arbitrary_arrival_order_with_duplicates(self, seed):
        rng = random.Random(seed)
        for _trial in range(25):
            n = rng.randrange(1, 50)
            values = self._random_values(rng, n)
            plan = ShardPlan.plan(
                n, rng.randrange(1, 9), min_shard_size=1,
                shards_per_worker=rng.randrange(1, 4),
            )
            per_shard = [
                ShardStats.of(shard.slice(values)) for shard in plan.shards
            ]

            # simulate the wire: every shard arrives 1-3 times (retries,
            # stolen duplicates), in a random global interleaving
            arrivals = [
                i
                for i in range(len(per_shard))
                for _ in range(rng.randrange(1, 4))
            ]
            rng.shuffle(arrivals)
            first_result = {}
            for i in arrivals:
                if i not in first_result:  # duplicate suppression
                    first_result[i] = per_shard[i]
            merged = ShardStats.merge(
                [first_result[i] for i in range(len(per_shard))]
            )

            # the reconstructed sample sequence is exactly the input...
            assert merged.values == values
            assert merged.n == n
            # ...so every downstream statistic is bit-identical to serial
            assert ShardStats.of(merged.values) == ShardStats.of(values)
            # and min/max are order-free regardless of merge path
            assert merged.minimum == min(values)
            assert merged.maximum == max(values)

    def test_reassignment_recompute_is_bit_identical(self):
        """A shard recomputed on a different node yields the same bits:
        results depend only on the shard, so the merge cannot tell a
        retried shard from a first-try one."""
        rng = random.Random(99)
        values = self._random_values(rng, 31)
        plan = ShardPlan.plan(31, 4, min_shard_size=1)

        def compute(shard):  # what any node would compute
            return ShardStats.of(shard.slice(values))

        original = [compute(s) for s in plan.shards]
        recomputed = [compute(s) for s in plan.shards]  # "another node"
        assert original == recomputed
        assert ShardStats.merge(original) == ShardStats.merge(recomputed)

    def test_merge_in_shard_order_reconstructs_sequence(self):
        plan = ShardPlan.plan(10, 2, min_shard_size=1)
        values = list(map(float, range(10)))
        parts = [ShardStats.of(s.slice(values)) for s in plan.shards]
        merged = ShardStats.merge(parts)
        assert merged.values == values
        assert ShardStats.merge([]) == ShardStats()  # empty is neutral


class TestFaultInjectedParity:
    def test_resilience_sweep_bit_identical_across_workers(self):
        def sweep(workers):
            study = resilience_sweep(
                families=("montage",), n_tasks=15,
                algorithms=("heft_budg",), policies=("none", "remap"),
                crash_rates=(0.0, 5.0), n_runs=3, seed=3, workers=workers,
            )
            return [p.__dict__ for p in study.points]

        assert sweep(workers=2) == sweep(workers=0)
