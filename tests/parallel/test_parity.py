"""Golden parity: parallel execution is bit-identical to serial.

The contract from ``docs/PARALLEL.md``: for any worker count, every
returned float equals the serial run exactly — not approximately. The only
exempt fields are wall-clock measurements (``sched_seconds``), which by
nature differ between runs.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.resilience import resilience_sweep
from repro.experiments.runner import run_point, run_sweep
from repro.obs.ledger import RunLedger, use_ledger
from repro.workflow.generators import generate


def smoke_config(seed):
    return ExperimentConfig.smoke(
        families=("montage",), n_tasks=15, n_instances=1,
        budgets_per_workflow=2, n_reps=8, seed=seed,
        algorithms=("heft_budg", "minmin"),
    )


def strip_wallclock(records):
    """Records with wall-clock fields zeroed — everything else must match."""
    return [replace(r, sched_seconds=0.0) for r in records]


class TestSweepParity:
    @pytest.mark.parametrize("seed", [2018, 7])
    def test_run_sweep_bit_identical_across_workers(self, seed):
        serial = run_sweep(smoke_config(seed))
        parallel = run_sweep(smoke_config(seed), workers=4)
        assert strip_wallclock(parallel) == strip_wallclock(serial)

    def test_ledger_rows_match_serial(self):
        def rows(workers):
            with RunLedger() as ledger, use_ledger(ledger):
                run_sweep(smoke_config(5), workers=workers)
                return ledger.runs(limit=0)

        serial, parallel = rows(0), rows(2)
        assert len(serial) == len(parallel) > 0
        for a, b in zip(serial, parallel):
            assert a.algorithm == b.algorithm and a.budget == b.budget
            assert a.sim_makespan == b.sim_makespan
            assert a.sim_cost == b.sim_cost
            assert a.success_rate == b.success_rate
            assert a.extra["makespan_stats"] == b.extra["makespan_stats"]


class TestPointParity:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_run_point_shards_reps_identically(self, workers):
        wf = generate("cybershake", 20, rng=5, sigma_ratio=0.5)
        from repro.experiments.budgets import high_budget
        from repro.platform.cloud import PAPER_PLATFORM

        budget = high_budget(wf, PAPER_PLATFORM)
        serial = run_point(
            wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42
        )
        sharded = run_point(
            wf, PAPER_PLATFORM, "heft_budg", budget, 12, 42, workers=workers
        )
        assert strip_wallclock(sharded) == strip_wallclock(serial)


class TestFaultInjectedParity:
    def test_resilience_sweep_bit_identical_across_workers(self):
        def sweep(workers):
            study = resilience_sweep(
                families=("montage",), n_tasks=15,
                algorithms=("heft_budg",), policies=("none", "remap"),
                crash_rates=(0.0, 5.0), n_runs=3, seed=3, workers=workers,
            )
            return [p.__dict__ for p in study.points]

        assert sweep(workers=2) == sweep(workers=0)
