"""WorkerPool: ordered results, crash recovery, metrics, and timeouts.

The crash tests kill real worker processes with ``os._exit`` — the same
failure a dying container or OOM kill produces — and assert the pool
retries the affected shards, emits the ``worker.crashed`` event, and
keeps results identical to the serial run.
"""

import os
import time

import pytest

from repro.errors import WorkerCrashError
from repro.obs.events import WORKER_CRASHED, EventBus
from repro.obs.prometheus import render_prometheus
from repro.parallel import WorkerPool, resolve_workers
from repro.service.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# worker-side functions (must be module-level: they cross a pickle boundary)

def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad item {x}")


def crash_once(arg):
    """Die hard on the first attempt, succeed on the retry.

    ``flag`` is a filesystem path shared with the parent: absent means
    "first attempt" — create it and kill the whole worker process the way
    an OOM kill would (no exception, no cleanup).
    """
    flag, value = arg
    if flag and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    return value * 10


def always_crash(_):
    os._exit(1)


def slow(seconds):
    time.sleep(seconds)
    return seconds


class TestResolveWorkers:
    def test_passthrough_and_serial(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 1
        assert resolve_workers(6) == 6

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1) >= 1


class TestMap:
    def test_results_positional_not_completion_ordered(self):
        with WorkerPool(2) as pool:
            assert pool.map(square, list(range(10))) == [
                x * x for x in range(10)
            ]

    def test_run_single_item(self):
        with WorkerPool(1) as pool:
            assert pool.run(square, 7) == 49

    def test_fn_exception_propagates_unretried(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="bad item 3"):
                pool.map(boom, [3])
            # the pool itself is still healthy afterwards
            assert pool.map(square, [2]) == [4]
            assert pool.n_crashes == 0

    def test_timeout_raises(self):
        with WorkerPool(1) as pool:
            with pytest.raises(TimeoutError, match="timed out"):
                pool.map(slow, [30.0], timeout=0.2)

    def test_worker_stats_and_heartbeat(self):
        with WorkerPool(2) as pool:
            pool.map(square, list(range(8)))
            stats = pool.worker_stats()
            assert stats and sum(s["tasks"] for s in stats.values()) == 8
            for s in stats.values():
                assert s["busy_s"] >= 0.0 and s["last_seen"] > 0.0

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(square, [1])
        pool.close()  # idempotent

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match=">= 1 worker"):
            WorkerPool(0)
        with pytest.raises(ValueError, match="max_retries"):
            WorkerPool(1, max_retries=-1)


class TestCrashRecovery:
    def test_crashed_shard_retried_results_match_serial(self, tmp_path):
        bus = EventBus()
        metrics = MetricsRegistry()
        flag = str(tmp_path / "crash-once")
        items = [("", i) for i in range(6)]
        items[3] = (flag, 3)  # item 3 kills its worker on the first attempt
        with WorkerPool(2, metrics=metrics, events=bus) as pool:
            results = pool.map(crash_once, items)
        assert results == [i * 10 for i in range(6)]  # serial answer
        assert pool.n_crashes >= 1 and pool.n_respawns >= 1
        crashes = bus.history(types=(WORKER_CRASHED,))
        assert crashes
        event = crashes[0].data
        assert 3 in event["shard_indices"]
        assert event["attempt"] == 1 and event["pool_workers"] == 2
        assert metrics.counter("worker_crashes") >= 1
        assert metrics.counter("worker_respawns") >= 1
        rendered = render_prometheus(metrics.snapshot())
        assert "repro_worker_crashes_total" in rendered
        assert "repro_worker_respawns_total" in rendered

    def test_retries_exhausted_raises_worker_crash_error(self):
        with WorkerPool(1, max_retries=1) as pool:
            with pytest.raises(WorkerCrashError, match="exhausted") as info:
                pool.map(always_crash, [0])
        assert info.value.shard_indices == (0,)
        # one initial attempt + one retry, each a crash
        assert pool.n_crashes == 2

    def test_worker_crash_error_is_transient_not_repro(self):
        from repro.errors import ReproError

        err = WorkerCrashError("x", shard_indices=(1,))
        assert isinstance(err, RuntimeError)
        assert not isinstance(err, ReproError)
