"""Unit tests for the Schedule container."""

import pytest

from repro import Schedule, ScheduleValidationError


@pytest.fixture
def sched(chain, simple_platform):
    small = simple_platform.cheapest
    big = simple_platform.category("big")
    return Schedule(
        order=["A", "B", "C"],
        assignment={"A": 0, "B": 1, "C": 0},
        categories={0: small, 1: big},
    )


class TestQueries:
    def test_vm_of(self, sched):
        assert sched.vm_of("B") == 1

    def test_category_of(self, sched, simple_platform):
        assert sched.category_of("B") == simple_platform.category("big")

    def test_used_vms(self, sched):
        assert sched.used_vms == [0, 1]
        assert sched.n_vms == 2

    def test_tasks_on(self, sched):
        assert sched.tasks_on(0) == ["A", "C"]
        assert sched.tasks_on(1) == ["B"]

    def test_queues(self, sched):
        assert sched.queues() == {0: ["A", "C"], 1: ["B"]}

    def test_fresh_vm_id(self, sched):
        assert sched.fresh_vm_id() == 2


class TestReassigned:
    def test_moves_task(self, sched, simple_platform):
        moved = sched.reassigned("C", 1, simple_platform.category("big"))
        assert moved.vm_of("C") == 1
        assert sched.vm_of("C") == 0  # original untouched

    def test_prunes_empty_vm(self, sched, simple_platform):
        moved = sched.reassigned("B", 0, simple_platform.cheapest)
        assert moved.used_vms == [0]
        assert 1 not in moved.categories

    def test_new_vm_enrolled(self, sched, simple_platform):
        moved = sched.reassigned("C", 7, simple_platform.category("big"))
        assert moved.vm_of("C") == 7
        assert moved.categories[7] == simple_platform.category("big")

    def test_category_conflict_rejected(self, sched, simple_platform):
        with pytest.raises(ScheduleValidationError):
            sched.reassigned("C", 1, simple_platform.cheapest)  # vm1 is big

    def test_unknown_task_rejected(self, sched, simple_platform):
        with pytest.raises(ScheduleValidationError):
            sched.reassigned("Z", 0, simple_platform.cheapest)

    def test_order_preserved(self, sched, simple_platform):
        moved = sched.reassigned("C", 1, simple_platform.category("big"))
        assert moved.order == sched.order


class TestValidate:
    def test_valid_schedule_passes(self, sched, chain):
        sched.validate(chain)

    def test_duplicate_order_rejected(self, chain, simple_platform):
        s = Schedule(order=["A", "A", "B", "C"],
                     assignment={"A": 0, "B": 0, "C": 0},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError, match="duplicates"):
            s.validate(chain)

    def test_missing_task_rejected(self, chain, simple_platform):
        s = Schedule(order=["A", "B"], assignment={"A": 0, "B": 0},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError, match="mismatch"):
            s.validate(chain)

    def test_unknown_task_rejected(self, chain, simple_platform):
        s = Schedule(order=["A", "B", "C", "Z"],
                     assignment={t: 0 for t in "ABCZ"},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError):
            s.validate(chain)

    def test_unassigned_task_rejected(self, chain, simple_platform):
        s = Schedule(order=["A", "B", "C"], assignment={"A": 0, "B": 0},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError, match="unassigned"):
            s.validate(chain)

    def test_vm_without_category_rejected(self, chain, simple_platform):
        s = Schedule(order=["A", "B", "C"],
                     assignment={"A": 0, "B": 5, "C": 0},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError, match="no category"):
            s.validate(chain)

    def test_order_violating_precedence_rejected(self, chain, simple_platform):
        s = Schedule(order=["B", "A", "C"],
                     assignment={t: 0 for t in "ABC"},
                     categories={0: simple_platform.cheapest})
        with pytest.raises(ScheduleValidationError, match="violates"):
            s.validate(chain)
