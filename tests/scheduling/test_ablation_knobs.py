"""Unit tests for HEFTBUDG's ablation knobs (pot, planning weights)."""

import math

import pytest

from repro import PAPER_PLATFORM, evaluate_schedule, generate
from repro.scheduling.budget import divide_budget
from repro.scheduling.heft import HeftBudgScheduler
from repro.scheduling.planning import PlanningState


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=3, sigma_ratio=1.0)


class TestPotKnob:
    def test_default_uses_pot(self):
        assert HeftBudgScheduler().use_pot is True

    def test_no_pot_schedule_valid(self, wf):
        res = HeftBudgScheduler(use_pot=False).schedule(wf, PAPER_PLATFORM, 1.0)
        res.schedule.validate(wf)

    def test_no_pot_never_cheaper_makespan_at_mid_budget(self, wf):
        from repro.experiments.budgets import high_budget, minimal_budget

        b = minimal_budget(wf, PAPER_PLATFORM)
        budget = b + 0.3 * (high_budget(wf, PAPER_PLATFORM) - b)
        with_pot = HeftBudgScheduler(use_pot=True).schedule(
            wf, PAPER_PLATFORM, budget
        )
        without = HeftBudgScheduler(use_pot=False).schedule(
            wf, PAPER_PLATFORM, budget
        )
        mk_with = evaluate_schedule(wf, PAPER_PLATFORM, with_pot.schedule).makespan
        mk_without = evaluate_schedule(wf, PAPER_PLATFORM, without.schedule).makespan
        assert mk_with <= mk_without * 1.02

    def test_infinite_budget_knob_irrelevant(self, wf):
        a = HeftBudgScheduler(use_pot=True).schedule(wf, PAPER_PLATFORM, math.inf)
        b = HeftBudgScheduler(use_pot=False).schedule(wf, PAPER_PLATFORM, math.inf)
        assert a.schedule.assignment == b.schedule.assignment


class TestConservativeKnob:
    def test_planning_weight_switch(self, wf):
        cons = PlanningState(wf, PAPER_PLATFORM, use_conservative=True)
        mean = PlanningState(wf, PAPER_PLATFORM, use_conservative=False)
        tid = wf.topological_order[0]
        assert cons.planning_weight(tid) > mean.planning_weight(tid)
        assert mean.planning_weight(tid) == wf.task(tid).mean_weight

    def test_divide_budget_switch(self, wf):
        # with sigma = 100%, conservative t_calc doubles -> same *shares*
        # proportionally, but reservations differ through t_seq
        cons = divide_budget(wf, PAPER_PLATFORM, 2.0, use_conservative=True)
        mean = divide_budget(wf, PAPER_PLATFORM, 2.0, use_conservative=False)
        assert cons.reserve_datacenter > mean.reserve_datacenter

    def test_mean_planning_estimates_shorter_makespan(self, wf):
        cons = HeftBudgScheduler(use_conservative=True).schedule(
            wf, PAPER_PLATFORM, math.inf
        )
        mean = HeftBudgScheduler(use_conservative=False).schedule(
            wf, PAPER_PLATFORM, math.inf
        )
        assert mean.planned_makespan < cons.planned_makespan

    def test_mean_schedule_still_executes(self, wf):
        res = HeftBudgScheduler(use_conservative=False).schedule(
            wf, PAPER_PLATFORM, 1.0
        )
        run = evaluate_schedule(wf, PAPER_PLATFORM, res.schedule)
        assert set(run.tasks) == set(wf.tasks)
