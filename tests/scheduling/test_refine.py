"""Tests for HEFTBUDG+ / HEFTBUDG+INV (Algorithm 5)."""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
    refine_schedule,
)
from repro.experiments.budgets import minimal_budget


@pytest.fixture(scope="module")
def montage():
    return generate("montage", 20, rng=5, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def medium_budget_value(montage):
    return minimal_budget(montage, PAPER_PLATFORM) * 2.0


class TestRefineSchedule:
    def test_never_degrades_makespan(self, montage, medium_budget_value):
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        mk_base = evaluate_schedule(montage, PAPER_PLATFORM, base.schedule).makespan
        for reverse in (False, True):
            refined = refine_schedule(
                montage, PAPER_PLATFORM, base.schedule,
                medium_budget_value, reverse=reverse,
            )
            mk = evaluate_schedule(montage, PAPER_PLATFORM, refined).makespan
            assert mk <= mk_base + 1e-9

    def test_respects_budget(self, montage, medium_budget_value):
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        refined = refine_schedule(
            montage, PAPER_PLATFORM, base.schedule, medium_budget_value
        )
        run = evaluate_schedule(montage, PAPER_PLATFORM, refined)
        assert run.total_cost <= medium_budget_value

    def test_preserves_dispatch_order(self, montage, medium_budget_value):
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        refined = refine_schedule(
            montage, PAPER_PLATFORM, base.schedule, medium_budget_value
        )
        assert refined.order == base.schedule.order

    def test_refined_schedule_is_structurally_valid(self, montage, medium_budget_value):
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        refined = refine_schedule(
            montage, PAPER_PLATFORM, base.schedule, medium_budget_value
        )
        refined.validate(montage)

    def test_actually_improves_with_leftover(self, montage, medium_budget_value):
        """With leftover budget the refinement pass should find real gains
        (paper: up to one-third shorter makespans on MONTAGE)."""
        base = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        mk_base = evaluate_schedule(montage, PAPER_PLATFORM, base.schedule).makespan
        refined = refine_schedule(
            montage, PAPER_PLATFORM, base.schedule, medium_budget_value
        )
        mk = evaluate_schedule(montage, PAPER_PLATFORM, refined).makespan
        assert mk < mk_base  # strict improvement on this instance


class TestSchedulers:
    @pytest.mark.parametrize("algo", ["heft_budg_plus", "heft_budg_plus_inv"])
    def test_end_to_end(self, algo, montage, medium_budget_value):
        res = make_scheduler(algo).schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        res.schedule.validate(montage)
        run = evaluate_schedule(montage, PAPER_PLATFORM, res.schedule)
        assert run.total_cost <= medium_budget_value
        assert res.algorithm == algo

    def test_plus_beats_plain_heftbudg(self, montage, medium_budget_value):
        plain = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        plus = make_scheduler("heft_budg_plus").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        mk_plain = evaluate_schedule(
            montage, PAPER_PLATFORM, plain.schedule
        ).makespan
        mk_plus = evaluate_schedule(montage, PAPER_PLATFORM, plus.schedule).makespan
        assert mk_plus <= mk_plain

    def test_uses_fewer_or_equal_vms(self, montage, medium_budget_value):
        """Paper §V-C: the refined algorithms achieve smaller makespans with
        *fewer* VMs (they co-locate interdependent tasks)."""
        plain = make_scheduler("heft_budg").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        plus = make_scheduler("heft_budg_plus").schedule(
            montage, PAPER_PLATFORM, medium_budget_value
        )
        assert plus.schedule.n_vms <= plain.schedule.n_vms

    def test_infinite_budget_works(self, montage):
        res = make_scheduler("heft_budg_plus").schedule(
            montage, PAPER_PLATFORM, math.inf
        )
        res.schedule.validate(montage)
