"""Tests for ensemble scheduling under a shared budget ([19]-style)."""

import math

import pytest

from repro import PAPER_PLATFORM, SchedulingError, generate
from repro.experiments.budgets import high_budget, minimal_budget
from repro.scheduling.ensemble import (
    EnsembleMember,
    schedule_ensemble,
)


@pytest.fixture(scope="module")
def members():
    return [
        EnsembleMember(generate("montage", 14, rng=i, sigma_ratio=0.5),
                       priority=p)
        for i, p in zip(range(3), (1.0, 5.0, 2.0))
    ]


@pytest.fixture(scope="module")
def total_needed(members):
    return sum(
        minimal_budget(m.workflow, PAPER_PLATFORM) for m in members
    )


class TestAdmission:
    def test_huge_budget_admits_all(self, members, total_needed):
        out = schedule_ensemble(members, PAPER_PLATFORM, 100 * total_needed)
        assert out.n_admitted == 3
        assert not out.rejected
        assert out.total_priority == pytest.approx(8.0)

    def test_zero_budget_admits_none(self, members):
        out = schedule_ensemble(members, PAPER_PLATFORM, 0.0)
        assert out.n_admitted == 0
        assert len(out.rejected) == 3

    def test_scarce_budget_prefers_priority_density(self, members, total_needed):
        # room for roughly one workflow: the priority-5 member must be in
        one = total_needed / 3
        out = schedule_ensemble(members, PAPER_PLATFORM, one * 1.2)
        assert 1 <= out.n_admitted < 3
        assert any(a.member.priority == 5.0 for a in out.admitted)

    def test_spend_within_budget(self, members, total_needed):
        budget = 1.5 * total_needed
        out = schedule_ensemble(members, PAPER_PLATFORM, budget)
        assert out.planned_spend <= budget * 1.02
        assert sum(a.budget_share for a in out.admitted) <= budget + 1e-9

    def test_negative_budget_rejected(self, members):
        with pytest.raises(SchedulingError):
            schedule_ensemble(members, PAPER_PLATFORM, -1.0)

    def test_bad_priority_rejected(self):
        with pytest.raises(SchedulingError):
            EnsembleMember(generate("montage", 14, rng=1), priority=0.0)


class TestDeadline:
    def test_deadline_enforced_on_admitted(self, members, total_needed):
        # a deadline achievable with parallelism but not sequentially
        deadline = 4000.0
        out = schedule_ensemble(
            members, PAPER_PLATFORM, 10 * total_needed, deadline=deadline
        )
        for a in out.admitted:
            assert a.planned_makespan <= deadline + 1e-6

    def test_impossible_deadline_rejects_all(self, members):
        out = schedule_ensemble(
            members, PAPER_PLATFORM, 1e9, deadline=1.0
        )
        assert out.n_admitted == 0
        assert len(out.rejected) == 3

    def test_schedules_are_valid(self, members, total_needed):
        out = schedule_ensemble(members, PAPER_PLATFORM, 2 * total_needed)
        for a in out.admitted:
            a.schedule.validate(a.member.workflow)


class TestLeftoverRedistribution:
    def test_bonus_improves_high_priority_makespan(self, members, total_needed):
        tight = schedule_ensemble(members, PAPER_PLATFORM, total_needed * 1.01)
        rich = schedule_ensemble(members, PAPER_PLATFORM, total_needed * 20)
        if tight.n_admitted == 3 and rich.n_admitted == 3:
            by_prio_t = {a.member.priority: a for a in tight.admitted}
            by_prio_r = {a.member.priority: a for a in rich.admitted}
            assert (
                by_prio_r[5.0].planned_makespan
                <= by_prio_t[5.0].planned_makespan + 1e-6
            )
