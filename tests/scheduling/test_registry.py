"""Tests for the scheduler registry."""

import pytest

from repro import SchedulingError, available_schedulers, make_scheduler
from repro.scheduling.list_base import Scheduler


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = set(available_schedulers())
        assert {
            "minmin", "heft", "minmin_budg", "heft_budg",
            "heft_budg_plus", "heft_budg_plus_inv", "bdt", "cg", "cg_plus",
        } <= names

    def test_make_scheduler_returns_instances(self):
        for name in available_schedulers():
            s = make_scheduler(name)
            assert isinstance(s, Scheduler)
            assert s.name == name

    def test_case_insensitive(self):
        assert make_scheduler("HEFT").name == "heft"

    def test_unknown_name(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            make_scheduler("alien")

    def test_sorted_output(self):
        names = available_schedulers()
        assert names == sorted(names)
