"""Tests for HEFT / MIN-MIN and their budget-aware extensions."""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.experiments.budgets import high_budget, minimal_budget

ALGOS = ["minmin", "heft", "minmin_budg", "heft_budg"]


@pytest.fixture(scope="module")
def montage():
    return generate("montage", 30, rng=7, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def ligo():
    return generate("ligo", 30, rng=7, sigma_ratio=0.5)


class TestSchedulesAreValid:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("fixture", ["montage", "ligo"])
    def test_schedule_validates(self, algo, fixture, request):
        wf = request.getfixturevalue(fixture)
        budget = minimal_budget(wf, PAPER_PLATFORM) * 1.5
        result = make_scheduler(algo).schedule(wf, PAPER_PLATFORM, budget)
        result.schedule.validate(wf)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_tasks_assigned(self, algo, montage):
        result = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, 1.0)
        assert set(result.schedule.assignment) == set(montage.tasks)


class TestBaselineEquivalence:
    """Paper: 'when given an infinite initial budget, MIN-MIN and HEFT give
    the same schedule as MIN-MINBUDG and HEFTBUDG respectively'."""

    @pytest.mark.parametrize(
        "baseline,budgeted", [("heft", "heft_budg"), ("minmin", "minmin_budg")]
    )
    def test_infinite_budget_identical(self, baseline, budgeted, montage):
        a = make_scheduler(baseline).schedule(montage, PAPER_PLATFORM, math.inf)
        b = make_scheduler(budgeted).schedule(montage, PAPER_PLATFORM, math.inf)
        assert a.schedule.assignment == b.schedule.assignment
        assert a.schedule.order == b.schedule.order


class TestBudgetCompliance:
    @pytest.mark.parametrize("algo", ["minmin_budg", "heft_budg"])
    @pytest.mark.parametrize("factor", [1.0, 1.5, 3.0])
    def test_deterministic_cost_within_budget(self, algo, factor, montage):
        budget = minimal_budget(montage, PAPER_PLATFORM) * factor
        result = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, budget)
        run = evaluate_schedule(montage, PAPER_PLATFORM, result.schedule)
        assert run.total_cost <= budget * 1.02  # headroom for ceil billing

    @pytest.mark.parametrize("algo", ["minmin_budg", "heft_budg"])
    def test_minimal_budget_collapses_to_cheap(self, algo, montage):
        b_min = minimal_budget(montage, PAPER_PLATFORM)
        result = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, b_min)
        run = evaluate_schedule(montage, PAPER_PLATFORM, result.schedule)
        # near-minimum budget: few, cheap VMs
        assert run.n_vms <= 3
        cats = {result.schedule.categories[v].name
                for v in result.schedule.used_vms}
        assert cats <= {PAPER_PLATFORM.cheapest.name}


class TestMakespanBehaviour:
    @pytest.mark.parametrize("algo", ["minmin_budg", "heft_budg"])
    def test_makespan_improves_with_budget(self, algo, montage):
        b_min = minimal_budget(montage, PAPER_PLATFORM)
        b_high = high_budget(montage, PAPER_PLATFORM)
        tight = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, b_min)
        loose = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, b_high)
        mk_tight = evaluate_schedule(montage, PAPER_PLATFORM, tight.schedule).makespan
        mk_loose = evaluate_schedule(montage, PAPER_PLATFORM, loose.schedule).makespan
        assert mk_loose < mk_tight

    def test_high_budget_matches_baseline(self, montage):
        """With a high budget HEFTBUDG reaches the HEFT makespan."""
        b_high = high_budget(montage, PAPER_PLATFORM)
        budg = make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, b_high)
        base = make_scheduler("heft").schedule(montage, PAPER_PLATFORM, math.inf)
        mk_budg = evaluate_schedule(montage, PAPER_PLATFORM, budg.schedule).makespan
        mk_base = evaluate_schedule(montage, PAPER_PLATFORM, base.schedule).makespan
        assert mk_budg <= mk_base * 1.05

    def test_heft_budg_beats_minmin_budg_on_montage(self, montage):
        """Paper §V-B: HEFTBUDG is more budget-efficient on MONTAGE."""
        budget = minimal_budget(montage, PAPER_PLATFORM) * 2.0
        heftb = make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, budget)
        minmb = make_scheduler("minmin_budg").schedule(montage, PAPER_PLATFORM, budget)
        mk_h = evaluate_schedule(montage, PAPER_PLATFORM, heftb.schedule).makespan
        mk_m = evaluate_schedule(montage, PAPER_PLATFORM, minmb.schedule).makespan
        assert mk_h <= mk_m * 1.10  # at least comparable, typically better


class TestDiagnostics:
    def test_within_budget_flag(self, montage):
        b_high = high_budget(montage, PAPER_PLATFORM)
        res = make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, b_high)
        assert res.within_budget_plan

    def test_algorithm_names(self, montage):
        for algo in ALGOS:
            res = make_scheduler(algo).schedule(montage, PAPER_PLATFORM, 10.0)
            assert res.algorithm == algo

    def test_planned_makespan_positive(self, montage):
        res = make_scheduler("heft_budg").schedule(montage, PAPER_PLATFORM, 10.0)
        assert res.planned_makespan > 0
