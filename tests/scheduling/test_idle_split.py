"""Tests for the idle-gap VM splitting pass (§III-B discontinuous slots)."""

import pytest

from repro import (
    CloudPlatform,
    PAPER_PLATFORM,
    Schedule,
    StochasticWeight,
    Task,
    VMCategory,
    Workflow,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.scheduling.idle_split import split_idle_gaps
from repro.units import GFLOP, MB


@pytest.fixture
def gap_platform():
    """Expensive rent, cheap setup: gaps are worth splitting."""
    return CloudPlatform(
        categories=(
            VMCategory("c", speed=1 * GFLOP, hourly_cost=36.0,
                       initial_cost=0.001, boot_time=10.0),
        ),
        bandwidth=100 * MB,
    )


@pytest.fixture
def gap_workflow():
    """Two tasks forced far apart in time on the same VM.

    slowpoke (1000s on another VM) gates `late`; `early` finishes at 10s.
    Keeping `early`'s VM alive 990s costs ~$9.9; a re-book costs $0.001.
    """
    wf = Workflow("gap")
    wf.add_task(Task("early", StochasticWeight(10 * GFLOP)))
    wf.add_task(Task("slowpoke", StochasticWeight(1000 * GFLOP)))
    wf.add_task(Task("late", StochasticWeight(10 * GFLOP)))
    wf.add_edge("slowpoke", "late", 1 * MB)
    return wf.freeze()


def _gap_schedule(wf, platform):
    return Schedule(
        order=["early", "slowpoke", "late"],
        assignment={"early": 0, "slowpoke": 1, "late": 0},
        categories={0: platform.categories[0], 1: platform.categories[0]},
    )


class TestSplitIdleGaps:
    def test_splits_profitable_gap(self, gap_workflow, gap_platform):
        sched = _gap_schedule(gap_workflow, gap_platform)
        out = split_idle_gaps(gap_workflow, gap_platform, sched,
                              makespan_tolerance=0.05)
        assert out.n_splits == 1
        assert out.savings > 5.0  # ~990s of $0.01/s rent saved
        assert out.schedule.vm_of("early") != out.schedule.vm_of("late")

    def test_makespan_growth_bounded_by_tolerance(self, gap_workflow, gap_platform):
        sched = _gap_schedule(gap_workflow, gap_platform)
        out = split_idle_gaps(gap_workflow, gap_platform, sched,
                              makespan_tolerance=0.05)
        assert out.makespan_after <= out.makespan_before * 1.05 + 1e-6

    def test_zero_tolerance_rejects_boot_delay(self, gap_workflow, gap_platform):
        """Booting the replacement VM delays the tail, so the default
        zero-tolerance pass keeps the continuous slot."""
        sched = _gap_schedule(gap_workflow, gap_platform)
        out = split_idle_gaps(gap_workflow, gap_platform, sched)
        assert out.n_splits == 0

    def test_negative_tolerance_rejected(self, gap_workflow, gap_platform):
        sched = _gap_schedule(gap_workflow, gap_platform)
        with pytest.raises(ValueError):
            split_idle_gaps(gap_workflow, gap_platform, sched,
                            makespan_tolerance=-0.1)

    def test_result_schedule_valid_and_cheaper(self, gap_workflow, gap_platform):
        sched = _gap_schedule(gap_workflow, gap_platform)
        out = split_idle_gaps(gap_workflow, gap_platform, sched,
                              makespan_tolerance=0.05)
        out.schedule.validate(gap_workflow)
        run = evaluate_schedule(gap_workflow, gap_platform, out.schedule)
        assert run.total_cost == pytest.approx(out.cost_after)
        assert out.cost_after < out.cost_before

    def test_no_gap_no_split(self, chain, simple_platform):
        sched = Schedule(
            order=["A", "B", "C"],
            assignment={t: 0 for t in "ABC"},
            categories={0: simple_platform.cheapest},
        )
        out = split_idle_gaps(chain, simple_platform, sched)
        assert out.n_splits == 0
        assert out.cost_after == pytest.approx(out.cost_before)

    def test_unprofitable_gap_kept(self, gap_workflow):
        """With a big setup fee, re-booking never pays off."""
        platform = CloudPlatform(
            categories=(
                VMCategory("c", speed=1 * GFLOP, hourly_cost=0.36,
                           initial_cost=10.0, boot_time=10.0),
            ),
            bandwidth=100 * MB,
        )
        sched = _gap_schedule(gap_workflow, platform)
        out = split_idle_gaps(gap_workflow, platform, sched,
                              makespan_tolerance=0.5)
        assert out.n_splits == 0

    def test_budget_cap_respected(self, gap_workflow, gap_platform):
        sched = _gap_schedule(gap_workflow, gap_platform)
        out = split_idle_gaps(gap_workflow, gap_platform, sched, budget=1e9)
        run = evaluate_schedule(gap_workflow, gap_platform, out.schedule)
        assert run.total_cost <= 1e9

    def test_never_worse_on_real_workflows(self):
        """Safety: on HEFTBUDG schedules the pass only ever helps."""
        for family in ("cybershake", "montage"):
            wf = generate(family, 20, rng=4, sigma_ratio=0.5)
            sched = make_scheduler("heft_budg").schedule(
                wf, PAPER_PLATFORM, 1.0
            ).schedule
            out = split_idle_gaps(wf, PAPER_PLATFORM, sched)
            assert out.cost_after <= out.cost_before + 1e-9
            assert out.makespan_after <= out.makespan_before + 1e-6
