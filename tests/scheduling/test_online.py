"""Tests for the on-line rescheduling prototype (§VI future work)."""

import pytest

from repro import PAPER_PLATFORM, evaluate_schedule, execute_schedule, generate
from repro.errors import SchedulingError
from repro.experiments.budgets import high_budget, minimal_budget
from repro.scheduling.heft import HeftBudgScheduler
from repro.scheduling.online import OnlineHeftBudg
from repro.simulation.executor import sample_weights


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=6, sigma_ratio=1.0)


@pytest.fixture(scope="module")
def budget(wf):
    return high_budget(wf, PAPER_PLATFORM)


class TestOnlineHeftBudg:
    def test_bad_factor_rejected(self):
        with pytest.raises(SchedulingError):
            OnlineHeftBudg(timeout_factor=1.0)

    def test_no_stragglers_no_reschedule(self, wf, budget):
        """With actual == planned weights, nothing times out."""
        from repro.simulation.executor import conservative_weights

        online = OnlineHeftBudg(timeout_factor=1.5)
        out = online.run(wf, PAPER_PLATFORM, budget,
                         weights=conservative_weights(wf))
        assert out.n_reschedules == 0
        assert out.timeouts == []

    def test_detects_injected_straggler(self, wf, budget):
        """One task blown up to 5x its conservative weight must time out."""
        from repro.simulation.executor import conservative_weights

        weights = conservative_weights(wf)
        victim = sorted(wf.tasks)[3]
        weights[victim] *= 5.0
        online = OnlineHeftBudg(timeout_factor=1.5)
        out = online.run(wf, PAPER_PLATFORM, budget, weights=weights)
        assert victim in out.timeouts
        assert out.n_reschedules >= 1

    def test_final_schedule_is_executable(self, wf, budget):
        online = OnlineHeftBudg(timeout_factor=1.2)
        out = online.run(wf, PAPER_PLATFORM, budget, rng=3)
        out.schedule.validate(wf)
        assert set(out.result.tasks) == set(wf.tasks)
        assert out.makespan > 0 and out.total_cost > 0

    def test_rescheduling_not_worse_on_average(self, wf, budget):
        """Across stochastic runs the monitored execution should not lose
        to the static schedule on average (that is its entire point)."""
        online = OnlineHeftBudg(timeout_factor=1.3)
        static_sched = HeftBudgScheduler().schedule(
            wf, PAPER_PLATFORM, budget
        ).schedule
        static_total, online_total = 0.0, 0.0
        for seed in range(6):
            weights = sample_weights(wf, rng=seed)
            static_total += execute_schedule(
                wf, PAPER_PLATFORM, static_sched, weights
            ).makespan
            online_total += online.run(
                wf, PAPER_PLATFORM, budget, weights=weights
            ).makespan
        assert online_total <= static_total * 1.05

    def test_respects_reschedule_bound(self, wf, budget):
        online = OnlineHeftBudg(timeout_factor=1.01, max_reschedules=2)
        out = online.run(wf, PAPER_PLATFORM, budget, rng=1)
        assert out.n_reschedules <= 2
