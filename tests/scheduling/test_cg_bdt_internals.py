"""Internals of the extended competitors: CG cost anchors and BDT's TCTF."""

import math

import pytest

from repro import PAPER_PLATFORM, generate
from repro.scheduling.bdt import BdtScheduler
from repro.scheduling.cg import CgScheduler, _single_vm_cost, _task_cost_on
from repro.scheduling.planning import HostEvaluation
from repro.platform.vm import VMCategory


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=6, sigma_ratio=0.5)


class TestCgAnchors:
    def test_single_vm_cost_positive_and_finite(self, wf):
        for cat in PAPER_PLATFORM.categories:
            c = _single_vm_cost(wf, PAPER_PLATFORM, cat)
            assert 0 < c < math.inf

    def test_task_cost_reflects_efficiency_penalty(self, wf):
        """Per-task cost grows with category under sub-linear speed/cost."""
        tid = wf.topological_order[0]
        costs = [
            _task_cost_on(wf, PAPER_PLATFORM, tid, cat)
            for cat in PAPER_PLATFORM.categories
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_gb_extremes_select_extreme_categories(self, wf):
        # essentially-zero budget -> everything on the cheapest category
        low = CgScheduler().schedule(wf, PAPER_PLATFORM, 1e-6)
        cats_low = {low.schedule.categories[v].name
                    for v in low.schedule.used_vms}
        assert cats_low == {PAPER_PLATFORM.cheapest.name}
        # infinite budget -> everything on the most expensive category
        high = CgScheduler().schedule(wf, PAPER_PLATFORM, math.inf)
        cats_high = {high.schedule.categories[v].name
                     for v in high.schedule.used_vms}
        assert cats_high == {PAPER_PLATFORM.most_expensive.name}


def _fake_eval(tid, eft, vm_id=None, cat=None):
    cat = cat or VMCategory("x", speed=1e9, hourly_cost=1.0)
    return HostEvaluation(
        tid=tid, category=cat, vm_id=vm_id, eft=eft, cost=0.0,
        t_begin=0.0, download_start=0.0, compute_start=0.0,
        upload_end=eft, window_start=0.0, window_end=eft,
    )


class TestBdtTctf:
    def test_prefers_fast_host_when_budget_allows(self):
        slow_cheap = (_fake_eval("t", eft=100.0), 1.0)
        fast_pricey = (_fake_eval("t", eft=50.0), 5.0)
        chosen, cost = BdtScheduler._pick_tctf(
            [slow_cheap, fast_pricey], sub_budget=10.0
        )
        assert chosen.eft == 50.0

    def test_single_candidate(self):
        only = (_fake_eval("t", eft=10.0), 2.0)
        chosen, cost = BdtScheduler._pick_tctf([only], sub_budget=5.0)
        assert chosen is only[0] and cost == 2.0

    def test_equal_ect_span_handled(self):
        a = (_fake_eval("t", eft=10.0), 1.0)
        b = (_fake_eval("t", eft=10.0), 3.0)
        chosen, cost = BdtScheduler._pick_tctf([a, b], sub_budget=5.0)
        # tie on time factor: cheaper host wins through the tie-break
        assert cost == 1.0

    def test_full_cost_adds_init_for_new_vm_only(self):
        cat = VMCategory("x", speed=1e9, hourly_cost=1.0, initial_cost=0.5)
        new = _fake_eval("t", eft=10.0, vm_id=None, cat=cat)
        used = _fake_eval("t", eft=10.0, vm_id=0, cat=cat)
        assert BdtScheduler._full_cost(new) == pytest.approx(0.5)
        assert BdtScheduler._full_cost(used) == pytest.approx(0.0)

    def test_deterministic(self):
        cands = [
            (_fake_eval("t", eft=100.0), 1.0),
            (_fake_eval("t", eft=60.0), 2.0),
            (_fake_eval("t", eft=40.0), 4.0),
        ]
        first = BdtScheduler._pick_tctf(cands, sub_budget=8.0)
        second = BdtScheduler._pick_tctf(cands, sub_budget=8.0)
        assert first == second
