"""Contingency-reserve wrapper: withheld budget, registry spelling."""

import pytest

from repro.errors import SchedulingError
from repro.platform.cloud import PAPER_PLATFORM
from repro.scheduling.contingency import ContingencyScheduler, parse_reserved
from repro.scheduling.registry import make_scheduler
from repro.workflow.generators import generate

BUDGET = 0.4


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=1, sigma_ratio=0.5)


class TestContingencyScheduler:
    def test_reserve_lands_in_leftover_pot(self, wf):
        plain = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, BUDGET)
        reserved = ContingencyScheduler(
            make_scheduler("heft_budg"), reserve=0.25
        ).schedule(wf, PAPER_PLATFORM, BUDGET)
        withheld = BUDGET * 0.25
        # The base plan sees less money, so it cannot cost more than the
        # reduced budget; the withheld dollars surface in the pot.
        assert reserved.planned_vm_cost <= BUDGET - withheld + 1e-9
        assert reserved.leftover_pot >= withheld - 1e-9
        assert reserved.planned_vm_cost <= plain.planned_vm_cost + 1e-9
        assert reserved.algorithm == "heft_budg+res0.25"

    def test_zero_reserve_is_the_base_plan(self, wf):
        plain = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, BUDGET)
        zero = ContingencyScheduler(
            make_scheduler("heft_budg"), reserve=0.0
        ).schedule(wf, PAPER_PLATFORM, BUDGET)
        assert zero.planned_makespan == plain.planned_makespan
        assert zero.planned_vm_cost == plain.planned_vm_cost
        assert zero.leftover_pot == plain.leftover_pot

    def test_reserve_bounds_enforced(self):
        base = make_scheduler("heft_budg")
        with pytest.raises(SchedulingError, match="reserve"):
            ContingencyScheduler(base, reserve=1.0)
        with pytest.raises(SchedulingError, match="reserve"):
            ContingencyScheduler(base, reserve=-0.1)


class TestRegistrySpelling:
    def test_make_scheduler_parses_reserve_suffix(self, wf):
        sched = make_scheduler("heft_budg+res0.2")
        assert isinstance(sched, ContingencyScheduler)
        assert sched.reserve == 0.2
        assert sched.base.name == "heft_budg"
        result = sched.schedule(wf, PAPER_PLATFORM, BUDGET)
        assert result.algorithm == "heft_budg+res0.2"

    def test_plain_names_untouched(self):
        assert not isinstance(make_scheduler("heft_budg"),
                              ContingencyScheduler)

    def test_malformed_fraction_fails_loudly(self):
        with pytest.raises(SchedulingError, match="malformed"):
            make_scheduler("heft_budg+resX")

    def test_unknown_base_rejected(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            make_scheduler("prayer+res0.2")

    def test_parse_reserved_passthrough(self):
        assert parse_reserved("heft_budg") is None
