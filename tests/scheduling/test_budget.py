"""Unit tests for budget reservation and division (Algorithm 1)."""

import math

import pytest

from repro import divide_budget, generate
from repro.errors import SchedulingError
from repro.scheduling.budget import datacenter_reservation
from repro.units import GFLOP


class TestReservation:
    def test_reservation_formula(self, single_task, booted_platform):
        reserve = datacenter_reservation(single_task, booted_platform)
        # t_seq = 55 Gflop / 1.5 Gflop/s + 300MB / 100MB/s
        t_seq = 55e9 / booted_platform.mean_speed + 3.0
        expected = (
            t_seq * booted_platform.datacenter_rate(single_task)
            + booted_platform.io_cost(single_task)
        )
        assert reserve == pytest.approx(expected)

    def test_no_datacenter_charges_no_reservation(self, diamond, simple_platform):
        assert datacenter_reservation(diamond, simple_platform) == 0.0


class TestDivision:
    def test_shares_sum_to_b_calc(self, diamond, booted_platform):
        plan = divide_budget(diamond, booted_platform, 10.0)
        assert plan.total_shares == pytest.approx(plan.b_calc)

    def test_b_calc_accounting(self, diamond, booted_platform):
        plan = divide_budget(diamond, booted_platform, 10.0)
        assert plan.b_calc == pytest.approx(
            10.0 - plan.reserve_datacenter - plan.reserve_init
        )

    def test_init_reservation_uses_cheapest(self, diamond, booted_platform):
        plan = divide_budget(diamond, booted_platform, 10.0)
        assert plan.reserve_init == pytest.approx(
            diamond.n_tasks * booted_platform.cheapest.initial_cost
        )

    def test_shares_proportional_to_t_calc(self, chain, simple_platform):
        plan = divide_budget(chain, simple_platform, 1.0)
        # B has twice A's weight plus the same 500MB input as C
        s = simple_platform.mean_speed
        bw = simple_platform.bandwidth
        t_a = 100e9 / s
        t_b = 200e9 / s + 500e6 / bw
        assert plan.share("B") / plan.share("A") == pytest.approx(t_b / t_a)

    def test_budget_smaller_than_reservation_clamps(self, single_task, booted_platform):
        plan = divide_budget(single_task, booted_platform, 0.0001)
        assert plan.b_calc == 0.0
        assert plan.share("only") == 0.0

    def test_infinite_budget(self, diamond, simple_platform):
        plan = divide_budget(diamond, simple_platform, math.inf)
        assert all(math.isinf(v) for v in plan.shares.values())

    def test_negative_budget_rejected(self, diamond, simple_platform):
        with pytest.raises(SchedulingError):
            divide_budget(diamond, simple_platform, -1.0)

    def test_every_task_has_share(self):
        from repro import PAPER_PLATFORM

        wf = generate("ligo", 60, rng=1, sigma_ratio=0.5)
        plan = divide_budget(wf, PAPER_PLATFORM, 50.0)
        assert set(plan.shares) == set(wf.tasks)
        assert all(v >= 0.0 for v in plan.shares.values())

    def test_conservative_weights_used(self, diamond, simple_platform):
        """Shares must grow with sigma (w̄+σ planning weight)."""
        inflated = diamond.with_sigma_ratio(1.0)
        base = divide_budget(diamond, simple_platform, 1.0)
        more = divide_budget(inflated, simple_platform, 1.0)
        # same relative split here (uniform sigma), but t_calc doubles;
        # check the underlying total duration via equal shares + b_calc
        assert more.b_calc == base.b_calc  # no DC/init on simple platform
        assert more.total_shares == pytest.approx(base.total_shares)
