"""Unit tests for the incremental planning state (Eq. 7 arithmetic)."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.planning import PlanningState
from repro.units import GB, GFLOP, MB


class TestReadiness:
    def test_entry_tasks_ready(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        assert state.ready_tasks() == ["A"]

    def test_readiness_progresses(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        assert set(state.ready_tasks()) == {"B", "C"}

    def test_evaluating_before_predecessors_fails(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        with pytest.raises(SchedulingError):
            state.evaluate("D", None, simple_platform.cheapest)


class TestEvaluateNewVM:
    def test_entry_task_timeline(self, chain, booted_platform):
        # A: 100 Gflop, no inputs; new small VM with 100s boot
        state = PlanningState(chain, booted_platform)
        ev = state.evaluate("A", None, booted_platform.cheapest)
        assert ev.t_begin == 0.0
        assert ev.download_start == pytest.approx(100.0)  # after boot
        assert ev.compute_start == pytest.approx(100.0)   # nothing to download
        assert ev.eft == pytest.approx(200.0)
        assert ev.upload_end == pytest.approx(205.0)      # 500MB at 100MB/s
        assert ev.is_new_vm

    def test_cost_excludes_boot(self, chain, booted_platform):
        state = PlanningState(chain, booted_platform)
        ev = state.evaluate("A", None, booted_platform.cheapest)
        # window 100 -> 205 at $0.001/s
        assert ev.cost == pytest.approx(105 * 0.001)

    def test_faster_category(self, chain, booted_platform):
        state = PlanningState(chain, booted_platform)
        ev = state.evaluate("A", None, booted_platform.category("big"))
        assert ev.eft == pytest.approx(150.0)  # 100 Gflop / 2 Gflop/s


class TestEvaluateUsedVM:
    def test_same_vm_skips_transfer(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        vm = state.commit(state.evaluate("A", None, simple_platform.cheapest))
        ev = state.evaluate("B", vm, vm.category)
        # no download, starts at A's EFT (100), runs 200s
        assert ev.compute_start == pytest.approx(100.0)
        assert ev.eft == pytest.approx(300.0)

    def test_cross_vm_waits_for_upload(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        ev = state.evaluate("B", None, simple_platform.cheapest)
        # A finishes at 100, upload 5s -> inputs at DC 105; download 5s
        assert ev.t_begin == pytest.approx(105.0)
        assert ev.compute_start == pytest.approx(110.0)
        assert ev.eft == pytest.approx(310.0)

    def test_used_vm_idle_gap_is_billed(self, simple_platform, fork_join):
        state = PlanningState(fork_join, simple_platform)
        src_vm = state.commit(state.evaluate("src", None, simple_platform.cheapest))
        # place par0 on a second VM; then par1 back on the source VM
        state.commit(state.evaluate("par0", None, simple_platform.cheapest))
        ev = state.evaluate("par1", src_vm, src_vm.category)
        # src: eft=10, upload ends 10 + 4*1s; par1 downloads 1s after its
        # edge is at DC (11) -> no idle gap here; cost = window growth
        assert ev.cost == pytest.approx(
            (ev.window_end - max(src_vm.window_end, 0.0)) * 0.001
        )

    def test_stale_commit_rejected(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        vm = state.commit(state.evaluate("A", None, simple_platform.cheapest))
        ev_b = state.evaluate("B", vm, vm.category)
        state.commit(state.evaluate("C", vm, vm.category))  # vm moved on
        with pytest.raises(SchedulingError, match="stale"):
            state.commit(ev_b)

    def test_double_commit_rejected(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        ev = state.evaluate("A", None, simple_platform.cheapest)
        state.commit(ev)
        with pytest.raises(SchedulingError, match="twice"):
            state.commit(ev)


class TestEvaluateAll:
    def test_candidate_count(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        assert len(state.evaluate_all("A")) == 2  # no used VMs, 2 categories
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        assert len(state.evaluate_all("B")) == 3  # 1 used + 2 fresh

    def test_to_schedule_requires_all_committed(self, diamond, simple_platform):
        state = PlanningState(diamond, simple_platform)
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        with pytest.raises(SchedulingError, match="unscheduled"):
            state.to_schedule()

    def test_to_schedule_roundtrip(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        for tid in chain.topological_order:
            state.commit(
                min(state.evaluate_all(tid), key=lambda e: (e.eft, e.cost))
            )
        sched = state.to_schedule()
        sched.validate(chain)
        assert sched.order == chain.topological_order


class TestMakespanAndCost:
    def test_empty_state(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        assert state.makespan == 0.0
        assert state.vm_rental_cost() == 0.0

    def test_makespan_counts_uploads(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        # A ends at 100, conservative upload of its 500MB edge -> 105
        assert state.makespan == pytest.approx(105.0)

    def test_earliest_start(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        assert state.earliest_start("A") == 0.0
        state.commit(state.evaluate("A", None, simple_platform.cheapest))
        assert state.earliest_start("B") == pytest.approx(105.0)
