"""Tests for the extended competitors BDT and CG/CG+ (§V-D)."""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.experiments.budgets import high_budget, minimal_budget
from repro.scheduling.cg import critical_tasks_of


@pytest.fixture(scope="module")
def montage():
    return generate("montage", 20, rng=9, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def cybershake():
    return generate("cybershake", 20, rng=9, sigma_ratio=0.5)


class TestBdt:
    def test_schedule_complete_and_valid(self, montage):
        res = make_scheduler("bdt").schedule(montage, PAPER_PLATFORM, 1.0)
        res.schedule.validate(montage)

    def test_eager_behaviour_overspends_tight_budget(self, montage):
        """Paper Figure 3: BDT often violates small budgets."""
        b_min = minimal_budget(montage, PAPER_PLATFORM)
        res = make_scheduler("bdt").schedule(montage, PAPER_PLATFORM, b_min)
        run = evaluate_schedule(montage, PAPER_PLATFORM, res.schedule)
        assert run.total_cost > b_min  # invalid at the minimum budget

    def test_fast_when_it_spends(self, montage):
        """When BDT succeeds, its makespan is competitive (paper §V-D3)."""
        budget = high_budget(montage, PAPER_PLATFORM)
        bdt = make_scheduler("bdt").schedule(montage, PAPER_PLATFORM, budget)
        cheap_mk = evaluate_schedule(
            montage, PAPER_PLATFORM,
            make_scheduler("heft_budg").schedule(
                montage, PAPER_PLATFORM, minimal_budget(montage, PAPER_PLATFORM)
            ).schedule,
        ).makespan
        bdt_mk = evaluate_schedule(montage, PAPER_PLATFORM, bdt.schedule).makespan
        assert bdt_mk < cheap_mk / 2

    def test_levels_scheduled_in_order(self, montage):
        res = make_scheduler("bdt").schedule(montage, PAPER_PLATFORM, 5.0)
        levels = montage.levels()
        order_pos = {t: i for i, t in enumerate(res.schedule.order)}
        for edge in montage.edges():
            assert order_pos[edge.producer] < order_pos[edge.consumer]
        # tasks appear grouped by non-decreasing level
        seq = [levels[t] for t in res.schedule.order]
        assert seq == sorted(seq)


class TestCg:
    def test_schedule_complete_and_valid(self, montage):
        res = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, 1.0)
        res.schedule.validate(montage)

    def test_low_budget_stays_cheap(self, montage):
        """Paper: CG 'returns schedules that are close to the cheapest
        possible schedule'."""
        b_min = minimal_budget(montage, PAPER_PLATFORM)
        res = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, b_min)
        cats = {res.schedule.categories[v].name for v in res.schedule.used_vms}
        assert cats <= {PAPER_PLATFORM.cheapest.name}

    def test_single_category_per_low_gb(self, montage):
        """With gb ~ 0 every task targets its minimum cost category."""
        b_min = minimal_budget(montage, PAPER_PLATFORM)
        res = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, b_min * 0.5)
        cats = {res.schedule.categories[v].name for v in res.schedule.used_vms}
        assert cats == {PAPER_PLATFORM.cheapest.name}

    def test_infinite_budget(self, montage):
        res = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, math.inf)
        res.schedule.validate(montage)


class TestCgPlus:
    def test_never_worse_than_cg(self, montage):
        budget = high_budget(montage, PAPER_PLATFORM)
        cg = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, budget)
        cgp = make_scheduler("cg_plus").schedule(montage, PAPER_PLATFORM, budget)
        mk_cg = evaluate_schedule(montage, PAPER_PLATFORM, cg.schedule).makespan
        mk_cgp = evaluate_schedule(montage, PAPER_PLATFORM, cgp.schedule).makespan
        assert mk_cgp <= mk_cg + 1e-9

    def test_budget_respected_by_refinement(self, montage):
        budget = high_budget(montage, PAPER_PLATFORM)
        cgp = make_scheduler("cg_plus").schedule(montage, PAPER_PLATFORM, budget)
        run = evaluate_schedule(montage, PAPER_PLATFORM, cgp.schedule)
        assert run.total_cost <= budget

    def test_higher_makespan_than_refined_heft(self, cybershake):
        """Paper Figure 4: CG+ keeps finding schedules with high makespans
        compared to HEFTBUDG+."""
        budget = high_budget(cybershake, PAPER_PLATFORM)
        cgp = make_scheduler("cg_plus").schedule(cybershake, PAPER_PLATFORM, budget)
        hbp = make_scheduler("heft_budg_plus").schedule(
            cybershake, PAPER_PLATFORM, budget
        )
        mk_cgp = evaluate_schedule(cybershake, PAPER_PLATFORM, cgp.schedule).makespan
        mk_hbp = evaluate_schedule(cybershake, PAPER_PLATFORM, hbp.schedule).makespan
        assert mk_hbp <= mk_cgp


class TestCriticalPath:
    def test_critical_tasks_form_a_chain_in_time(self, montage):
        res = make_scheduler("cg").schedule(montage, PAPER_PLATFORM, 2.0)
        run = evaluate_schedule(montage, PAPER_PLATFORM, res.schedule)
        path = critical_tasks_of(montage, res.schedule, run)
        assert path  # non-empty
        # ends at the last-finishing task
        last = max(run.tasks.values(), key=lambda r: r.compute_end).tid
        assert path[-1] == last
        # strictly increasing finish times along the path
        finishes = [run.tasks[t].compute_end for t in path]
        assert finishes == sorted(finishes)
