"""Internals of the on-line rescheduling prototype."""

import pytest

from repro import PAPER_PLATFORM, generate, make_scheduler
from repro.scheduling.online import OnlineHeftBudg
from repro.simulation.executor import conservative_weights, execute_schedule


@pytest.fixture(scope="module")
def setting():
    wf = generate("montage", 16, rng=2, sigma_ratio=0.5)
    sched = make_scheduler("heft_budg").schedule(wf, PAPER_PLATFORM, 2.0).schedule
    weights = conservative_weights(wf)
    run = execute_schedule(wf, PAPER_PLATFORM, sched, weights)
    return wf, sched, weights, run


class TestFirstTimeout:
    def test_no_timeout_with_planned_weights(self, setting):
        wf, sched, weights, run = setting
        online = OnlineHeftBudg(timeout_factor=1.5)
        assert online._first_timeout(wf, sched, run, weights, set()) is None

    def test_detection_instant(self, setting):
        wf, sched, weights, _ = setting
        victim = sched.order[0]
        blown = dict(weights)
        blown[victim] *= 4.0
        run = execute_schedule(wf, PAPER_PLATFORM, sched, blown)
        online = OnlineHeftBudg(timeout_factor=1.5)
        hit = online._first_timeout(wf, sched, run, blown, set())
        assert hit is not None
        tid, detection = hit
        assert tid == victim
        planned = online._planned_duration(wf, sched, victim)
        assert detection == pytest.approx(
            run.tasks[victim].compute_start + 1.5 * planned
        )

    def test_handled_set_respected(self, setting):
        wf, sched, weights, _ = setting
        victim = sched.order[0]
        blown = dict(weights)
        blown[victim] *= 4.0
        run = execute_schedule(wf, PAPER_PLATFORM, sched, blown)
        online = OnlineHeftBudg(timeout_factor=1.5)
        assert online._first_timeout(wf, sched, run, blown, {victim}) is None

    def test_earliest_detection_wins(self, setting):
        wf, sched, weights, _ = setting
        first, second = sched.order[0], sched.order[-1]
        blown = dict(weights)
        blown[first] *= 4.0
        blown[second] *= 4.0
        run = execute_schedule(wf, PAPER_PLATFORM, sched, blown)
        online = OnlineHeftBudg(timeout_factor=1.5)
        tid, _ = online._first_timeout(wf, sched, run, blown, set())
        assert tid == first


class TestKnowledgeWeights:
    def test_finished_tasks_use_truth(self, setting):
        wf, sched, weights, run = setting
        online = OnlineHeftBudg(timeout_factor=1.5)
        detection = run.end + 1.0  # everything finished
        straggler = sched.order[0]
        know = online._knowledge_weights(
            wf, sched, run, weights, detection, straggler
        )
        for tid in wf.tasks:
            if tid != straggler:
                assert know[tid] == weights[tid]

    def test_unfinished_tasks_use_conservative(self, setting):
        wf, sched, weights, run = setting
        online = OnlineHeftBudg(timeout_factor=1.5)
        detection = -1.0  # nothing finished yet
        straggler = sched.order[0]
        know = online._knowledge_weights(
            wf, sched, run, weights, detection, straggler
        )
        for tid in wf.tasks:
            if tid != straggler:
                assert know[tid] == wf.task(tid).conservative_weight

    def test_straggler_floored_at_timeout_bound(self, setting):
        wf, sched, weights, run = setting
        online = OnlineHeftBudg(timeout_factor=1.5)
        straggler = sched.order[0]
        know = online._knowledge_weights(
            wf, sched, run, weights, -1.0, straggler
        )
        assert know[straggler] >= 1.5 * wf.task(straggler).conservative_weight


class TestRemap:
    def test_remap_preserves_order_and_coverage(self, setting):
        wf, sched, weights, _ = setting
        victim = sched.order[0]
        blown = dict(weights)
        blown[victim] *= 6.0
        run = execute_schedule(wf, PAPER_PLATFORM, sched, blown)
        online = OnlineHeftBudg(timeout_factor=1.5)
        detection = run.tasks[victim].compute_start + 1.5 * (
            online._planned_duration(wf, sched, victim)
        )
        remapped = online._remap_remaining(
            wf, PAPER_PLATFORM, 2.0, sched, run, detection
        )
        assert remapped.order == sched.order
        remapped.validate(wf)

    def test_frozen_tasks_keep_assignment(self, setting):
        wf, sched, weights, _ = setting
        victim = sched.order[0]
        blown = dict(weights)
        blown[victim] *= 6.0
        run = execute_schedule(wf, PAPER_PLATFORM, sched, blown)
        online = OnlineHeftBudg(timeout_factor=1.5)
        detection = run.tasks[victim].compute_start + 1.5 * (
            online._planned_duration(wf, sched, victim)
        )
        remapped = online._remap_remaining(
            wf, PAPER_PLATFORM, 2.0, sched, run, detection
        )
        frozen = [t for t in sched.order
                  if run.tasks[t].compute_start <= detection]
        # frozen tasks stay grouped as before (vm ids may be renumbered):
        # two frozen tasks co-located before must stay co-located.
        for a in frozen:
            for b in frozen:
                same_before = sched.vm_of(a) == sched.vm_of(b)
                same_after = remapped.vm_of(a) == remapped.vm_of(b)
                assert same_before == same_after
