"""Unit tests for getBestHost (Algorithm 2)."""

import math

import pytest

from repro.scheduling.list_base import get_best_host
from repro.scheduling.planning import PlanningState


class TestGetBestHost:
    def test_infinite_allowance_picks_min_eft(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        ev, within = get_best_host(state, "A", math.inf)
        assert within
        # the big VM halves compute: min EFT
        assert ev.category.name == "big"

    def test_tight_allowance_forces_cheap_host(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        # big: 50s+5s upload at 0.002 = 0.110$; small: 105s at 0.001 = 0.105$
        ev, within = get_best_host(state, "A", 0.106)
        assert within
        assert ev.category.name == "small"

    def test_no_affordable_host_falls_back_to_cheapest(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        ev, within = get_best_host(state, "A", 0.0001)
        assert not within
        evaluations = state.evaluate_all("A")
        assert ev.cost == min(e.cost for e in evaluations)

    def test_reusing_vm_can_be_free_of_transfer(self, chain, simple_platform):
        state = PlanningState(chain, simple_platform)
        ev, _ = get_best_host(state, "A", math.inf)
        state.commit(ev)
        ev_b, within = get_best_host(state, "B", math.inf)
        assert within
        # staying on A's (big) VM avoids the DC round trip: EFT 50+100=150
        assert ev_b.vm_id == 0
        assert ev_b.eft == pytest.approx(150.0)

    def test_deterministic_tie_break(self, single_task, simple_platform):
        state = PlanningState(single_task, simple_platform)
        a, _ = get_best_host(state, "only", math.inf)
        b, _ = get_best_host(state, "only", math.inf)
        assert (a.vm_id, a.category.name) == (b.vm_id, b.category.name)

    def test_budget_tolerance(self, chain, simple_platform):
        """A cost equal to the allowance (modulo float fuzz) is affordable."""
        state = PlanningState(chain, simple_platform)
        evaluations = state.evaluate_all("A")
        cheapest = min(e.cost for e in evaluations)
        ev, within = get_best_host(state, "A", cheapest)
        assert within
