"""Tests for the MAX-MIN and SUFFERAGE extensions."""

import math

import pytest

from repro import (
    PAPER_PLATFORM,
    evaluate_schedule,
    generate,
    make_scheduler,
)
from repro.experiments.budgets import high_budget, minimal_budget

ALGOS = ["maxmin", "sufferage", "maxmin_budg", "sufferage_budg"]


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=15, sigma_ratio=0.5)


class TestBasics:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_schedule_valid(self, algo, wf):
        result = make_scheduler(algo).schedule(wf, PAPER_PLATFORM, 1.0)
        result.schedule.validate(wf)
        assert result.algorithm == algo

    @pytest.mark.parametrize("pair", [("maxmin", "maxmin_budg"),
                                      ("sufferage", "sufferage_budg")])
    def test_infinite_budget_equivalence(self, pair, wf):
        base, budg = pair
        a = make_scheduler(base).schedule(wf, PAPER_PLATFORM, math.inf)
        b = make_scheduler(budg).schedule(wf, PAPER_PLATFORM, math.inf)
        assert a.schedule.assignment == b.schedule.assignment

    @pytest.mark.parametrize("algo", ["maxmin_budg", "sufferage_budg"])
    def test_budget_respected(self, algo, wf):
        budget = 2.0 * minimal_budget(wf, PAPER_PLATFORM)
        result = make_scheduler(algo).schedule(wf, PAPER_PLATFORM, budget)
        run = evaluate_schedule(wf, PAPER_PLATFORM, result.schedule)
        assert run.total_cost <= budget * 1.02

    @pytest.mark.parametrize("algo", ["maxmin_budg", "sufferage_budg"])
    def test_makespan_improves_with_budget(self, algo, wf):
        b_min = minimal_budget(wf, PAPER_PLATFORM)
        b_high = high_budget(wf, PAPER_PLATFORM)
        tight = make_scheduler(algo).schedule(wf, PAPER_PLATFORM, b_min)
        loose = make_scheduler(algo).schedule(wf, PAPER_PLATFORM, b_high)
        mk_tight = evaluate_schedule(wf, PAPER_PLATFORM, tight.schedule).makespan
        mk_loose = evaluate_schedule(wf, PAPER_PLATFORM, loose.schedule).makespan
        assert mk_loose <= mk_tight


class TestSelectionSemantics:
    def test_maxmin_schedules_big_task_first(self, simple_platform):
        """Among independent ready tasks, MAX-MIN picks the heaviest."""
        from repro import StochasticWeight, Task, Workflow

        wf = Workflow("bag")
        wf.add_task(Task("small", StochasticWeight(10e9)))
        wf.add_task(Task("huge", StochasticWeight(500e9)))
        wf.add_task(Task("medium", StochasticWeight(100e9)))
        wf.freeze()
        result = make_scheduler("maxmin").schedule(
            wf, simple_platform, math.inf
        )
        assert result.schedule.order[0] == "huge"

    def test_minmin_schedules_small_task_first(self, simple_platform):
        from repro import StochasticWeight, Task, Workflow

        wf = Workflow("bag")
        wf.add_task(Task("small", StochasticWeight(10e9)))
        wf.add_task(Task("huge", StochasticWeight(500e9)))
        wf.freeze()
        result = make_scheduler("minmin").schedule(
            wf, simple_platform, math.inf
        )
        assert result.schedule.order[0] == "small"

    def test_competitive_makespan_at_high_budget(self, wf):
        """The classical heuristics land in the same ballpark as HEFT."""
        budget = high_budget(wf, PAPER_PLATFORM)
        mk_heft = evaluate_schedule(
            wf, PAPER_PLATFORM,
            make_scheduler("heft").schedule(wf, PAPER_PLATFORM, math.inf).schedule,
        ).makespan
        for algo in ("maxmin", "sufferage"):
            mk = evaluate_schedule(
                wf, PAPER_PLATFORM,
                make_scheduler(algo).schedule(wf, PAPER_PLATFORM, budget).schedule,
            ).makespan
            assert mk <= mk_heft * 2.0, algo
