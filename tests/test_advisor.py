"""Tests for the Eq. (3) planning advisor."""

import math

import pytest

from repro import PAPER_PLATFORM, SchedulingError, generate
from repro.advisor import recommend
from repro.experiments.budgets import high_budget, minimal_budget
from repro.simulation.executor import evaluate_schedule


@pytest.fixture(scope="module")
def wf():
    return generate("montage", 20, rng=10, sigma_ratio=0.5)


@pytest.fixture(scope="module")
def loose_deadline(wf):
    # comfortably above the parallel makespan
    from repro import make_scheduler

    sched = make_scheduler("heft").schedule(wf, PAPER_PLATFORM, math.inf).schedule
    return 1.5 * evaluate_schedule(wf, PAPER_PLATFORM, sched).makespan


class TestRecommend:
    def test_feasible_plan_meets_confidence(self, wf, loose_deadline):
        plan = recommend(wf, PAPER_PLATFORM, loose_deadline,
                         confidence=0.9, n_samples=30, rng=1)
        assert plan.feasible
        assert plan.risk.p_meets_objective >= 0.9
        plan.schedule.validate(wf)

    def test_picks_cheapest_qualifying_budget(self, wf, loose_deadline):
        plan = recommend(wf, PAPER_PLATFORM, loose_deadline,
                         confidence=0.9, n_samples=30, rng=1)
        # a loose deadline is typically met well below the high budget
        assert plan.budget < high_budget(wf, PAPER_PLATFORM)

    def test_impossible_deadline_reports_best_effort(self, wf):
        plan = recommend(wf, PAPER_PLATFORM, deadline=1.0,
                         confidence=0.9, n_samples=10, rng=2)
        assert not plan.feasible
        assert plan.risk.p_meets_objective == 0.0
        assert "MISSES" in plan.summary()

    def test_explicit_budget_list(self, wf, loose_deadline):
        b = minimal_budget(wf, PAPER_PLATFORM) * 3
        plan = recommend(wf, PAPER_PLATFORM, loose_deadline,
                         budgets=[b], confidence=0.5, n_samples=10, rng=3)
        assert plan.budget == b

    def test_bad_parameters(self, wf):
        with pytest.raises(SchedulingError):
            recommend(wf, PAPER_PLATFORM, deadline=0.0)
        with pytest.raises(SchedulingError):
            recommend(wf, PAPER_PLATFORM, deadline=10.0, confidence=0.0)

    def test_summary_mentions_target(self, wf, loose_deadline):
        plan = recommend(wf, PAPER_PLATFORM, loose_deadline,
                         confidence=0.9, n_samples=10, rng=4)
        assert "90%" in plan.summary()

    def test_deterministic(self, wf, loose_deadline):
        a = recommend(wf, PAPER_PLATFORM, loose_deadline,
                      confidence=0.9, n_samples=15, rng=5)
        b = recommend(wf, PAPER_PLATFORM, loose_deadline,
                      confidence=0.9, n_samples=15, rng=5)
        assert a.budget == b.budget
        assert a.risk.p_meets_objective == b.risk.p_meets_objective
