"""Deterministic, seedable fault plans for the discrete-event simulator.

A :class:`FaultPlan` is a *declarative* description of everything that goes
wrong during one execution: VM crashes at absolute instants, boot failures
(extra uncharged boot rounds — the cold-start variability of Sarkar et al.),
transient task failures (the attempt is re-run from scratch on the same VM,
wasting a fraction of the work), and stragglers (weight inflation, the
paper's "unlikely events" of §VI). Plans are plain data: they serialize to
JSON, compare by value, and — crucially — replay **deterministically**:
executing the same schedule under the same plan and weights twice yields
byte-identical traces. An empty plan is falsy and the executor treats it
exactly like no plan at all, so the zero-fault path is a strict no-op.

``retires`` is the recovery loop's billing bookkeeping: when a crash has
*fired* and the failed work was moved elsewhere, the crash entry is
rewritten into a retire entry so that replaying the recovered schedule
still bills the dead VM's rental window up to the crash instant (the
paper's cost model charges for started seconds whether or not the work
survived). A retire never kills tasks — it only floors ``end_at``.

:func:`FaultPlan.sample` draws a plan from failure *rates* (crash rate per
VM-hour, per-task transient/straggler probabilities) with a seeded
generator, which is what the resilience sweep uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..rng import RngLike, as_generator

__all__ = ["FaultEvent", "FaultPlan", "SpotPreemption"]


@dataclass(frozen=True)
class SpotPreemption:
    """One correlated spot-market revocation burst.

    At instant ``at`` the provider reclaims **every** provisioned spot VM
    (of category ``category`` when given, of all spot categories when
    ``None``) that still has unfinished work — the market-wide correlated
    failure on-demand crashes cannot model. ``warning_s`` is the revocation
    notice lead time: with checkpointing enabled, a warning of at least the
    checkpoint overhead lets each victim flush one final checkpoint before
    dying, so less work is lost.
    """

    at: float
    category: Optional[str] = None
    warning_s: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise SimulationError(
                f"preemption time must be >= 0, got {self.at}"
            )
        if self.warning_s < 0.0:
            raise SimulationError(
                f"preemption warning must be >= 0, got {self.warning_s}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "at": self.at,
            "category": self.category,
            "warning_s": self.warning_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpotPreemption":
        """Rebuild a burst from :meth:`to_dict` output."""
        known = {"at", "category", "warning_s"}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown preemption fields: {sorted(unknown)}"
            )
        return cls(
            at=float(data["at"]),
            category=data.get("category"),
            warning_s=float(data.get("warning_s", 0.0)),
        )


@dataclass
class FaultEvent:
    """One fault that actually fired during an execution.

    ``kind`` is one of ``vm.crash``, ``vm.boot_failure``, ``task.retry``,
    ``task.straggler``; ``info`` carries kind-specific detail (e.g. the
    tasks a crash killed, the wasted seconds of a transient retry).
    """

    ts: float
    kind: str
    vm_id: Optional[int] = None
    task: Optional[str] = None
    info: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (event-bus payloads, golden traces)."""
        return {
            "ts": self.ts,
            "kind": self.kind,
            "vm_id": self.vm_id,
            "task": self.task,
            "info": dict(self.info),
        }


def _as_int_keys(mapping: Mapping[Any, Any]) -> Dict[int, Any]:
    # JSON round-trips dict keys through strings; normalize back to int.
    return {int(k): v for k, v in mapping.items()}


class FaultPlan:
    """Value object holding every injected fault for one execution.

    Parameters
    ----------
    crashes:
        ``vm_id -> absolute crash time``. A crash kills the VM if it is
        provisioned and still has unfinished work at that instant: active
        downloads are aborted, in-flight computes are lost, queued tasks
        fail. Completed work (and uploads already streaming DC-side) is
        durable. The VM is billed from ready to the crash.
    retires:
        ``vm_id -> billing floor time``; extends the VM's billed window to
        at least that instant without killing anything (see module doc).
    boot_failures:
        ``vm_id -> n`` extra failed boot rounds; the VM becomes ready
        ``n × t_boot`` seconds late (boots are uncharged, so the fault
        costs time, not direct money).
    task_retries:
        ``tid -> (f1, f2, ...)`` transient failures: attempt *i* dies
        after fraction ``f_i`` of the work, then restarts; total compute
        time scales by ``1 + Σ f_i``.
    stragglers:
        ``tid -> factor >= 1`` weight inflation.
    preemptions:
        Correlated spot-market revocation bursts
        (:class:`SpotPreemption`), sorted by time. Each burst kills every
        live spot VM it covers; non-spot VMs never notice.
    checkpoints:
        ``tid -> instructions`` recovery bookkeeping (the spot analogue of
        ``retires``): work already made durable at the datacenter by a
        checkpoint before the task's VM died. Replays resume the task with
        that many instructions already done instead of re-executing from
        scratch.
    """

    __slots__ = ("crashes", "retires", "boot_failures", "task_retries",
                 "stragglers", "preemptions", "checkpoints")

    def __init__(
        self,
        *,
        crashes: Optional[Mapping[int, float]] = None,
        retires: Optional[Mapping[int, float]] = None,
        boot_failures: Optional[Mapping[int, int]] = None,
        task_retries: Optional[Mapping[str, Tuple[float, ...]]] = None,
        stragglers: Optional[Mapping[str, float]] = None,
        preemptions: Optional[Iterable[Any]] = None,
        checkpoints: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.crashes: Dict[int, float] = _as_int_keys(crashes or {})
        self.retires: Dict[int, float] = _as_int_keys(retires or {})
        self.boot_failures: Dict[int, int] = _as_int_keys(boot_failures or {})
        self.task_retries: Dict[str, Tuple[float, ...]] = {
            str(t): tuple(float(f) for f in fr)
            for t, fr in (task_retries or {}).items()
        }
        self.stragglers: Dict[str, float] = {
            str(t): float(f) for t, f in (stragglers or {}).items()
        }
        self.preemptions: Tuple[SpotPreemption, ...] = tuple(sorted(
            (p if isinstance(p, SpotPreemption)
             else SpotPreemption.from_dict(p)
             for p in (preemptions or ())),
            key=lambda p: (p.at, p.category or "", p.warning_s),
        ))
        self.checkpoints: Dict[str, float] = {
            str(t): float(w) for t, w in (checkpoints or {}).items()
        }
        for tid, w in self.checkpoints.items():
            if w <= 0.0:
                raise SimulationError(
                    f"checkpointed instructions for {tid!r} must be > 0, "
                    f"got {w}"
                )
        for vm_id, t in self.crashes.items():
            if t < 0.0:
                raise SimulationError(f"crash time for VM {vm_id} is negative: {t}")
        for vm_id, t in self.retires.items():
            if t < 0.0:
                raise SimulationError(f"retire time for VM {vm_id} is negative: {t}")
        for vm_id, n in self.boot_failures.items():
            if int(n) < 1:
                raise SimulationError(
                    f"boot failure count for VM {vm_id} must be >= 1, got {n}"
                )
            self.boot_failures[vm_id] = int(n)
        for tid, fractions in self.task_retries.items():
            if not fractions or any(f <= 0.0 for f in fractions):
                raise SimulationError(
                    f"retry fractions for {tid!r} must be positive, got {fractions}"
                )
        for tid, factor in self.stragglers.items():
            if factor < 1.0:
                raise SimulationError(
                    f"straggler factor for {tid!r} must be >= 1, got {factor}"
                )

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.crashes or self.retires or self.boot_failures
                    or self.task_retries or self.stragglers
                    or self.preemptions or self.checkpoints)

    def __bool__(self) -> bool:
        return not self.is_empty

    @property
    def size(self) -> int:
        """Number of individual fault entries (guard-limit sizing)."""
        return (len(self.crashes) + len(self.retires)
                + len(self.boot_failures) + len(self.task_retries)
                + len(self.stragglers) + len(self.preemptions)
                + len(self.checkpoints))

    # ------------------------------------------------------------------
    def weight_factor(self, tid: str) -> float:
        """Total compute-time inflation of a task (straggler × retries)."""
        factor = self.stragglers.get(tid, 1.0)
        fractions = self.task_retries.get(tid)
        if fractions:
            factor *= 1.0 + sum(fractions)
        return factor

    def remaining_weight(self, tid: str, inflated_weight: float) -> float:
        """Instructions still to execute after the banked checkpoint.

        ``inflated_weight`` is the task's actual weight *after*
        :meth:`weight_factor` inflation; checkpoints are banked in that
        same inflated space, so restarts resume exactly where the last
        durable checkpoint left off.
        """
        done = self.checkpoints.get(tid)
        if done is None:
            return inflated_weight
        return max(inflated_weight - done, 0.0)

    def extra_boots(self, vm_id: int) -> int:
        """Failed boot rounds before the VM comes up (0 = boots cleanly)."""
        return self.boot_failures.get(vm_id, 0)

    # ------------------------------------------------------------------
    def with_crashes_retired(
        self,
        fired: Mapping[int, float],
        *,
        drop: Tuple[int, ...] = (),
        fired_preemptions_until: Optional[float] = None,
        checkpoints: Optional[Mapping[str, float]] = None,
    ) -> "FaultPlan":
        """Rewrite fired crashes into billing retires (recovery bookkeeping).

        ``fired`` maps crashed VM ids to their crash instants; each leaves
        ``crashes`` and joins ``retires`` so replays bill the lost window.
        VMs in ``drop`` (emptied by recovery — they host no surviving task)
        are removed entirely; their cost is accounted by the recovery loop.

        ``fired_preemptions_until`` retires preemption bursts the same
        way: bursts at or before that instant have already fired (their
        victims are in ``fired``) and are dropped so replays do not fire
        them again. ``checkpoints`` merges newly banked durable progress
        (per tid, monotonically — the max of old and new survives).
        """
        crashes = {v: t for v, t in self.crashes.items() if v not in fired}
        retires = dict(self.retires)
        dropped = set(drop)
        for vm_id, at in fired.items():
            if vm_id not in dropped:
                retires[vm_id] = float(at)
        boot_failures = {
            v: n for v, n in self.boot_failures.items() if v not in dropped
        }
        preemptions = self.preemptions
        if fired_preemptions_until is not None:
            preemptions = tuple(
                p for p in preemptions if p.at > fired_preemptions_until
            )
        merged = dict(self.checkpoints)
        for tid, done in (checkpoints or {}).items():
            if done > merged.get(tid, 0.0):
                merged[str(tid)] = float(done)
        return FaultPlan(
            crashes={v: t for v, t in crashes.items() if v not in dropped},
            retires={v: t for v, t in retires.items() if v not in dropped},
            boot_failures=boot_failures,
            task_retries=self.task_retries,
            stragglers=self.stragglers,
            preemptions=preemptions,
            checkpoints=merged,
        )

    def billing_only(self) -> "FaultPlan":
        """The plan a budget monitor may assume: past losses, no future ones.

        Keeps the retires (already-paid windows), the per-task inflations
        of work already scheduled, and the banked checkpoints (durable
        progress the replay must credit), but strips the crashes and
        preemption bursts the monitor cannot foresee. Used for recovery
        cost projection.
        """
        return FaultPlan(
            retires=self.retires,
            boot_failures=self.boot_failures,
            task_retries=self.task_retries,
            stragglers=self.stragglers,
            checkpoints=self.checkpoints,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`.

        Spot fields are emitted only when present so pre-spot plans (and
        any fingerprints over them) encode exactly as before.
        """
        out = {
            "crashes": {str(k): v for k, v in sorted(self.crashes.items())},
            "retires": {str(k): v for k, v in sorted(self.retires.items())},
            "boot_failures": {
                str(k): v for k, v in sorted(self.boot_failures.items())
            },
            "task_retries": {
                k: list(v) for k, v in sorted(self.task_retries.items())
            },
            "stragglers": dict(sorted(self.stragglers.items())),
        }
        if self.preemptions:
            out["preemptions"] = [p.to_dict() for p in self.preemptions]
        if self.checkpoints:
            out["checkpoints"] = dict(sorted(self.checkpoints.items()))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        known = {"crashes", "retires", "boot_failures", "task_retries",
                 "stragglers", "preemptions", "checkpoints"}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(f"unknown fault plan fields: {sorted(unknown)}")
        return cls(
            crashes=data.get("crashes"),
            retires=data.get("retires"),
            boot_failures=data.get("boot_failures"),
            task_retries={
                t: tuple(fr) for t, fr in (data.get("task_retries") or {}).items()
            },
            stragglers=data.get("stragglers"),
            preemptions=data.get("preemptions"),
            checkpoints=data.get("checkpoints"),
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(crashes={len(self.crashes)}, retires={len(self.retires)}, "
            f"boot_failures={len(self.boot_failures)}, "
            f"task_retries={len(self.task_retries)}, "
            f"stragglers={len(self.stragglers)}, "
            f"preemptions={len(self.preemptions)}, "
            f"checkpoints={len(self.checkpoints)})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        schedule: Any,
        *,
        rng: RngLike = None,
        horizon: float,
        crash_rate_per_hour: float = 0.0,
        boot_failure_prob: float = 0.0,
        task_retry_prob: float = 0.0,
        retry_fraction: float = 0.5,
        straggler_prob: float = 0.0,
        straggler_factor: float = 2.0,
    ) -> "FaultPlan":
        """Draw a plan for ``schedule`` from failure rates (seeded).

        Per VM, the crash instant is exponential with rate
        ``crash_rate_per_hour`` (per VM-hour); crashes landing past
        ``horizon`` (typically a generous multiple of the planned
        makespan) are dropped — the VM outlives the run. Boot failures,
        transient retries, and stragglers are Bernoulli per VM / task.
        Iteration order is fixed (sorted VM ids, then dispatch order), so
        a given seed always yields the same plan.
        """
        if horizon <= 0.0:
            raise SimulationError(f"sample horizon must be > 0, got {horizon}")
        gen = as_generator(rng)
        crashes: Dict[int, float] = {}
        boot_failures: Dict[int, int] = {}
        for vm_id in sorted(schedule.categories):
            if crash_rate_per_hour > 0.0:
                at = float(gen.exponential(3600.0 / crash_rate_per_hour))
                if at < horizon:
                    crashes[vm_id] = at
            if boot_failure_prob > 0.0 and gen.random() < boot_failure_prob:
                boot_failures[vm_id] = 1
        task_retries: Dict[str, Tuple[float, ...]] = {}
        stragglers: Dict[str, float] = {}
        for tid in schedule.order:
            if task_retry_prob > 0.0 and gen.random() < task_retry_prob:
                task_retries[tid] = (retry_fraction,)
            if straggler_prob > 0.0 and gen.random() < straggler_prob:
                stragglers[tid] = straggler_factor
        return cls(
            crashes=crashes,
            boot_failures=boot_failures,
            task_retries=task_retries,
            stragglers=stragglers,
        )
