"""Spot-market failure scenarios: checkpoint policy + correlated bursts.

Spot (preemptible) VMs trade a price discount for the risk of *correlated*
revocation: when the market reclaims capacity it preempts every spot VM of
a category at once — the burst failure mode independent per-VM crash rates
cannot express (cf. the transient-unavailability model of arXiv
2504.21536). Two value objects capture the resilience knobs:

* :class:`CheckpointConfig` — the periodic checkpoint policy run on spot
  VMs. Every ``interval_s`` seconds of useful work the task spends
  ``overhead_s`` extra seconds making its progress durable at the
  datacenter; a preemption *warning* of at least ``overhead_s`` seconds
  additionally allows one emergency flush right before the VM dies. The
  overhead is billed to the plan (longer rental windows), which is why
  checkpointing is a trade and not a free lunch.
* :class:`SpotScenario` — bundles a :class:`~repro.platform.pricing.SpotMarket`
  with a burst arrival rate and checkpoint policy, derives the spot-enabled
  platform (:meth:`SpotScenario.platform_for`) and draws seeded
  :class:`~repro.faults.plan.FaultPlan`s of correlated preemption bursts
  (:meth:`SpotScenario.sample_plan`).

All sampling is seeded and iteration-order free, so a given seed always
yields the same plan — the same determinism discipline as
:meth:`repro.faults.plan.FaultPlan.sample`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..platform.cloud import CloudPlatform
from ..platform.pricing import SpotMarket, add_spot_categories
from ..rng import RngLike, as_generator
from .plan import FaultPlan, SpotPreemption

__all__ = ["CheckpointConfig", "SpotScenario"]

_HOUR = 3600.0


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic checkpointing on spot VMs (progress made durable at the DC).

    A checkpointed compute alternates ``interval_s`` seconds of useful work
    with ``overhead_s`` seconds of checkpoint I/O; the final partial chunk
    is never checkpointed (task completion makes outputs durable anyway).
    On a kill, the work covered by the last completed checkpoint survives
    and a restart resumes from there instead of from scratch.
    """

    interval_s: float = 900.0
    overhead_s: float = 30.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise SimulationError(
                f"checkpoint interval must be > 0, got {self.interval_s}"
            )
        if self.overhead_s < 0.0:
            raise SimulationError(
                f"checkpoint overhead must be >= 0, got {self.overhead_s}"
            )

    # ------------------------------------------------------------------
    @property
    def cycle_s(self) -> float:
        """One work-then-checkpoint cycle (wall seconds)."""
        return self.interval_s + self.overhead_s

    def n_checkpoints(self, work_s: float) -> int:
        """Checkpoints taken during ``work_s`` seconds of useful work.

        One per full interval, minus the final one (completion itself is
        durable): a 3.2-interval task checkpoints 3 times, a one-interval
        task not at all.
        """
        if work_s <= 0.0:
            return 0
        return max(math.ceil(work_s / self.interval_s) - 1, 0)

    def checkpointed_duration(self, work_s: float) -> float:
        """Wall-clock compute duration including checkpoint overheads."""
        return work_s + self.n_checkpoints(work_s) * self.overhead_s

    def durable_work_s(self, elapsed_s: float) -> float:
        """Useful work covered by the last *completed* periodic checkpoint
        after ``elapsed_s`` wall seconds of checkpointed execution."""
        if elapsed_s <= 0.0:
            return 0.0
        return math.floor(elapsed_s / self.cycle_s) * self.interval_s

    def flush_work_s(self, elapsed_s: float) -> float:
        """Useful work an emergency flush makes durable.

        The revocation warning arrives ``overhead_s`` before death is
        acceptable: the task stops computing at ``elapsed_s − overhead_s``
        and spends the remainder flushing its *current* state — including
        the partial progress of the in-flight interval, which a periodic
        checkpoint would have lost.
        """
        useful = elapsed_s - self.overhead_s
        if useful <= 0.0:
            return 0.0
        cycles = math.floor(useful / self.cycle_s)
        into_cycle = useful - cycles * self.cycle_s
        return cycles * self.interval_s + min(into_cycle, self.interval_s)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {"interval_s": self.interval_s, "overhead_s": self.overhead_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckpointConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {"interval_s", "overhead_s"}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown checkpoint fields: {sorted(unknown)}"
            )
        return cls(
            interval_s=float(data.get("interval_s", 900.0)),
            overhead_s=float(data.get("overhead_s", 30.0)),
        )


@dataclass(frozen=True)
class SpotScenario:
    """One spot-market configuration: pricing, burst process, checkpoints.

    ``preemption_rate_per_hour`` is the arrival rate of market-wide
    revocation bursts (exponential inter-arrival times); each burst
    preempts every live spot VM with ``warning_s`` seconds of notice.
    ``checkpoint`` is the policy spot VMs run (``None`` = no
    checkpointing: preempted work restarts from scratch).
    """

    market: SpotMarket = field(default_factory=SpotMarket)
    preemption_rate_per_hour: float = 0.0
    warning_s: float = 120.0
    checkpoint: Optional[CheckpointConfig] = None

    def __post_init__(self) -> None:
        if self.preemption_rate_per_hour < 0.0:
            raise SimulationError(
                f"preemption rate must be >= 0, "
                f"got {self.preemption_rate_per_hour}"
            )
        if self.warning_s < 0.0:
            raise SimulationError(
                f"preemption warning must be >= 0, got {self.warning_s}"
            )

    # ------------------------------------------------------------------
    def platform_for(
        self, platform: CloudPlatform, *, names: Optional[Tuple[str, ...]] = None
    ) -> CloudPlatform:
        """``platform`` extended with this market's spot twins."""
        return add_spot_categories(platform, self.market, names=names)

    def sample_plan(
        self, *, rng: RngLike = None, horizon: float
    ) -> FaultPlan:
        """Draw a seeded plan of correlated preemption bursts over
        ``[0, horizon)``.

        Bursts are market-wide (``category=None`` — every spot category is
        hit), arriving as a Poisson process with rate
        ``preemption_rate_per_hour``. A zero rate yields an *empty* plan,
        which the executor treats as no plan at all.
        """
        if horizon <= 0.0:
            raise SimulationError(f"sample horizon must be > 0, got {horizon}")
        if self.preemption_rate_per_hour <= 0.0:
            return FaultPlan()
        gen = as_generator(rng)
        bursts = []
        t = 0.0
        while True:
            t += float(gen.exponential(_HOUR / self.preemption_rate_per_hour))
            if t >= horizon:
                break
            bursts.append(SpotPreemption(at=t, warning_s=self.warning_s))
        return FaultPlan(preemptions=bursts)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {
            "market": self.market.to_dict(),
            "preemption_rate_per_hour": self.preemption_rate_per_hour,
            "warning_s": self.warning_s,
        }
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpotScenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        known = {"market", "preemption_rate_per_hour", "warning_s",
                 "checkpoint"}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown spot scenario fields: {sorted(unknown)}"
            )
        ckpt = data.get("checkpoint")
        return cls(
            market=SpotMarket.from_dict(data.get("market") or {}),
            preemption_rate_per_hour=float(
                data.get("preemption_rate_per_hour", 0.0)
            ),
            warning_s=float(data.get("warning_s", 120.0)),
            checkpoint=(
                CheckpointConfig.from_dict(ckpt) if ckpt is not None else None
            ),
        )
