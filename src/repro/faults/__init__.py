"""Fault injection and budget-aware recovery (ROADMAP robustness item).

Three pieces:

* :mod:`repro.faults.plan` — declarative, seedable :class:`FaultPlan`s the
  discrete-event executor consumes (VM crashes, boot failures, transient
  task failures, stragglers, correlated spot preemption bursts);
* :mod:`repro.faults.spot` — the spot-market failure model: periodic
  checkpoint policy (:class:`CheckpointConfig`) and seeded correlated
  revocation scenarios (:class:`SpotScenario`);
* :mod:`repro.faults.recovery` — policies that rewrite a crashed schedule
  into a recovered one while keeping the paper's non-preemptive ``ListT``
  invariant, re-billing lost VM windows, and resuming checkpointed spot
  work from its last durable checkpoint;
* :mod:`repro.faults.runner` — the execute → detect → recover loop with a
  budget projection that refuses unfundable recoveries
  (:class:`~repro.errors.BudgetExhaustedError`).

``recovery`` and ``runner`` import the scheduling layer, which itself pulls
in the simulator — and the simulator imports :mod:`repro.faults.plan`. To
keep that triangle acyclic, this package eagerly exposes only the plan
types; everything else is loaded lazily on first attribute access (PEP 562).
"""

from __future__ import annotations

from typing import Any

from .plan import FaultEvent, FaultPlan, SpotPreemption

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "SpotPreemption",
    "CheckpointConfig",
    "SpotScenario",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RetrySameCategory",
    "RemapRecovery",
    "RECOVERY_POLICIES",
    "make_policy",
    "crashed_vms",
    "FaultRunResult",
    "run_with_faults",
    "OUTCOME_SUCCESS",
    "OUTCOME_FAILED",
    "OUTCOME_BUDGET_EXHAUSTED",
]

_RECOVERY_NAMES = frozenset(
    {"RecoveryOutcome", "RecoveryPolicy", "RetrySameCategory", "RemapRecovery",
     "RECOVERY_POLICIES", "make_policy", "crashed_vms"}
)
_RUNNER_NAMES = frozenset(
    {"FaultRunResult", "run_with_faults", "OUTCOME_SUCCESS", "OUTCOME_FAILED",
     "OUTCOME_BUDGET_EXHAUSTED"}
)
_SPOT_NAMES = frozenset({"CheckpointConfig", "SpotScenario"})


def __getattr__(name: str) -> Any:
    if name in _RECOVERY_NAMES:
        from . import recovery

        return getattr(recovery, name)
    if name in _RUNNER_NAMES:
        from . import runner

        return getattr(runner, name)
    if name in _SPOT_NAMES:
        from . import spot

        return getattr(spot, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
