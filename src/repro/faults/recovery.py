"""Recovery policies: rewrite a crashed schedule into a recovered one.

Work lost to an on-demand VM crash is re-executed from scratch (§III-A
tasks are black boxes). On *spot* VMs running a
:class:`~repro.faults.spot.CheckpointConfig`, the executor banks each
victim's durable checkpoint progress, and the policies below merge it into
the rewritten plan so the replay resumes from the last checkpoint instead
— see :meth:`RecoveryPolicy._settle`. A policy receives the crashed
execution and returns a :class:`RecoveryOutcome` holding

* a new :class:`~repro.scheduling.schedule.Schedule` whose global dispatch
  order (``ListT``) is **unchanged** — only assignments move, exactly like
  the paper's Algorithm 5 refinements, so the result replays
  deterministically;
* a rewritten :class:`~repro.faults.plan.FaultPlan` where fired crashes
  became billing *retires* (the dead VM's rental window up to the crash is
  still paid for when the VM keeps surviving tasks) or were dropped with
  the window charged to ``lost_cost`` (when recovery emptied the VM);
* ``lost_cost``: dollars sunk into dropped VMs that no replay will re-bill.

Two policies are provided. :class:`RetrySameCategory` is the conservative
re-execution baseline — every failed task moves to one fresh VM of the same
category per crashed VM, preserving per-queue order. :class:`RemapRecovery`
is the budget-aware variant: it re-runs the paper's Algorithm 2
(``getBestHost``) over the failed tasks, seeded with the committed timeline
of the surviving VMs and allowances redistributed from the *unspent* budget
(mirroring :mod:`repro.scheduling.online`).

Recovered schedules keep the original VM ids for every surviving VM (fresh
VMs get ids above every existing one) so that plan entries keyed by VM id —
retires, boot failures — stay valid across replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..platform.cloud import CloudPlatform
from ..platform.pricing import on_demand_twin, spot_vm_cost, strip_spot, vm_cost
from ..scheduling.budget import divide_budget
from ..scheduling.list_base import get_best_host
from ..scheduling.planning import PlannedVM, PlanningState
from ..scheduling.schedule import Schedule
from ..simulation.trace import SimulationResult, VMRecord
from ..workflow.dag import Workflow
from .plan import FaultPlan

__all__ = [
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RetrySameCategory",
    "RemapRecovery",
    "RECOVERY_POLICIES",
    "make_policy",
    "crashed_vms",
]

#: Base of the sentinel planner ids used for tasks that completed on a VM
#: which later crashed: the VM is gone, so the planner must treat their
#: outputs as datacenter-resident, never as host-local.
_DEAD_VM_SENTINEL = -1000


def crashed_vms(result: SimulationResult) -> Dict[int, float]:
    """``vm_id -> crash instant`` for every VM that died during ``result``."""
    return {
        rec.vm_id: float(rec.crashed_at)
        for rec in result.vms
        if rec.crashed_at is not None
    }


@dataclass
class RecoveryOutcome:
    """What a policy proposes: new schedule, rewritten plan, sunk cost."""

    schedule: Schedule
    plan: FaultPlan
    lost_cost: float
    moved: List[str] = field(default_factory=list)
    info: Dict[str, Any] = field(default_factory=dict)


class RecoveryPolicy:
    """Interface of all recovery policies."""

    name = "abstract"

    def recover(
        self,
        wf: Workflow,
        platform: CloudPlatform,
        budget: float,
        schedule: Schedule,
        plan: FaultPlan,
        attempt: SimulationResult,
    ) -> RecoveryOutcome:
        """Propose a recovered schedule after ``attempt`` lost tasks.

        Raises :class:`~repro.errors.SchedulingError` when there is nothing
        to recover (no crash fired or no task failed).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _settle(
        self,
        assignment: Dict[str, int],
        plan: FaultPlan,
        fired: Dict[int, float],
        vm_records: Dict[int, VMRecord],
        attempt: SimulationResult,
        platform: CloudPlatform,
    ) -> Tuple[Tuple[int, ...], float, FaultPlan]:
        """Shared bookkeeping once the new assignment is fixed.

        Fired crashes become retires; crashed VMs hosting no surviving task
        are dropped from the plan and their billed window (ready → crash,
        plus the init fee) becomes ``lost_cost`` — money spent that no
        replay of the recovered schedule will bill again. Spot VMs bill
        their window along the market trajectory, exactly as the executor
        did.

        Spot bookkeeping rides along: preemption bursts that fired during
        the attempt are retired from the plan (their victims are in
        ``fired``; replays must not fire them again), and checkpoint
        progress the dying VMs banked is merged into the plan so the
        replay resumes each restarted task from its last checkpoint.
        """
        used = set(assignment.values())
        drop = tuple(sorted(v for v in fired if v not in used))
        lost = 0.0
        for vm_id in drop:
            rec = vm_records[vm_id]
            lost += spot_vm_cost(
                rec.category, platform.spot_market, rec.ready_at, rec.end_at
            )
        banked = {
            tid: rec.checkpoint_weight
            for tid, rec in attempt.tasks.items()
            if rec.failed and rec.checkpoint_weight > 0.0
        }
        return drop, lost, plan.with_crashes_retired(
            fired, drop=drop,
            fired_preemptions_until=attempt.end,
            checkpoints=banked or None,
        )

    @staticmethod
    def _check_recoverable(
        fired: Dict[int, float], attempt: SimulationResult
    ) -> None:
        if not fired:
            raise SchedulingError("no VM crash fired; nothing to recover")
        if not attempt.failed_tasks:
            raise SchedulingError("no task failed; nothing to recover")


class RetrySameCategory(RecoveryPolicy):
    """Re-execute each crashed VM's lost tasks on a fresh same-category VM.

    The paper's cost model re-bills the replacement in full (``c_ini,k``
    plus a new rental window, booted from scratch) — there is no warm
    standby. Per crashed VM, all its failed tasks move together to one
    replacement, so the per-queue execution order is preserved verbatim.

    Spot-market exception: a *preempted* VM's replacement is the on-demand
    twin of its category, not the same spot category — the market just
    revoked that capacity, so retrying on it would walk straight into the
    next burst. The twin costs more per hour but cannot be preempted.
    """

    name = "retry"

    def recover(self, wf, platform, budget, schedule, plan, attempt):
        """Move each crashed VM's failed tasks to one fresh same-category VM."""
        fired = crashed_vms(attempt)
        self._check_recoverable(fired, attempt)
        vm_records = {rec.vm_id: rec for rec in attempt.vms}
        assignment = dict(schedule.assignment)
        categories = dict(schedule.categories)
        next_id = max(categories, default=-1) + 1
        replacement: Dict[int, int] = {}
        for tid in attempt.failed_tasks:
            old = assignment[tid]
            if old not in replacement:
                replacement[old] = next_id
                category = schedule.categories[old]
                rec = vm_records.get(old)
                if rec is not None and rec.preempted:
                    category = on_demand_twin(platform, category)
                categories[next_id] = category
                next_id += 1
            assignment[tid] = replacement[old]
        live = set(assignment.values())
        categories = {v: c for v, c in categories.items() if v in live}
        new_schedule = Schedule(
            order=list(schedule.order),
            assignment=assignment,
            categories=categories,
        )
        drop, lost, new_plan = self._settle(
            assignment, plan, fired, vm_records, attempt, platform
        )
        return RecoveryOutcome(
            schedule=new_schedule,
            plan=new_plan,
            lost_cost=lost,
            moved=list(attempt.failed_tasks),
            info={
                "policy": self.name,
                "replacements": dict(replacement),
                "dropped_vms": list(drop),
            },
        )


class RemapRecovery(RecoveryPolicy):
    """Budget-constrained EFT re-mapping of the lost work (Algorithm 2).

    Seeds a :class:`~repro.scheduling.planning.PlanningState` with the
    committed truth — surviving VMs at their observed ready times, finished
    tasks at their observed completion — then walks the failed and blocked
    tasks in dispatch order. Blocked tasks (they never started; their VM is
    fine) stay on their VM; failed tasks are re-placed by ``getBestHost``
    with allowances carved from the unspent budget, exactly the division +
    leftover-pot discipline of :class:`~repro.scheduling.online.OnlineHeftBudg`.
    """

    name = "remap"

    def recover(self, wf, platform, budget, schedule, plan, attempt):
        """Re-place failed tasks via getBestHost under the unspent budget."""
        fired = crashed_vms(attempt)
        self._check_recoverable(fired, attempt)
        failed = set(attempt.failed_tasks)
        blocked = set(attempt.blocked_tasks)
        vm_records = {rec.vm_id: rec for rec in attempt.vms}

        # After a market revocation, fresh spot enrollment is off the
        # table: the planner sees only on-demand categories (surviving
        # spot VMs stay valid hosts — they are seeded below regardless).
        planning_platform = platform
        if any(vm_records[v].preempted for v in fired):
            planning_platform = strip_spot(platform)

        # --- seed the planner with the committed (observed) timeline -----
        state = PlanningState(wf, planning_platform)
        real_of: Dict[int, int] = {}     # planner vm id -> schedule vm id
        planner_of: Dict[int, int] = {}  # schedule vm id -> planner vm id
        for old_id in sorted(vm_records):
            rec = vm_records[old_id]
            if rec.crashed_at is not None:
                continue  # dead VMs are not candidate hosts
            category = schedule.categories[old_id]
            pid = len(state.vms)
            state.vms.append(
                PlannedVM(
                    vm_id=pid,
                    category=category,
                    booked_at=rec.booked_at,
                    ready_time=rec.ready_at,
                    core_free=[rec.ready_at] * category.cores,
                    window_end=rec.ready_at,
                    last_dispatch=rec.ready_at,
                )
            )
            planner_of[old_id] = pid
            real_of[pid] = old_id

        for tid in schedule.order:
            if tid in failed or tid in blocked:
                continue
            rec = attempt.tasks[tid]
            finish = rec.compute_end
            old_vm = schedule.assignment[tid]
            pid = planner_of.get(old_vm)
            if pid is not None:
                vm = state.vms[pid]
                state.assignment[tid] = pid
                vm.tasks.append(tid)
                vm.compute_free = max(vm.compute_free, finish)
                vm.window_end = max(vm.window_end, rec.outputs_at_dc, finish)
            else:
                # Completed on a VM that later crashed: the work is durable
                # (outputs reached the datacenter) but the host is gone. A
                # unique negative sentinel keeps the planner from treating
                # its data as local to any live host.
                state.assignment[tid] = _DEAD_VM_SENTINEL - old_vm
            state.order.append(tid)
            state.finish[tid] = finish

        # Money already sunk: live VMs' committed windows plus every crashed
        # VM's billed window (paid whether or not its tasks survived).
        committed = sum(
            (vm.window_end - vm.ready_time) * vm.category.cost_rate
            + vm.category.initial_cost
            for vm in state.vms
        )
        committed += sum(
            spot_vm_cost(vm_records[v].category, platform.spot_market,
                         vm_records[v].ready_at, vm_records[v].end_at)
            for v in fired
        )

        # --- redistribute the unspent budget over the lost work ----------
        leftover = max(budget - committed, 0.0)
        bplan = divide_budget(wf, planning_platform, leftover)
        pending = [t for t in schedule.order if t in failed or t in blocked]
        failed_total = sum(bplan.share(t) for t in pending if t in failed)
        scale = bplan.b_calc / failed_total if failed_total > 0.0 else 0.0

        next_real = max(
            schedule.fresh_vm_id(),
            max(vm_records, default=-1) + 1,
        )
        pot = 0.0
        for tid in pending:
            if tid in blocked:
                # Containment: the task's own VM is fine — keep it there.
                old_vm = schedule.assignment[tid]
                pid = planner_of.get(old_vm)
                if pid is not None:
                    vm_obj = state.vms[pid]
                    ev = state.evaluate(tid, vm_obj, vm_obj.category)
                else:
                    # The VM was never provisioned (its whole queue was
                    # gated behind the crash); enroll it afresh.
                    ev = state.evaluate(tid, None, schedule.categories[old_vm])
                committed_vm = state.commit(ev)
                if committed_vm.vm_id not in real_of:
                    planner_of[old_vm] = committed_vm.vm_id
                    real_of[committed_vm.vm_id] = old_vm
            else:
                allowance = bplan.share(tid) * scale + pot
                ev, _ = get_best_host(state, tid, allowance)
                committed_vm = state.commit(ev)
                pot = allowance - ev.cost
                if committed_vm.vm_id not in real_of:
                    real_of[committed_vm.vm_id] = next_real
                    next_real += 1

        # --- freeze, translating planner ids back to schedule ids --------
        assignment: Dict[str, int] = {}
        for tid in schedule.order:
            pid = state.assignment[tid]
            if pid >= 0:
                assignment[tid] = real_of[pid]
            else:
                # Done on a crashed VM: keep the historical assignment.
                assignment[tid] = schedule.assignment[tid]
        used = set(assignment.values())
        categories = {real_of[vm.vm_id]: vm.category for vm in state.vms}
        for vm_id in used - set(categories):
            categories[vm_id] = schedule.categories[vm_id]
        categories = {v: c for v, c in categories.items() if v in used}
        new_schedule = Schedule(
            order=list(schedule.order),
            assignment=assignment,
            categories=categories,
        )
        drop, lost, new_plan = self._settle(
            assignment, plan, fired, vm_records, attempt, platform
        )
        moved = [t for t in pending if t in failed]
        return RecoveryOutcome(
            schedule=new_schedule,
            plan=new_plan,
            lost_cost=lost,
            moved=moved,
            info={
                "policy": self.name,
                "leftover_budget": leftover,
                "committed_cost": committed,
                "dropped_vms": list(drop),
            },
        )


RECOVERY_POLICIES: Dict[str, Any] = {
    "retry": RetrySameCategory,
    "remap": RemapRecovery,
}


def make_policy(name: Optional[str]) -> Optional[RecoveryPolicy]:
    """Policy instance by name; ``None``/``"none"`` means no recovery."""
    if name is None or name == "none":
        return None
    try:
        return RECOVERY_POLICIES[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown recovery policy {name!r}; "
            f"known: none, {', '.join(sorted(RECOVERY_POLICIES))}"
        ) from None
