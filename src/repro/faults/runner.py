"""The execute → detect → recover loop with a hard budget gate.

:func:`run_with_faults` executes a schedule under a :class:`FaultPlan`,
and — when a VM crash loses work and a recovery policy is active — asks the
policy for a recovered schedule, *projects* its total cost, and only
accepts it when the reserved budget can fund it. The projection uses the
monitor's honest knowledge at recovery time:

* observed (actual) weights for tasks that already completed,
* conservative ``w̄ + σ`` weights for everything that must still run,
* the plan's :meth:`~repro.faults.plan.FaultPlan.billing_only` view —
  already-paid retires and known inflations, but no future crashes the
  monitor cannot foresee,
* plus every dollar already sunk into dropped VMs (``lost_cost``).

An unfundable recovery ends the run with the explicit
``budget_exhausted`` outcome (carrying a
:class:`~repro.errors.BudgetExhaustedError` message) instead of silently
overrunning — the fault-tolerant analogue of the paper's validity metric.

Every step is observable: fault events and recovery decisions go to the
event bus (``fault.injected``, ``fault.preempted``, ``recovery.applied``,
``recovery.rejected``, ``recovery.checkpoint_restart``), counters to the
metrics registry (``repro_faults_injected_total``,
``repro_recovery_*_total``), and a ``kind="recovery"`` decision record to
the active tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..service.metrics import MetricsRegistry
    from .spot import CheckpointConfig

from ..errors import BudgetExhaustedError, SchedulingError
from ..obs.events import (
    EventBus,
    FAULT_INJECTED,
    FAULT_PREEMPTED,
    RECOVERY_APPLIED,
    RECOVERY_CHECKPOINT_RESTART,
    RECOVERY_REJECTED,
)
from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..rng import RngLike
from ..scheduling.registry import make_scheduler
from ..scheduling.schedule import Schedule
from ..simulation.executor import execute_schedule, sample_weights
from ..simulation.trace import SimulationResult
from ..workflow.dag import Workflow
from .plan import FaultEvent, FaultPlan
from .recovery import RecoveryPolicy, make_policy

__all__ = [
    "FaultRunResult",
    "run_with_faults",
    "OUTCOME_SUCCESS",
    "OUTCOME_FAILED",
    "OUTCOME_BUDGET_EXHAUSTED",
]

OUTCOME_SUCCESS = "success"
OUTCOME_FAILED = "failed"
OUTCOME_BUDGET_EXHAUSTED = "budget_exhausted"

_TOL = 1e-9


@dataclass
class FaultRunResult:
    """Outcome of one fault-injected (possibly recovered) execution.

    ``result`` is the *final* attempt's trace; ``total_cost`` adds the
    rentals sunk into VMs that recovery dropped (``lost_cost``) on top of
    it, so the number is comparable with the reserved budget.
    ``fault_events`` aggregates what fired across all attempts.
    """

    schedule: Schedule
    result: SimulationResult
    plan: FaultPlan
    budget: float
    outcome: str
    n_attempts: int = 1
    n_recoveries: int = 0
    lost_cost: float = 0.0
    recovered_tasks: List[str] = field(default_factory=list)
    fault_events: List[FaultEvent] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def success(self) -> bool:
        """True when every task eventually executed."""
        return self.outcome == OUTCOME_SUCCESS

    @property
    def makespan(self) -> float:
        """Makespan of the final attempt."""
        return self.result.makespan

    @property
    def total_cost(self) -> float:
        """Final attempt's bill plus the dropped VMs' sunk rentals."""
        return self.result.total_cost + self.lost_cost

    @property
    def n_faults(self) -> int:
        """Distinct injected faults that fired across all attempts."""
        return len(self.fault_events)

    def within_budget(self, tol: float = _TOL) -> bool:
        """Whether the full spend (including losses) respects the budget."""
        return self.total_cost <= self.budget * (1.0 + tol) + tol


def _knowledge_weights(
    wf: Workflow, attempt: SimulationResult, actual: Mapping[str, float]
) -> Dict[str, float]:
    """What the monitor knows at recovery time: observed past, cautious rest."""
    out: Dict[str, float] = {}
    for tid in wf.tasks:
        rec = attempt.tasks.get(tid)
        if rec is not None and not rec.failed:
            out[tid] = actual[tid]
        else:
            out[tid] = wf.task(tid).conservative_weight
    return out


def run_with_faults(
    wf: Workflow,
    platform: CloudPlatform,
    budget: float,
    plan: FaultPlan,
    *,
    schedule: Optional[Schedule] = None,
    algorithm: str = "heft_budg",
    policy: Union[None, str, RecoveryPolicy] = None,
    weights: Optional[Mapping[str, float]] = None,
    rng: RngLike = None,
    max_attempts: int = 5,
    max_replans: Optional[int] = None,
    checkpoint: Optional["CheckpointConfig"] = None,
    budget_tol: float = _TOL,
    metrics: Optional["MetricsRegistry"] = None,
    bus: Optional[EventBus] = None,
) -> FaultRunResult:
    """Execute ``wf`` under ``plan``; recover crashes while budget allows.

    ``schedule`` fixes the initial mapping (otherwise ``algorithm`` plans
    one under ``budget``); ``weights`` fixes the actual realization
    (otherwise one is sampled from ``rng``). ``policy`` is ``None``/"none"
    (measure the damage, recover nothing), a policy name from
    :data:`~repro.faults.recovery.RECOVERY_POLICIES`, or an instance.

    ``checkpoint`` enables periodic checkpointing on spot VMs — both in
    the real executions *and* in the budget projection, so the gate prices
    the checkpoint overhead it will actually pay. ``max_replans`` caps
    accepted recoveries (``None`` = unlimited up to ``max_attempts``): one
    more needed replan past the cap ends the run as ``failed`` with a
    ``recovery.rejected reason="replan_limit"`` event instead of asking
    the policy — the guard against a churning spot market eating the whole
    budget in replanning rounds.

    Never raises on fault outcomes — inspect ``outcome`` / ``error`` on the
    returned :class:`FaultRunResult`. ``max_attempts`` bounds the number of
    executions (so at most ``max_attempts - 1`` recoveries).
    """
    wf.freeze()
    actual = dict(weights) if weights is not None else sample_weights(wf, rng)
    if schedule is None:
        schedule = make_scheduler(algorithm).schedule(wf, platform, budget).schedule
    pol = make_policy(policy) if (policy is None or isinstance(policy, str)) \
        else policy
    tracer = get_tracer()

    cur_plan = plan
    lost = 0.0
    recovered: List[str] = []
    events: List[FaultEvent] = []
    attempts = 0
    recoveries = 0
    while True:
        attempts += 1
        run = execute_schedule(
            wf, platform, schedule, actual, validate=False,
            fault_plan=cur_plan, checkpoint=checkpoint,
        )
        # First attempt logs everything; replays only log *new* kills
        # (fired crashes/preemptions were retired from the plan, boot
        # failures and task inflations re-fire identically and are
        # already on record).
        if attempts == 1:
            new_events = list(run.fault_events)
        else:
            new_events = [
                e for e in run.fault_events
                if e.kind in ("vm.crash", "vm.preempted")
            ]
        events.extend(new_events)
        if new_events:
            n_preempted = sum(
                1 for e in new_events if e.kind == "vm.preempted"
            )
            if metrics is not None:
                metrics.incr("faults_injected", len(new_events))
                if n_preempted:
                    metrics.incr("faults_preempted", n_preempted)
            if bus is not None:
                for ev in new_events:
                    bus.publish(
                        FAULT_PREEMPTED if ev.kind == "vm.preempted"
                        else FAULT_INJECTED,
                        attempt=attempts, **ev.to_dict(),
                    )

        def done(outcome: str, error: Optional[str] = None) -> FaultRunResult:
            return FaultRunResult(
                schedule=schedule,
                result=run,
                plan=cur_plan,
                budget=budget,
                outcome=outcome,
                n_attempts=attempts,
                n_recoveries=recoveries,
                lost_cost=lost,
                recovered_tasks=recovered,
                fault_events=events,
                error=error,
            )

        if run.completed:
            return done(OUTCOME_SUCCESS)
        if pol is None:
            return done(
                OUTCOME_FAILED,
                f"{len(run.failed_tasks)} task(s) lost to VM crashes and "
                f"no recovery policy is active",
            )
        if attempts >= max_attempts:
            return done(
                OUTCOME_FAILED,
                f"still incomplete after {attempts} attempts "
                f"({len(run.failed_tasks)} failed task(s))",
            )
        if max_replans is not None and recoveries >= max_replans:
            if metrics is not None:
                metrics.incr("recovery_replan_limit")
            if bus is not None:
                bus.publish(
                    RECOVERY_REJECTED,
                    attempt=attempts,
                    reason="replan_limit",
                    max_replans=max_replans,
                    n_failed=len(run.failed_tasks),
                )
            return done(
                OUTCOME_FAILED,
                f"replan limit reached: {recoveries} recoveries already "
                f"applied (max_replans={max_replans}) and "
                f"{len(run.failed_tasks)} task(s) still lost",
            )

        if metrics is not None:
            metrics.incr("recovery_attempts")
        try:
            out = pol.recover(wf, platform, budget, schedule, cur_plan, run)
        except SchedulingError as exc:
            return done(OUTCOME_FAILED, f"recovery impossible: {exc}")

        # --- budget gate: can the remaining budget fund this recovery? ---
        lost_next = lost + out.lost_cost
        knowledge = _knowledge_weights(wf, run, actual)
        est = execute_schedule(
            wf, platform, out.schedule, knowledge,
            validate=False, fault_plan=out.plan.billing_only(),
            checkpoint=checkpoint,
        )
        projected = est.total_cost + lost_next
        funded = projected <= budget * (1.0 + budget_tol) + budget_tol
        if tracer.enabled:
            tracer.decide(
                DecisionRecord(
                    kind="recovery",
                    task=run.failed_tasks[0] if run.failed_tasks else "",
                    round=recoveries + 1,
                    cost=out.lost_cost,
                    allowance=budget,
                    remaining=budget - projected,
                    within_budget=funded,
                    extra={
                        "policy": pol.name,
                        "attempt": attempts,
                        "n_failed": len(run.failed_tasks),
                        "n_blocked": len(run.blocked_tasks),
                        "projected_cost": projected,
                        "lost_cost": lost_next,
                        "moved": list(out.moved)[:16],
                    },
                )
            )
        if not funded:
            if metrics is not None:
                metrics.incr("recovery_budget_exhausted")
            exc = BudgetExhaustedError(
                f"recovering {len(run.failed_tasks)} task(s) with policy "
                f"{pol.name!r} projects ${projected:.4f} against a budget "
                f"of ${budget:.4f}",
                budget=budget,
                projected_cost=projected,
            )
            if bus is not None:
                bus.publish(
                    RECOVERY_REJECTED,
                    policy=pol.name,
                    attempt=attempts,
                    projected_cost=projected,
                    budget=budget,
                    reason=str(exc),
                )
            return done(OUTCOME_BUDGET_EXHAUSTED, str(exc))

        # --- accept --------------------------------------------------------
        out.schedule.validate(wf)
        # Tasks whose restart resumes from newly banked spot checkpoints
        # (vs. re-executing from scratch) are worth surfacing: they are
        # the whole point of paying the checkpoint overhead.
        restarted = {
            tid: done_w for tid, done_w in out.plan.checkpoints.items()
            if done_w > cur_plan.checkpoints.get(tid, 0.0)
        }
        schedule = out.schedule
        cur_plan = out.plan
        lost = lost_next
        seen = set(recovered)
        recovered.extend(t for t in out.moved if t not in seen)
        recoveries += 1
        if metrics is not None:
            metrics.incr("recovery_applied")
            if restarted:
                metrics.incr("recovery_checkpoint_restarts", len(restarted))
        if bus is not None:
            bus.publish(
                RECOVERY_APPLIED,
                policy=pol.name,
                attempt=attempts,
                n_moved=len(out.moved),
                lost_cost=out.lost_cost,
                projected_cost=projected,
            )
            if restarted:
                bus.publish(
                    RECOVERY_CHECKPOINT_RESTART,
                    policy=pol.name,
                    attempt=attempts,
                    n_tasks=len(restarted),
                    tasks=sorted(restarted)[:16],
                    banked_weight=sum(restarted.values()),
                )
