"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish model errors (bad workflow / platform
specifications) from runtime failures (infeasible schedules, simulator
violations).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkflowError",
    "CycleError",
    "DanglingEdgeError",
    "PlatformError",
    "SchedulingError",
    "InfeasibleBudgetError",
    "ScheduleValidationError",
    "SimulationError",
    "DaxParseError",
    "ServiceError",
    "JobNotFoundError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class WorkflowError(ReproError):
    """Invalid workflow specification (bad task, weight, or data size)."""


class CycleError(WorkflowError):
    """The task graph contains a cycle and therefore is not a DAG."""


class DanglingEdgeError(WorkflowError):
    """An edge references a task id that does not exist in the workflow."""


class PlatformError(ReproError):
    """Invalid platform specification (bad VM category or datacenter)."""


class SchedulingError(ReproError):
    """A scheduling algorithm could not produce a schedule."""


class InfeasibleBudgetError(SchedulingError):
    """The budget is too small to execute the workflow at all.

    Raised only when even the cheapest possible allocation (every task on a
    single VM of the cheapest category) exceeds the budget *and* the caller
    asked for strict behaviour; by default the paper's algorithms return the
    cheapest schedule and report the overrun through the validity metric.
    """


class ScheduleValidationError(ReproError):
    """A schedule violates a structural invariant (missing task, bad VM...)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DaxParseError(WorkflowError):
    """A Pegasus DAX document could not be parsed."""


class ServiceError(ReproError):
    """Invalid service request or a service-level runtime failure."""


class JobNotFoundError(ServiceError):
    """A job id does not exist in the service's job store."""
