"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish model errors (bad workflow / platform
specifications) from runtime failures (infeasible schedules, simulator
violations).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkflowError",
    "CycleError",
    "DanglingEdgeError",
    "PlatformError",
    "SchedulingError",
    "InfeasibleBudgetError",
    "BudgetExhaustedError",
    "ScheduleValidationError",
    "SimulationError",
    "DaxParseError",
    "ServiceError",
    "JobNotFoundError",
    "JobTimeoutError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "AdmissionRejected",
    "WorkerCrashError",
    "WorkerConfigError",
    "ClusterError",
    "ClusterProtocolError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class WorkflowError(ReproError):
    """Invalid workflow specification (bad task, weight, or data size)."""


class CycleError(WorkflowError):
    """The task graph contains a cycle and therefore is not a DAG."""


class DanglingEdgeError(WorkflowError):
    """An edge references a task id that does not exist in the workflow."""


class PlatformError(ReproError):
    """Invalid platform specification (bad VM category or datacenter)."""


class SchedulingError(ReproError):
    """A scheduling algorithm could not produce a schedule."""


class InfeasibleBudgetError(SchedulingError):
    """The budget is too small to execute the workflow at all.

    Raised only when even the cheapest possible allocation (every task on a
    single VM of the cheapest category) exceeds the budget *and* the caller
    asked for strict behaviour; by default the paper's algorithms return the
    cheapest schedule and report the overrun through the validity metric.
    """


class BudgetExhaustedError(SchedulingError):
    """A recovery cannot be funded from the remaining budget.

    Raised by the fault-recovery loop when re-executing the failed tasks —
    even on the cheapest feasible hosts — would push the projected total
    spend (committed rentals + lost VM-hours + the recovery itself) past
    the reserved budget. The run then ends with an explicit
    ``budget_exhausted`` outcome instead of silently overrunning.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: float = 0.0,
        projected_cost: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.projected_cost = projected_cost


class ScheduleValidationError(ReproError):
    """A schedule violates a structural invariant (missing task, bad VM...)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DaxParseError(WorkflowError):
    """A Pegasus DAX document could not be parsed."""


class ServiceError(ReproError):
    """Invalid service request or a service-level runtime failure."""


class JobNotFoundError(ServiceError):
    """A job id does not exist in the service's job store."""


class JobTimeoutError(ServiceError):
    """An async job exceeded the service's per-job timeout."""


class ServiceClosedError(ServiceError):
    """The service is draining/closed and no longer accepts work (HTTP 503)."""

    def __init__(self, message: str, *, retry_after_s: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class WorkerCrashError(RuntimeError):
    """A worker process died and the shard exhausted its retries.

    Deliberately *not* a :class:`ReproError`: a crash says nothing about
    the model — it is a transient infrastructure failure, so layers with
    their own retry policy (the service job loop) are allowed to retry it,
    while deterministic model errors are not.
    """

    def __init__(self, message: str, *, shard_indices: tuple = ()) -> None:
        super().__init__(message)
        self.shard_indices = tuple(shard_indices)


class WorkerConfigError(ReproError):
    """An invalid worker/backend configuration (flag, spec, or env).

    Raised by :func:`repro.parallel.resolve_workers` when the
    ``REPRO_WORKERS`` environment override is non-numeric or
    non-positive, and by :func:`repro.cluster.parse_workers` when a
    cluster node list is malformed. Deterministic — a config error is
    never retried.
    """


class ClusterError(ReproError):
    """A cluster-fabric failure that is not a lost worker node.

    Lost nodes surface as :class:`WorkerCrashError` (retryable
    infrastructure), exactly like a crashed local worker process;
    ``ClusterError`` covers the deterministic rest — refused
    connections at pool construction, protocol violations.
    """


class ClusterProtocolError(ClusterError):
    """A malformed, oversized, or version-mismatched protocol frame."""


class ServiceOverloadedError(ServiceError):
    """The async job queue is full — back off and retry (HTTP 429).

    ``retry_after_s`` is the service's backpressure hint, surfaced as the
    ``Retry-After`` response header by the HTTP gateway. ``reason`` is a
    machine-readable refusal category (one of :data:`ADMISSION_REASONS`)
    and ``queue_depth`` the admission backlog at refusal time, so 429
    bodies carry more than a bare message.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_s: float = 1.0,
        reason: str = "queue_full",
        queue_depth: int = 0,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason
        self.queue_depth = queue_depth


#: The typed refusal categories of the admission layer (``repro.admission``).
ADMISSION_REASONS = ("rate_limited", "budget_exhausted", "queue_full")


class AdmissionRejected(ServiceOverloadedError):
    """The admission controller refused a request (typed; HTTP 429/402).

    ``reason`` is one of :data:`ADMISSION_REASONS`:

    * ``rate_limited`` — the tenant's token bucket is empty (429);
    * ``budget_exhausted`` — the request's estimated cost does not fit the
      tenant's remaining cost budget for this window (402);
    * ``queue_full`` — the admission queue is at capacity (429).

    ``tenant`` names the refused tenant; ``estimated_cost`` carries the
    pre-admission price that drove a budget refusal.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue_full",
        tenant: str = "default",
        retry_after_s: float = 1.0,
        queue_depth: int = 0,
        estimated_cost: float = 0.0,
    ) -> None:
        if reason not in ADMISSION_REASONS:
            raise ValueError(
                f"unknown admission reason {reason!r}; "
                f"one of {ADMISSION_REASONS}"
            )
        super().__init__(
            message, retry_after_s=retry_after_s, reason=reason,
            queue_depth=queue_depth,
        )
        self.tenant = tenant
        self.estimated_cost = estimated_cost
