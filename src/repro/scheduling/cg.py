"""CG and CG+ — Critical Greedy (§V-D2, extended from [25]).

**CG** first computes a global interpolation coefficient::

    gb = (B − c_min) / (c_max − c_min)

where ``c_min`` (``c_max``) is the cost of running the whole workflow on a
single VM of the cheapest (most expensive) category — both evaluated with
our full cost model, since [25] ignores communications and the paper
extended it "to include all transfer times and costs". Then, visiting tasks
in HEFT order (the ordering is unspecified in [25]; the paper used HEFT),
each task ``t`` is given the target spend ``c_t,min + (c_t,max − c_t,min)·gb``
and mapped to the VM *category* whose cost for ``t`` is closest in absolute
value to that target; within the category the smallest-EFT instance (an
already used VM or a fresh one) is selected.

**CG+** refines the CG schedule by spending leftover budget on the critical
path: among all (critical task, alternative VM) pairs it repeatedly applies
the one maximizing ``ΔT/Δc`` (makespan decrease per extra dollar), while the
new cost stays within budget. Pairs with ``Δc ≤ 0`` are *not* considered —
the paper points out this flaw explicitly (a re-assignment that removes a
data transfer, lowering both time and cost, is rejected), and keeping it is
required to reproduce CG+'s persistently high makespans in Figure 4.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..platform.vm import VMCategory
from ..simulation.executor import evaluate_schedule
from ..simulation.trace import SimulationResult
from ..workflow.analysis import heft_order
from ..workflow.dag import Workflow
from .list_base import Scheduler, SchedulerResult
from .planning import PlanningState
from .schedule import Schedule

__all__ = ["CgScheduler", "CgPlusScheduler", "critical_tasks_of"]

_EPS = 1e-12


def _single_vm_cost(wf: Workflow, platform: CloudPlatform, category: VMCategory) -> float:
    """Total cost of the whole workflow run sequentially on one ``category`` VM."""
    schedule = Schedule(
        order=wf.topological_order,
        assignment={tid: 0 for tid in wf.tasks},
        categories={0: category},
    )
    return evaluate_schedule(wf, platform, schedule).total_cost


def _task_cost_on(wf: Workflow, platform: CloudPlatform, tid: str,
                  category: VMCategory) -> float:
    """Stand-alone cost of one task on a ``category`` VM (compute+transfers)."""
    task = wf.task(tid)
    in_bytes = wf.input_data_of(tid) + task.external_input
    out_bytes = wf.output_data_of(tid) + task.external_output
    duration = (
        task.conservative_weight / category.speed
        + (in_bytes + out_bytes) / platform.bandwidth
    )
    return duration * category.cost_rate


class CgScheduler(Scheduler):
    """Critical Greedy: budget-interpolated per-task category choice."""

    name = "cg"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run CG: per-task budget interpolation, then min-EFT instances."""
        wf.freeze()
        c_min = _single_vm_cost(wf, platform, platform.cheapest)
        c_max = _single_vm_cost(wf, platform, platform.most_expensive)
        # [25] implicitly assumes c_min < B < c_max. Outside that range — or
        # when linear speed/cost pricing makes the "maximal" sequential cost
        # not actually larger (compute cost is flat; shorter makespans can
        # even make the fast VM cheaper overall) — we clamp gb to [0, 1],
        # the only extension that keeps the interpolation meaningful.
        span = c_max - c_min
        if budget == math.inf:
            gb = 1.0
        elif span <= _EPS:
            gb = 1.0 if budget >= max(c_min, c_max) else 0.0
        else:
            gb = min(max((budget - c_min) / span, 0.0), 1.0)

        state = PlanningState(wf, platform)
        within = True
        for tid in heft_order(wf, platform.mean_speed, platform.bandwidth):
            # Category whose cost is closest to the task's target spend.
            costs = {
                cat.name: _task_cost_on(wf, platform, tid, cat)
                for cat in platform.categories
            }
            ct_min = costs[platform.cheapest.name]
            ct_max = costs[platform.most_expensive.name]
            target = ct_min + (ct_max - ct_min) * gb
            chosen_cat = min(
                platform.categories,
                key=lambda cat: (abs(costs[cat.name] - target), cat.hourly_cost),
            )
            # Smallest-EFT instance of that category (used VM or fresh).
            candidates = [
                state.evaluate(tid, vm, vm.category)
                for vm in state.vms
                if vm.category == chosen_cat
            ]
            candidates.append(state.evaluate(tid, None, chosen_cat))
            best = min(candidates, key=lambda ev: (ev.eft, ev.cost))
            if get_tracer().enabled:
                get_tracer().decide(
                    DecisionRecord(
                        kind="cluster_group",
                        task=tid,
                        chosen_vm=best.vm_id,
                        category=chosen_cat.name,
                        eft=best.eft,
                        cost=best.cost,
                        allowance=target,
                        remaining=target - costs[chosen_cat.name],
                        n_candidates=len(candidates),
                        candidates=[
                            {"category": name, "cost": ct,
                             "gap": abs(ct - target)}
                            for name, ct in sorted(costs.items())
                        ],
                        extra={"gb": gb, "ct_min": ct_min, "ct_max": ct_max},
                    )
                )
            state.commit(best)

        schedule = state.to_schedule()
        evaluation = evaluate_schedule(wf, platform, schedule)
        if budget != math.inf and evaluation.total_cost > budget:
            within = False
        return SchedulerResult(
            schedule=schedule,
            planned_makespan=evaluation.makespan,
            planned_vm_cost=evaluation.cost.vm_rental,
            within_budget_plan=within,
            algorithm=self.name,
            leftover_pot=max(budget - evaluation.total_cost, 0.0)
            if budget != math.inf
            else 0.0,
        )


def critical_tasks_of(
    wf: Workflow, schedule: Schedule, result: SimulationResult
) -> List[str]:
    """Tasks on the schedule's critical path, walked back from the last
    finishing task through its binding constraint (previous task on the same
    VM, or the predecessor whose upload gated the download start)."""
    tol = 1e-6
    queues = schedule.queues()
    index_in_queue = {
        tid: i for q in queues.values() for i, tid in enumerate(q)
    }
    last = max(result.tasks.values(), key=lambda r: r.compute_end).tid
    path = [last]
    current = last
    seen = {last}
    while True:
        rec = result.tasks[current]
        blocker: Optional[str] = None
        # Same-VM predecessor in the queue whose compute end binds us.
        q = queues[rec.vm_id]
        qi = index_in_queue[current]
        if qi > 0:
            prev = q[qi - 1]
            if abs(result.tasks[prev].compute_end - rec.download_start) <= tol:
                blocker = prev
        if blocker is None:
            for pred in wf.predecessors(current):
                pr = result.tasks[pred]
                at_dc = (
                    pr.compute_end
                    if pr.vm_id == rec.vm_id
                    else pr.outputs_at_dc
                )
                if abs(at_dc - rec.download_start) <= tol:
                    blocker = pred
                    break
        if blocker is None or blocker in seen:
            break
        path.append(blocker)
        seen.add(blocker)
        current = blocker
    path.reverse()
    return path


class CgPlusScheduler(Scheduler):
    """CG followed by greedy ΔT/Δc critical-path re-assignment (CG+)."""

    name = "cg_plus"

    #: Safety bound on refinement rounds (the greedy loop normally stops
    #: because no pair improves long before this).
    max_rounds_factor = 4

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run CG, then greedy ΔT/Δc refinement along the critical path."""
        base = CgScheduler().schedule(wf, platform, budget)
        current = base.schedule
        result = evaluate_schedule(wf, platform, current)

        for _ in range(self.max_rounds_factor * wf.n_tasks):
            move = self._best_move(wf, platform, current, result, budget)
            if move is None:
                break
            current, result = move

        return SchedulerResult(
            schedule=current,
            planned_makespan=result.makespan,
            planned_vm_cost=result.cost.vm_rental,
            within_budget_plan=(budget == math.inf or result.total_cost <= budget),
            algorithm=self.name,
            leftover_pot=max(budget - result.total_cost, 0.0)
            if budget != math.inf
            else 0.0,
        )

    @staticmethod
    def _best_move(
        wf: Workflow,
        platform: CloudPlatform,
        current: Schedule,
        result: SimulationResult,
        budget: float,
    ) -> Optional[Tuple[Schedule, SimulationResult]]:
        """The (task, VM) re-assignment maximizing ΔT/Δc, if any qualifies."""
        critical = critical_tasks_of(wf, current, result)
        best_ratio = 0.0
        best: Optional[Tuple[Schedule, SimulationResult]] = None
        for tid in critical:
            current_vm = current.vm_of(tid)
            options: List[Tuple[int, VMCategory]] = [
                (vm_id, current.categories[vm_id])
                for vm_id in current.used_vms
                if vm_id != current_vm
            ]
            fresh = current.fresh_vm_id()
            options.extend((fresh, cat) for cat in platform.categories)
            for vm_id, category in options:
                candidate = current.reassigned(tid, vm_id, category)
                cand_result = evaluate_schedule(wf, platform, candidate)
                delta_t = result.makespan - cand_result.makespan
                delta_c = cand_result.total_cost - result.total_cost
                # [25]'s rule: only time-for-money trades are eligible.
                if delta_t <= _EPS or delta_c <= _EPS:
                    continue
                if budget != math.inf and cand_result.total_cost > budget:
                    continue
                ratio = delta_t / delta_c
                if ratio > best_ratio + _EPS:
                    best_ratio = ratio
                    best = (candidate, cand_result)
        return best
