"""Workflow ensembles under a shared budget (extension; §II's ref. [19]).

The paper's related work discusses Malawski et al. [19]: sets of workflows
with priorities submitted together, where the goal is to maximize the
number — or cumulated priority — of workflows completing under a global
budget (and deadline). The paper notes it "share[s] the approach of
partitioning the initial budget into chunks to be allotted to individual
candidates (workflows in [19], tasks in this paper)".

This module composes the two levels: an admission pass partitions the
global budget across workflows (greedy by priority density — priority per
required dollar), and each admitted workflow is scheduled by a budget-aware
algorithm with its chunk; whatever the conservative admission left over is
then redistributed to the admitted workflows proportionally to priority, so
high-priority members get faster (not just feasible) schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..platform.cloud import CloudPlatform
from ..simulation.executor import evaluate_schedule
from ..workflow.dag import Workflow
from .registry import make_scheduler
from .schedule import Schedule

__all__ = ["EnsembleMember", "AdmittedWorkflow", "EnsembleResult",
           "schedule_ensemble"]


@dataclass(frozen=True)
class EnsembleMember:
    """One candidate workflow with its priority (> 0)."""

    workflow: Workflow
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.priority <= 0.0:
            raise SchedulingError(
                f"priority must be > 0, got {self.priority} "
                f"for {self.workflow.name!r}"
            )


@dataclass(frozen=True)
class AdmittedWorkflow:
    """An admitted member with its chunk and deterministic outcome."""

    member: EnsembleMember
    budget_share: float
    schedule: Schedule
    planned_makespan: float
    planned_cost: float


@dataclass
class EnsembleResult:
    """Outcome of one ensemble scheduling round."""

    admitted: List[AdmittedWorkflow] = field(default_factory=list)
    rejected: List[EnsembleMember] = field(default_factory=list)
    budget: float = 0.0

    @property
    def n_admitted(self) -> int:
        """Number of workflows that fit ([19]'s primary objective)."""
        return len(self.admitted)

    @property
    def total_priority(self) -> float:
        """Cumulated priority of admitted workflows ([19]'s alternative)."""
        return sum(a.member.priority for a in self.admitted)

    @property
    def planned_spend(self) -> float:
        """Deterministic total cost across admitted schedules."""
        return sum(a.planned_cost for a in self.admitted)


def _required_budget(
    wf: Workflow,
    platform: CloudPlatform,
    deadline: float,
    algorithm: str,
    iterations: int = 16,
) -> Optional[Tuple[float, Schedule, float, float]]:
    """Smallest budget whose schedule meets ``deadline`` deterministically.

    Returns ``(budget, schedule, makespan, cost)`` or ``None`` when even an
    effectively unlimited budget cannot meet the deadline.
    """
    from ..experiments.budgets import high_budget, minimal_budget

    scheduler = make_scheduler(algorithm)

    def attempt(budget: float):
        sched = scheduler.schedule(wf, platform, budget).schedule
        run = evaluate_schedule(wf, platform, sched)
        return sched, run.makespan, run.total_cost

    lo = minimal_budget(wf, platform)
    hi = high_budget(wf, platform)
    sched_hi, mk_hi, cost_hi = attempt(hi)
    if mk_hi > deadline:
        return None
    best = (hi, sched_hi, mk_hi, cost_hi)
    sched_lo, mk_lo, cost_lo = attempt(lo)
    if mk_lo <= deadline:
        return (lo, sched_lo, mk_lo, cost_lo)
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        sched_mid, mk_mid, cost_mid = attempt(mid)
        if mk_mid <= deadline:
            hi = mid
            best = (mid, sched_mid, mk_mid, cost_mid)
        else:
            lo = mid
    return best


def schedule_ensemble(
    members: Sequence[EnsembleMember],
    platform: CloudPlatform,
    budget: float,
    *,
    deadline: float = math.inf,
    algorithm: str = "heft_budg",
) -> EnsembleResult:
    """Admit and schedule an ensemble under a global (budget, deadline).

    Members are admitted greedily by priority density (priority per required
    dollar); each admitted member is charged its *required* budget first,
    and the leftover is redistributed proportionally to priority for the
    final per-member scheduling round.
    """
    if budget < 0.0:
        raise SchedulingError(f"negative ensemble budget {budget}")
    result = EnsembleResult(budget=budget)

    # Required chunk per member (deadline-aware when one is given). A
    # member is charged what its schedule actually costs when that exceeds
    # the nominal budget knob (at tight budgets the scheduler's
    # cheapest-host fallback can cost slightly more than B_min).
    priced: List[Tuple[EnsembleMember, float, Schedule, float, float]] = []
    for member in members:
        req = _required_budget(member.workflow, platform, deadline, algorithm)
        if req is None:
            result.rejected.append(member)
            continue
        chunk, sched, mk, cost = req
        charge = max(chunk, cost)
        priced.append((member, charge, sched, mk, cost))

    # Greedy admission by priority density.
    priced.sort(key=lambda row: (-row[0].priority / row[1],
                                 row[0].workflow.name))
    remaining = budget
    admitted_rows = []
    for row in priced:
        member, chunk = row[0], row[1]
        if chunk <= remaining:
            admitted_rows.append(row)
            remaining -= chunk
        else:
            result.rejected.append(member)

    # Redistribute the leftover proportionally to priority and re-schedule.
    total_priority = sum(row[0].priority for row in admitted_rows) or 1.0
    scheduler = make_scheduler(algorithm)
    for member, charge, sched, mk, cost in admitted_rows:
        bonus = remaining * (member.priority / total_priority)
        share = charge + bonus
        if bonus > 0:
            cand = scheduler.schedule(member.workflow, platform, share).schedule
            run = evaluate_schedule(member.workflow, platform, cand)
            # the bonus must never break the deadline or the member's share
            if run.makespan <= deadline and run.total_cost <= share:
                sched, mk, cost = cand, run.makespan, run.total_cost
        result.admitted.append(
            AdmittedWorkflow(
                member=member,
                budget_share=share,
                schedule=sched,
                planned_makespan=mk,
                planned_cost=cost,
            )
        )
    return result
