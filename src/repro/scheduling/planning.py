"""Incremental planning state shared by all list schedulers.

While building a schedule, every algorithm in §IV maintains the same view of
the platform: the VMs enrolled so far (with their availability and rental
windows) plus one *fresh* candidate VM per category. For a ready task the
planner computes, per candidate host (Eq. 7):

``t_Exec = δ_new·t_boot + (w̄+σ)/s_host + size(d_in,T)/bw``

where ``d_in,T`` excludes data already present on the host, and

``EFT = t_begin + t_Exec``,
``t_begin = max(host availability, inputs-at-datacenter time)``.

The incremental monetary cost ``ct`` of placing the task is the growth of
the host's billed rental window (download + compute + upload time, plus any
idle gap the placement creates — a VM is a continuous slot, §III-B). Summed
over a VM's tasks this telescopes to exactly the rental the simulator will
bill, keeping planner and executor consistent. Planning is *conservative*
about uploads: every output is assumed to go through the datacenter (§V-B:
"we made a pessimistic estimation of the cost of data transfers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..platform.cloud import CloudPlatform
from ..platform.vm import VMCategory
from ..workflow.dag import Workflow
from .schedule import Schedule

__all__ = ["HostEvaluation", "PlannedVM", "PlanningState"]


@dataclass(frozen=True)
class HostEvaluation:
    """Outcome of evaluating one candidate host for one task.

    ``vm_id`` is ``None`` for a fresh VM (its id is allocated on commit).
    ``eft`` is the Earliest Finish Time (compute end); ``cost`` the
    incremental dollars ``ct_{T,host}``; the remaining fields carry the
    timeline needed to commit the decision without recomputation.
    """

    tid: str
    category: VMCategory
    vm_id: Optional[int]
    eft: float
    cost: float
    t_begin: float
    download_start: float
    compute_start: float
    upload_end: float
    window_start: float
    window_end: float

    @property
    def is_new_vm(self) -> bool:
        """True when this evaluation enrolls a fresh VM."""
        return self.vm_id is None


@dataclass
class PlannedVM:
    """One enrolled VM in the planner's view.

    ``ready_time`` is when billing starts (post-boot); ``core_free`` holds
    the next-idle time of each of the category's ``n_k`` processors (one
    entry for the common single-core case); ``last_dispatch`` enforces the
    FIFO dispatch rule shared with the executor (a task never starts before
    its queue predecessor started); ``window_end`` is the current end of the
    billed window (last compute or upload).
    """

    vm_id: int
    category: VMCategory
    booked_at: float
    ready_time: float
    core_free: List[float]
    window_end: float
    last_dispatch: float = 0.0
    tasks: List[str] = field(default_factory=list)

    @property
    def compute_free(self) -> float:
        """Earliest instant any core is idle."""
        return min(self.core_free)

    @compute_free.setter
    def compute_free(self, value: float) -> None:
        """Single-core convenience used by seeding code (e.g. online.py)."""
        earliest = min(range(len(self.core_free)), key=self.core_free.__getitem__)
        self.core_free[earliest] = value


class PlanningState:
    """Mutable planner state: enrolled VMs + per-task timelines.

    Drives every algorithm of §IV. Typical usage::

        state = PlanningState(wf, platform)
        for tid in priority_order:
            best = min(state.evaluate_all(tid), key=...)
            state.commit(best)
        schedule = state.to_schedule()
    """

    def __init__(
        self,
        wf: Workflow,
        platform: CloudPlatform,
        *,
        use_conservative: bool = True,
    ) -> None:
        self.wf = wf
        self.platform = platform
        self.use_conservative = use_conservative
        self.vms: List[PlannedVM] = []
        self.assignment: Dict[str, int] = {}
        self.order: List[str] = []
        self.finish: Dict[str, float] = {}

    def planning_weight(self, tid: str) -> float:
        """``w̄ + σ`` normally; plain ``w̄`` for the mean-weight ablation."""
        task = self.wf.task(tid)
        return task.conservative_weight if self.use_conservative else task.mean_weight

    # ------------------------------------------------------------------
    def scheduled(self, tid: str) -> bool:
        """Whether ``tid`` has been committed already."""
        return tid in self.assignment

    def is_ready(self, tid: str) -> bool:
        """All predecessors committed (planning-level readiness)."""
        return all(p in self.assignment for p in self.wf.predecessors(tid))

    def ready_tasks(self) -> List[str]:
        """Unscheduled tasks whose predecessors are all scheduled."""
        return [
            tid
            for tid in self.wf.topological_order
            if tid not in self.assignment and self.is_ready(tid)
        ]

    # ------------------------------------------------------------------
    def _inputs_at_dc(self, tid: str, vm_id: Optional[int]) -> Tuple[float, float]:
        """``(ready_time, download_bytes)`` of ``tid``'s inputs w.r.t. a host.

        Data produced by predecessors on the *same* VM are already present;
        everything else must be at the datacenter (predecessor edge data at
        its conservative upload time, external inputs at time 0) and then
        downloaded.
        """
        task = self.wf.task(tid)
        nbytes = task.external_input
        ready = 0.0
        for pred, data in self.wf.predecessors(tid).items():
            if pred not in self.assignment:
                raise SchedulingError(
                    f"evaluating {tid!r} before predecessor {pred!r} is scheduled"
                )
            if vm_id is not None and self.assignment[pred] == vm_id:
                # Data are local; the dependency still gates the start at
                # the producer's finish (binding on multi-core hosts).
                if self.finish[pred] > ready:
                    ready = self.finish[pred]
                continue
            nbytes += data
            at_dc = self.finish[pred] + data / self.platform.bandwidth
            if at_dc > ready:
                ready = at_dc
        return ready, nbytes

    def earliest_start(self, tid: str) -> float:
        """Host-independent earliest start: when all inputs can be at the DC.

        Used by BDT's within-level ordering (increasing EST).
        """
        ready, _ = self._inputs_at_dc(tid, None)
        return ready

    def _upload_time(self, tid: str) -> float:
        """Conservative upload duration: every output goes to the DC."""
        task = self.wf.task(tid)
        nbytes = self.wf.output_data_of(tid) + task.external_output
        return nbytes / self.platform.bandwidth

    def evaluate(
        self, tid: str, vm: Optional[PlannedVM], category: VMCategory
    ) -> HostEvaluation:
        """Evaluate placing ``tid`` on ``vm`` (or a fresh ``category`` VM)."""
        bw = self.platform.bandwidth
        inputs_ready, download_bytes = self._inputs_at_dc(
            tid, vm.vm_id if vm is not None else None
        )
        if vm is None:
            t_begin = inputs_ready
            download_start = t_begin + category.boot_time
            window_start = download_start  # billing starts when VM is ready
            prev_window_end = window_start
        else:
            category = vm.category
            t_begin = max(vm.compute_free, inputs_ready, vm.last_dispatch)
            download_start = t_begin
            window_start = vm.ready_time
            prev_window_end = vm.window_end
        compute_start = download_start + download_bytes / bw
        eft = compute_start + self.planning_weight(tid) / category.speed
        upload_end = eft + self._upload_time(tid)
        window_end = max(prev_window_end, eft, upload_end)
        cost = (window_end - prev_window_end) * category.cost_rate
        return HostEvaluation(
            tid=tid,
            category=category,
            vm_id=vm.vm_id if vm is not None else None,
            eft=eft,
            cost=cost,
            t_begin=t_begin,
            download_start=download_start,
            compute_start=compute_start,
            upload_end=upload_end,
            window_start=window_start,
            window_end=window_end,
        )

    def evaluate_all(self, tid: str) -> List[HostEvaluation]:
        """Evaluations on every used VM plus one fresh VM per category."""
        out = [self.evaluate(tid, vm, vm.category) for vm in self.vms]
        out.extend(self.evaluate(tid, None, cat) for cat in self.platform.categories)
        return out

    # ------------------------------------------------------------------
    def commit(self, ev: HostEvaluation) -> PlannedVM:
        """Apply a host decision; returns the (possibly new) VM."""
        if ev.tid in self.assignment:
            raise SchedulingError(f"task {ev.tid!r} committed twice")
        if ev.is_new_vm:
            cores = [ev.window_start] * ev.category.cores
            cores[0] = ev.eft
            vm = PlannedVM(
                vm_id=len(self.vms),
                category=ev.category,
                booked_at=ev.t_begin,
                ready_time=ev.window_start,
                core_free=cores,
                window_end=ev.window_end,
                last_dispatch=ev.download_start,
            )
            self.vms.append(vm)
        else:
            vm = self.vms[ev.vm_id]  # type: ignore[index]
            if min(vm.core_free) > ev.t_begin + 1e-9:
                raise SchedulingError(
                    f"stale evaluation for {ev.tid!r}: VM {vm.vm_id} moved on"
                )
            earliest = min(
                range(len(vm.core_free)), key=vm.core_free.__getitem__
            )
            vm.core_free[earliest] = ev.eft
            vm.last_dispatch = max(vm.last_dispatch, ev.download_start)
            vm.window_end = ev.window_end
        vm.tasks.append(ev.tid)
        self.assignment[ev.tid] = vm.vm_id
        self.order.append(ev.tid)
        self.finish[ev.tid] = ev.eft
        return vm

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Current planned makespan (latest window end minus earliest booking)."""
        if not self.vms:
            return 0.0
        start = min(vm.booked_at for vm in self.vms)
        return max(vm.window_end for vm in self.vms) - start

    def vm_rental_cost(self) -> float:
        """Total planned VM rental dollars (no init fees, no ceil)."""
        return sum(
            (vm.window_end - vm.ready_time) * vm.category.cost_rate
            for vm in self.vms
        )

    def to_schedule(self) -> Schedule:
        """Freeze into a :class:`Schedule` (all tasks must be committed)."""
        missing = set(self.wf.tasks) - set(self.assignment)
        if missing:
            raise SchedulingError(
                f"cannot build schedule, unscheduled tasks: {sorted(missing)[:5]}"
            )
        return Schedule(
            order=list(self.order),
            assignment=dict(self.assignment),
            categories={vm.vm_id: vm.category for vm in self.vms},
        )
