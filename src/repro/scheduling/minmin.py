"""MIN-MIN and MIN-MINBUDG (Algorithm 3).

MIN-MIN [6], [14] repeatedly considers every *ready* task, computes its best
(smallest-EFT) host, and schedules the (task, host) pair with the global
minimum EFT. MIN-MINBUDG constrains each task's host choice by its budget
share ``B_T`` plus the shared ``pot`` (Algorithm 2). The baseline is the
infinite-budget special case.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow
from .budget import divide_budget
from .list_base import Scheduler, SchedulerResult, get_best_host
from .planning import HostEvaluation, PlanningState

__all__ = ["MinMinScheduler", "MinMinBudgScheduler"]


class MinMinBudgScheduler(Scheduler):
    """Budget-aware MIN-MIN (Algorithm 3)."""

    name = "minmin_budg"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run Algorithm 3: min-EFT choice over ready tasks under shares."""
        wf.freeze()
        plan = divide_budget(wf, platform, budget)
        state = PlanningState(wf, platform)
        position = {tid: i for i, tid in enumerate(wf.topological_order)}
        pot = 0.0
        all_within = True

        # Incremental ready-set maintenance: unscheduled predecessor counts.
        pending_preds: Dict[str, int] = {
            tid: len(wf.predecessors(tid)) for tid in wf.tasks
        }
        ready = {tid for tid, n in pending_preds.items() if n == 0}

        while ready:
            best: Optional[Tuple[HostEvaluation, bool]] = None
            best_key: Optional[Tuple[float, float, int]] = None
            for tid in ready:
                ev, within = get_best_host(state, tid, plan.share(tid) + pot)
                key = (ev.eft, ev.cost, position[tid])
                if best_key is None or key < best_key:
                    best_key = key
                    best = (ev, within)
            assert best is not None
            ev, within = best
            state.commit(ev)
            pot = plan.share(ev.tid) + pot - ev.cost
            if not within:
                all_within = False
            ready.discard(ev.tid)
            for succ in wf.successors(ev.tid):
                pending_preds[succ] -= 1
                if pending_preds[succ] == 0:
                    ready.add(succ)

        return SchedulerResult(
            schedule=state.to_schedule(),
            planned_makespan=state.makespan,
            planned_vm_cost=state.vm_rental_cost(),
            within_budget_plan=all_within,
            algorithm=self.name,
            leftover_pot=max(pot, 0.0),
        )


class MinMinScheduler(Scheduler):
    """Classical MIN-MIN: the infinite-budget special case of MIN-MINBUDG."""

    name = "minmin"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float = math.inf
    ) -> SchedulerResult:
        """Run MIN-MIN: MIN-MINBUDG with an unlimited budget (``budget`` ignored)."""
        result = MinMinBudgScheduler().schedule(wf, platform, math.inf)
        result.algorithm = self.name
        return result
