"""HEFT and HEFTBUDG (Algorithm 4).

HEFT [24] sorts tasks by non-increasing bottom level (upward rank) and
assigns each to the host with the earliest finish time. HEFTBUDG keeps the
order but constrains each choice by the task's budget share ``B_T`` plus the
shared leftover ``pot`` (Algorithm 2). The baseline is exactly HEFTBUDG with
an infinite budget — the paper notes that with an infinite initial budget
both produce the same schedule, which is how we implement it.
"""

from __future__ import annotations

import math

from ..obs.tracing import get_tracer
from ..platform.cloud import CloudPlatform
from ..workflow.analysis import heft_order
from ..workflow.dag import Workflow
from .budget import divide_budget
from .list_base import Scheduler, SchedulerResult, get_best_host
from .planning import PlanningState

__all__ = ["HeftScheduler", "HeftBudgScheduler"]


class HeftBudgScheduler(Scheduler):
    """Budget-aware HEFT (Algorithm 4).

    Ablation knobs (both default to the paper's design):

    * ``use_pot=False`` disables the leftover-budget reclamation — each task
      is confined to its own share ``B_T``;
    * ``use_conservative=False`` plans with mean weights ``w̄`` instead of
      the conservative ``w̄ + σ``.
    """

    name = "heft_budg"

    def __init__(self, *, use_pot: bool = True, use_conservative: bool = True):
        self.use_pot = use_pot
        self.use_conservative = use_conservative

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run Algorithm 4: budget division, then rank-ordered getBestHost."""
        wf.freeze()
        with get_tracer().span(
            "schedule.heft_budg", workflow=wf.name, n_tasks=wf.n_tasks,
            budget=budget,
        ) as span:
            plan = divide_budget(
                wf, platform, budget, use_conservative=self.use_conservative
            )
            order = heft_order(wf, platform.mean_speed, platform.bandwidth)
            state = PlanningState(
                wf, platform, use_conservative=self.use_conservative
            )
            pot = 0.0
            all_within = True
            for tid in order:
                allowance = plan.share(tid) + (pot if self.use_pot else 0.0)
                ev, within = get_best_host(state, tid, allowance)
                state.commit(ev)
                if self.use_pot:
                    pot = allowance - ev.cost
                if not within:
                    all_within = False
                    pot = min(pot, 0.0)  # overruns cannot seed future leftovers
            span.set(
                n_vms=len(state.vms), within_budget=all_within,
                leftover_pot=max(pot, 0.0),
            )
        return SchedulerResult(
            schedule=state.to_schedule(),
            planned_makespan=state.makespan,
            planned_vm_cost=state.vm_rental_cost(),
            within_budget_plan=all_within,
            algorithm=self.name,
            leftover_pot=max(pot, 0.0),
        )


class HeftScheduler(Scheduler):
    """Classical HEFT: the infinite-budget special case of HEFTBUDG."""

    name = "heft"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float = math.inf
    ) -> SchedulerResult:
        """Run HEFT: HEFTBUDG with an unlimited budget (``budget`` ignored)."""
        result = HeftBudgScheduler().schedule(wf, platform, math.inf)
        result.algorithm = self.name
        return result
