"""MAX-MIN and SUFFERAGE — the classical siblings of MIN-MIN (extension).

The paper builds on MIN-MIN ([6], [14]); the same batch-mode family
contains two other standard heuristics that any scheduling library is
expected to ship, and that make instructive baselines for the budget
machinery (they plug into Algorithm 1 + Algorithm 2 unchanged):

* **MAX-MIN**: among ready tasks, schedule the one whose *best* completion
  time is the largest — run the big rocks first so small tasks fill gaps;
* **SUFFERAGE**: schedule the task that would *suffer* most from not
  getting its best host — largest gap between its best and second-best
  EFT.

Both are implemented budget-aware (per-task shares + the shared pot, like
MIN-MINBUDG); the plain baselines are the infinite-budget special cases.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow
from .budget import divide_budget
from .list_base import Scheduler, SchedulerResult, get_best_host
from .planning import HostEvaluation, PlanningState

__all__ = [
    "MaxMinBudgScheduler",
    "MaxMinScheduler",
    "SufferageBudgScheduler",
    "SufferageScheduler",
]


class _ReadySetBudgScheduler(Scheduler):
    """Shared batch-mode loop; subclasses provide the selection key."""

    name = "abstract_ready_set"

    def _selection_key(
        self, state: PlanningState, tid: str, best: HostEvaluation
    ) -> float:
        """Larger = scheduled earlier. Subclasses override."""
        raise NotImplementedError

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Batch-mode loop: evaluate all ready tasks, commit the winner."""
        wf.freeze()
        plan = divide_budget(wf, platform, budget)
        state = PlanningState(wf, platform)
        position = {tid: i for i, tid in enumerate(wf.topological_order)}
        pot = 0.0
        all_within = True

        pending_preds: Dict[str, int] = {
            tid: len(wf.predecessors(tid)) for tid in wf.tasks
        }
        ready: Set[str] = {t for t, n in pending_preds.items() if n == 0}

        while ready:
            best_tid: Optional[str] = None
            best_ev: Optional[HostEvaluation] = None
            best_within = True
            best_key: Optional[Tuple[float, int]] = None
            for tid in ready:
                ev, within = get_best_host(state, tid, plan.share(tid) + pot)
                key = (self._selection_key(state, tid, ev), -position[tid])
                if best_key is None or key > best_key:
                    best_key = key
                    best_tid, best_ev, best_within = tid, ev, within
            assert best_tid is not None and best_ev is not None
            state.commit(best_ev)
            pot = plan.share(best_tid) + pot - best_ev.cost
            if not best_within:
                all_within = False
            ready.discard(best_tid)
            for succ in wf.successors(best_tid):
                pending_preds[succ] -= 1
                if pending_preds[succ] == 0:
                    ready.add(succ)

        return SchedulerResult(
            schedule=state.to_schedule(),
            planned_makespan=state.makespan,
            planned_vm_cost=state.vm_rental_cost(),
            within_budget_plan=all_within,
            algorithm=self.name,
            leftover_pot=max(pot, 0.0),
        )


class MaxMinBudgScheduler(_ReadySetBudgScheduler):
    """Budget-aware MAX-MIN: largest best-EFT ready task first."""

    name = "maxmin_budg"

    def _selection_key(self, state, tid, best):
        """MAX-MIN key: the task's best EFT (bigger scheduled first)."""
        return best.eft


class SufferageBudgScheduler(_ReadySetBudgScheduler):
    """Budget-aware SUFFERAGE: largest best-vs-second-best EFT gap first."""

    name = "sufferage_budg"

    def _selection_key(self, state, tid, best):
        """Sufferage: how much the task loses without its best host."""
        efts = sorted(ev.eft for ev in state.evaluate_all(tid))
        if len(efts) < 2:
            return 0.0
        return efts[1] - efts[0]


class MaxMinScheduler(Scheduler):
    """Classical MAX-MIN: the infinite-budget special case."""

    name = "maxmin"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float = math.inf
    ) -> SchedulerResult:
        """Run MAX-MIN (``budget`` ignored)."""
        result = MaxMinBudgScheduler().schedule(wf, platform, math.inf)
        result.algorithm = self.name
        return result


class SufferageScheduler(Scheduler):
    """Classical SUFFERAGE: the infinite-budget special case."""

    name = "sufferage"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float = math.inf
    ) -> SchedulerResult:
        """Run SUFFERAGE (``budget`` ignored)."""
        result = SufferageBudgScheduler().schedule(wf, platform, math.inf)
        result.algorithm = self.name
        return result
