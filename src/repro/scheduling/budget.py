"""Budget reservation and per-task division (§IV-A, Algorithm 1, Eq. 4-6).

Given the initial budget ``B_ini``:

1. *Reserve* the datacenter cost: the execution duration is conservatively
   estimated as a **sequential** run on a single VM of mean speed ``s̄`` —
   all conservative weights, plus the staging of external inputs and
   outputs, but no internal transfers (they'd be on-VM). That duration is
   charged at ``c_h,DC``; external I/O is charged at ``c_of`` (Eq. 2).
2. *Reserve* one setup fee per task, at the cheapest category's price:
   ``n × c_ini,1`` — ready to pay for full parallelism.
3. The remainder ``B_calc`` is split proportionally to each task's
   estimated duration (Eq. 5-6)::

       B_T = t_calc,T / t_calc,wf × B_calc
       t_calc,T = (w̄_T + σ_T)/s̄ + size(d_pred,T)/bw
       t_calc,wf = W_max + d_max/bw

   Deviation from the paper's letter (documented in DESIGN.md): external
   input data are counted in ``d_pred,T`` and ``d_max``. They are staged at
   the datacenter and downloaded exactly like predecessor data, and
   workflows like CYBERSHAKE carry most of their bytes there — excluding
   them would starve the transfer-heavy tasks for no modelling reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SchedulingError
from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow

__all__ = ["BudgetPlan", "divide_budget", "datacenter_reservation"]


@dataclass(frozen=True)
class BudgetPlan:
    """Result of Algorithm 1: reservations plus the per-task shares."""

    b_ini: float
    reserve_datacenter: float
    reserve_init: float
    b_calc: float
    shares: Dict[str, float]

    @property
    def total_shares(self) -> float:
        """Σ B_T — equals ``b_calc`` up to float rounding."""
        return sum(self.shares.values())

    def share(self, tid: str) -> float:
        """The share ``B_T`` of one task."""
        return self.shares[tid]


def datacenter_reservation(
    wf: Workflow, platform: CloudPlatform, *, use_conservative: bool = True
) -> float:
    """Reserved dollars for the datacenter (step 1 above)."""
    io_bytes = wf.external_input_data + wf.external_output_data
    work = (
        wf.total_conservative_work if use_conservative else wf.total_mean_work
    )
    t_seq = work / platform.mean_speed + io_bytes / platform.bandwidth
    return t_seq * platform.datacenter_rate(wf) + platform.io_cost(wf)


def divide_budget(
    wf: Workflow,
    platform: CloudPlatform,
    b_ini: float,
    *,
    use_conservative: bool = True,
) -> BudgetPlan:
    """Run Algorithm 1 (``getBudgCalc`` + the proportional split).

    When the reservations exceed ``B_ini``, ``B_calc`` is clamped at zero:
    every share is then zero and the schedulers fall back to cheapest-host
    decisions — this is the paper's near-minimum-budget regime, where
    overruns are reported through the validity metric rather than raised.
    """
    if b_ini < 0.0:
        raise SchedulingError(f"negative budget {b_ini}")
    reserve_dc = datacenter_reservation(
        wf, platform, use_conservative=use_conservative
    )
    reserve_init = wf.n_tasks * platform.cheapest.initial_cost
    b_calc = max(b_ini - reserve_dc - reserve_init, 0.0)

    s_bar = platform.mean_speed
    bw = platform.bandwidth
    t_calc: Dict[str, float] = {}
    for tid in wf.topological_order:
        task = wf.task(tid)
        weight = task.conservative_weight if use_conservative else task.mean_weight
        in_bytes = wf.input_data_of(tid) + task.external_input
        t_calc[tid] = weight / s_bar + in_bytes / bw
    t_wf = sum(t_calc.values())
    if t_wf <= 0.0:
        raise SchedulingError("workflow has zero total planned duration")

    shares = {tid: b_calc * t / t_wf for tid, t in t_calc.items()}
    return BudgetPlan(
        b_ini=b_ini,
        reserve_datacenter=reserve_dc,
        reserve_init=reserve_init,
        b_calc=b_calc,
        shares=shares,
    )
