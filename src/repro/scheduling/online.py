"""On-line rescheduling prototype (the paper's §VI future work).

The paper closes with: *"if we monitor the execution of the tasks, we can
detect unlikely events such as very long durations, and in such cases, it
could be beneficial to interrupt some tasks and re-schedule them onto faster
VMs"*. This module prototypes the monitoring loop:

1. schedule with HEFTBUDG (conservative weights);
2. execute against the (hidden) actual weights; a task whose actual duration
   exceeds ``timeout_factor ×`` its planned duration raises a *timeout* at
   ``compute_start + timeout_factor × planned`` — the instant an on-line
   monitor would notice;
3. everything already started by that instant is *committed* (tasks are
   non-preemptive, §III-A; we re-map late work rather than interrupt, the
   paper's cautious variant); the not-yet-started tasks are re-scheduled by
   a fresh budget-constrained EFT pass seeded with the committed timeline
   and the unspent budget;
4. repeat until no unhandled timeout remains.

The global dispatch order (``ListT``) never changes — only assignments do —
so the final schedule replays deterministically on the simulator.

This is an honest prototype of the proposed direction, not a contribution
of the paper itself; see DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import SchedulingError
from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..rng import RngLike
from ..simulation.executor import execute_schedule, sample_weights
from ..simulation.trace import SimulationResult
from ..workflow.dag import Workflow
from .budget import divide_budget
from .heft import HeftBudgScheduler
from .list_base import get_best_host
from .planning import PlannedVM, PlanningState
from .schedule import Schedule

__all__ = ["OnlineRunResult", "OnlineHeftBudg"]


@dataclass
class OnlineRunResult:
    """Outcome of one monitored execution."""

    schedule: Schedule
    result: SimulationResult
    n_reschedules: int
    timeouts: List[str] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Final achieved makespan."""
        return self.result.makespan

    @property
    def total_cost(self) -> float:
        """Final achieved cost."""
        return self.result.total_cost


class OnlineHeftBudg:
    """HEFTBUDG with timeout-triggered re-mapping of late work.

    Parameters
    ----------
    timeout_factor:
        A task times out when its actual duration exceeds this multiple of
        its planned (conservative) duration. With planning weight ``w̄ + σ``
        and Gaussian weights, a factor of 1.5 fires roughly on >2.5σ
        stragglers at σ/w̄ = 1.
    max_reschedules:
        Safety bound on monitoring rounds.
    """

    def __init__(self, *, timeout_factor: float = 1.5, max_reschedules: int = 25):
        if timeout_factor <= 1.0:
            raise SchedulingError(
                f"timeout_factor must be > 1, got {timeout_factor}"
            )
        self.timeout_factor = timeout_factor
        self.max_reschedules = max_reschedules

    # ------------------------------------------------------------------
    def run(
        self,
        wf: Workflow,
        platform: CloudPlatform,
        budget: float,
        *,
        rng: RngLike = None,
        weights: Optional[Mapping[str, float]] = None,
    ) -> OnlineRunResult:
        """Execute ``wf`` under monitoring; returns the final trace.

        ``weights`` fixes the actual realization (for experiments); by
        default one is sampled from ``rng``.
        """
        wf.freeze()
        actual = dict(weights) if weights is not None else sample_weights(wf, rng)
        schedule = HeftBudgScheduler().schedule(wf, platform, budget).schedule

        handled: set = set()
        rounds = 0
        remaps = 0
        while rounds < self.max_reschedules:
            run = execute_schedule(wf, platform, schedule, actual, validate=False)
            timeout = self._first_timeout(wf, schedule, run, actual, handled)
            if timeout is None:
                return OnlineRunResult(schedule, run, remaps, sorted(handled))
            tid, detection = timeout
            handled.add(tid)
            rounds += 1
            candidate = self._remap_remaining(
                wf, platform, budget, schedule, run, detection
            )
            # Accept the re-mapping only if it helps under the monitor's
            # best knowledge at the detection instant: true weights for
            # finished work, the timeout-implied lower bound for the
            # straggler, conservative estimates for everything else.
            knowledge = self._knowledge_weights(
                wf, schedule, run, actual, detection, tid
            )
            mk_keep = execute_schedule(
                wf, platform, schedule, knowledge, validate=False
            ).makespan
            mk_move = execute_schedule(
                wf, platform, candidate, knowledge, validate=False
            ).makespan
            accepted = mk_move < mk_keep - 1e-9
            if get_tracer().enabled:
                get_tracer().decide(
                    DecisionRecord(
                        kind="replan",
                        task=tid,
                        round=rounds,
                        extra={
                            "detection_s": detection,
                            "accepted": accepted,
                            "mk_keep": mk_keep,
                            "mk_move": mk_move,
                        },
                    )
                )
            if accepted:
                schedule = candidate
                remaps += 1
        run = execute_schedule(wf, platform, schedule, actual, validate=False)
        return OnlineRunResult(schedule, run, remaps, sorted(handled))

    def _knowledge_weights(
        self, wf, schedule, run, actual, detection, straggler
    ) -> Dict[str, float]:
        """What the monitor can assume about weights at ``detection``."""
        weights: Dict[str, float] = {}
        for tid in wf.tasks:
            rec = run.tasks[tid]
            if rec.compute_end <= detection:
                weights[tid] = actual[tid]  # observed
            else:
                weights[tid] = wf.task(tid).conservative_weight
        # the straggler provably exceeds its timeout bound
        weights[straggler] = max(
            weights[straggler],
            self.timeout_factor * wf.task(straggler).conservative_weight,
        )
        return weights

    # ------------------------------------------------------------------
    def _planned_duration(self, wf: Workflow, schedule: Schedule, tid: str) -> float:
        return wf.task(tid).conservative_weight / schedule.category_of(tid).speed

    def _first_timeout(self, wf, schedule, run, actual, handled):
        """Earliest-detected unhandled straggler, or None."""
        best = None
        for tid in schedule.order:
            if tid in handled:
                continue
            planned = self._planned_duration(wf, schedule, tid)
            rec = run.tasks[tid]
            if rec.compute_end - rec.compute_start > self.timeout_factor * planned:
                detection = rec.compute_start + self.timeout_factor * planned
                if best is None or detection < best[1]:
                    best = (tid, detection)
        return best

    def _remap_remaining(
        self, wf, platform, budget, schedule, run, detection
    ) -> Schedule:
        """Re-map every task not yet started at ``detection``."""
        frozen = [
            tid for tid in schedule.order
            if run.tasks[tid].compute_start <= detection
        ]
        remaining = [tid for tid in schedule.order if tid not in set(frozen)]
        if not remaining:
            return schedule

        # Seed the planner with the committed truth. Tasks still running at
        # the detection instant get an estimated finish (the monitor cannot
        # know their true end): detection + planned duration.
        state = PlanningState(wf, platform)
        vm_ids = sorted({schedule.vm_of(t) for t in frozen})
        id_map: Dict[int, int] = {}
        vm_records = {vm.vm_id: vm for vm in run.vms}
        for new_id, old_id in enumerate(vm_ids):
            id_map[old_id] = new_id
            rec = vm_records[old_id]
            category = schedule.categories[old_id]
            state.vms.append(
                PlannedVM(
                    vm_id=new_id,
                    category=category,
                    booked_at=rec.booked_at,
                    ready_time=rec.ready_at,
                    core_free=[rec.ready_at] * category.cores,
                    window_end=rec.ready_at,
                    last_dispatch=rec.ready_at,
                )
            )
        committed_cost = 0.0
        for tid in frozen:
            rec = run.tasks[tid]
            vm = state.vms[id_map[rec.vm_id]]
            if rec.compute_end <= detection:
                finish = rec.compute_end
                window = max(rec.outputs_at_dc, rec.compute_end)
            else:
                finish = detection + self._planned_duration(wf, schedule, tid)
                window = finish + (
                    wf.output_data_of(tid) + wf.task(tid).external_output
                ) / platform.bandwidth
            state.assignment[tid] = vm.vm_id
            state.order.append(tid)
            state.finish[tid] = finish
            vm.tasks.append(tid)
            vm.compute_free = max(vm.compute_free, finish)
            vm.window_end = max(vm.window_end, window)
        for vm in state.vms:
            committed_cost += (
                (vm.window_end - vm.ready_time) * vm.category.cost_rate
                + vm.category.initial_cost
            )

        # Redistribute the unspent budget over the remaining tasks.
        leftover = max(budget - committed_cost, 0.0)
        plan = divide_budget(wf, platform, leftover)
        remaining_total = sum(plan.share(t) for t in remaining) or 1.0
        scale = plan.b_calc / remaining_total if remaining_total else 0.0

        pot = 0.0
        for tid in remaining:
            allowance = plan.share(tid) * scale + pot
            ev, _ = get_best_host(state, tid, allowance)
            state.commit(ev)
            pot = allowance - ev.cost

        new_assignment = dict(state.assignment)
        new_categories = {vm.vm_id: vm.category for vm in state.vms}
        return Schedule(
            order=list(schedule.order),
            assignment=new_assignment,
            categories=new_categories,
        )
