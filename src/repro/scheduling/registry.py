"""Name → scheduler registry, for declarative experiment configs."""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import SchedulingError
from .bdt import BdtScheduler
from .cg import CgPlusScheduler, CgScheduler
from .contingency import RESERVE_SEPARATOR, parse_reserved
from .heft import HeftBudgScheduler, HeftScheduler
from .list_base import Scheduler
from .minmin import MinMinBudgScheduler, MinMinScheduler
from .ready_set import (
    MaxMinBudgScheduler,
    MaxMinScheduler,
    SufferageBudgScheduler,
    SufferageScheduler,
)
from .refine import HeftBudgPlusInvScheduler, HeftBudgPlusScheduler

__all__ = ["SCHEDULERS", "make_scheduler", "available_schedulers"]

SCHEDULERS: Dict[str, Type[Scheduler]] = {
    cls.name: cls  # type: ignore[misc]
    for cls in (
        MinMinScheduler,
        HeftScheduler,
        MinMinBudgScheduler,
        HeftBudgScheduler,
        HeftBudgPlusScheduler,
        HeftBudgPlusInvScheduler,
        BdtScheduler,
        CgScheduler,
        CgPlusScheduler,
        MaxMinScheduler,
        MaxMinBudgScheduler,
        SufferageScheduler,
        SufferageBudgScheduler,
    )
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by registry name.

    A ``+res<fraction>`` suffix wraps the base algorithm in a
    :class:`~repro.scheduling.contingency.ContingencyScheduler` planning
    under ``budget × (1 − fraction)`` — e.g. ``heft_budg+res0.2``.
    """
    if RESERVE_SEPARATOR in name:
        reserved = parse_reserved(name.lower())
        if reserved is not None:
            return reserved
    try:
        return SCHEDULERS[name.lower()]()
    except KeyError:
        raise SchedulingError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)} "
            f"(optionally suffixed with '{RESERVE_SEPARATOR}<fraction>')"
        ) from None


def available_schedulers() -> List[str]:
    """Sorted registry names."""
    return sorted(SCHEDULERS)
