"""HEFTBUDG+ and HEFTBUDG+INV (§IV-B, Algorithm 5).

Both start from the HEFTBUDG schedule, then re-examine every task: try
moving it to each other used VM and to a fresh VM of each category, fully
re-simulating the workflow for each candidate (with the task list ``ListT``
fixed), and keep the move when it shortens the makespan while the *total*
simulated cost ``c_tot`` stays within the initial budget — thereby spending
whatever the conservative first pass left over.

HEFTBUDG+ walks ``ListT`` in HEFT priority order; HEFTBUDG+INV in reverse.
Complexity is ``O(n (n+e) p)`` — roughly two orders of magnitude above
HEFTBUDG (Table III), which is the paper's scalability trade-off.
"""

from __future__ import annotations

from typing import Optional

from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..simulation.executor import evaluate_schedule
from ..workflow.dag import Workflow
from .heft import HeftBudgScheduler
from .list_base import Scheduler, SchedulerResult
from .schedule import Schedule

__all__ = ["HeftBudgPlusScheduler", "HeftBudgPlusInvScheduler", "refine_schedule"]

#: Minimum makespan improvement for a move to be accepted (float hygiene).
_GAIN_TOL = 1e-9


def refine_schedule(
    wf: Workflow,
    platform: CloudPlatform,
    schedule: Schedule,
    budget: float,
    *,
    reverse: bool = False,
) -> Schedule:
    """One full re-mapping pass of Algorithm 5 over ``schedule``.

    Tasks are visited in dispatch order (``reverse=True`` for the INV
    variant). Every candidate move is evaluated with the deterministic
    simulator (conservative weights); a move is kept when it strictly
    improves the makespan and the simulated total cost respects ``budget``.
    """
    schedule.validate(wf)
    tracer = get_tracer()
    with tracer.span(
        "schedule.refine", workflow=wf.name, n_tasks=wf.n_tasks,
        budget=budget, reverse=reverse,
    ) as span:
        current = schedule
        base = evaluate_schedule(wf, platform, current)
        best_makespan = base.makespan
        initial_makespan = base.makespan
        n_evaluated = 0
        n_moves = 0

        visit = list(reversed(current.order)) if reverse else list(current.order)
        for round_idx, tid in enumerate(visit):
            current_vm = current.vm_of(tid)
            best_candidate: Optional[Schedule] = None
            best_vm: Optional[int] = None
            # Try every other used VM...
            for vm_id in current.used_vms:
                if vm_id == current_vm:
                    continue
                candidate = current.reassigned(
                    tid, vm_id, current.categories[vm_id]
                )
                n_evaluated += 1
                makespan = _accept(wf, platform, candidate, budget, best_makespan)
                if makespan is not None:
                    best_makespan = makespan
                    best_candidate = candidate
                    best_vm = vm_id
            # ... and a fresh VM of each category.
            fresh_id = current.fresh_vm_id()
            for category in platform.categories:
                candidate = current.reassigned(tid, fresh_id, category)
                n_evaluated += 1
                makespan = _accept(wf, platform, candidate, budget, best_makespan)
                if makespan is not None:
                    best_makespan = makespan
                    best_candidate = candidate
                    best_vm = fresh_id
            if best_candidate is not None:
                if tracer.enabled:
                    tracer.decide(
                        DecisionRecord(
                            kind="refine_move",
                            task=tid,
                            chosen_vm=best_vm,
                            category=best_candidate.categories[best_vm].name,
                            eft=best_makespan,
                            allowance=budget,
                            round=round_idx,
                            extra={
                                "from_vm": current_vm,
                                "makespan_before": initial_makespan,
                                "makespan_after": best_makespan,
                            },
                        )
                    )
                current = best_candidate
                n_moves += 1
        span.set(
            n_evaluations=n_evaluated, n_moves=n_moves,
            makespan_before=initial_makespan, makespan_after=best_makespan,
        )
    return current


def _accept(
    wf: Workflow,
    platform: CloudPlatform,
    candidate: Schedule,
    budget: float,
    best_makespan: float,
) -> Optional[float]:
    """Simulated makespan if the candidate improves within budget, else None."""
    result = evaluate_schedule(wf, platform, candidate)
    if (
        result.makespan < best_makespan - _GAIN_TOL
        and result.total_cost <= budget
    ):
        return result.makespan
    return None


class HeftBudgPlusScheduler(Scheduler):
    """HEFTBUDG followed by a forward re-mapping pass (HEFTBUDG+)."""

    name = "heft_budg_plus"
    _reverse = False

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run HEFTBUDG, then one Algorithm 5 re-mapping pass."""
        first = HeftBudgScheduler().schedule(wf, platform, budget)
        refined = refine_schedule(
            wf, platform, first.schedule, budget, reverse=self._reverse
        )
        final = evaluate_schedule(wf, platform, refined)
        return SchedulerResult(
            schedule=refined,
            planned_makespan=final.makespan,
            planned_vm_cost=final.cost.vm_rental,
            within_budget_plan=final.total_cost <= budget,
            algorithm=self.name,
            leftover_pot=max(budget - final.total_cost, 0.0)
            if budget != float("inf")
            else 0.0,
        )


class HeftBudgPlusInvScheduler(HeftBudgPlusScheduler):
    """HEFTBUDG followed by a reverse-order re-mapping pass (HEFTBUDG+INV)."""

    name = "heft_budg_plus_inv"
    _reverse = True
