"""BDT — Budget Distribution with Trickling (§V-D1, extended from [3]).

Three steps, as described by the paper:

1. group tasks into *levels* (independent subgroups, by longest-path depth);
2. distribute the budget with the **All in** strategy: the first task of the
   current level is tentatively granted the *whole* remaining budget; its
   leftover trickles to the next task of the level (and onward to the next
   level);
3. schedule level by level; within a level, tasks are sorted by increasing
   Earliest Start Time, and each picks the host maximizing the time-cost
   trade-off factor built from the two normalized terms::

       Time = (ECT_max − ECT) / (ECT_max − ECT_min)    # 1 = fastest host
       Cost = (subBudg − ct) / (subBudg − c_min)       # 1 = cheapest host

   where ``ECT_min/max`` span the candidate hosts and ``c_min`` is the
   cheapest candidate's cost.

Faithfulness notes: the HAL scan typesets TCTF ambiguously (it renders as a
fraction ``Time/Cost``). We combine the terms as the product ``Time ×
Cost``: the literal ratio degenerates — between two equally-fast hosts it
picks the *more expensive* one (smaller denominator), paying for nothing.
The product still reproduces every reported BDT behaviour, because the
eagerness comes from the **All-in** trickling: early tasks see the whole
remaining budget, so their Cost factors are all ≈ 1 and the Time term
dominates — BDT grabs fast VMs first, achieves small makespans when it
succeeds, and violates tight budgets (Figure 3's low validity row).
Candidates are restricted to those fitting the sub-budget when any exists;
otherwise the cheapest host is taken and the overrun surfaces in the
validity metric. BDT performs no datacenter/setup reservation, so its
nominal spending tracks the raw budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow
from .list_base import _MAX_LOGGED_CANDIDATES, Scheduler, SchedulerResult
from .planning import HostEvaluation, PlanningState

__all__ = ["BdtScheduler"]

_EPS = 1e-12


def _record_fill(
    tid: str,
    level: int,
    evaluations: List[HostEvaluation],
    costs: List[float],
    chosen: HostEvaluation,
    chosen_cost: float,
    allowance: float,
    affordable: bool,
) -> None:
    """Emit one All-in budget-fill decision record to the active tracer."""
    ranked = sorted(zip(evaluations, costs), key=lambda p: (p[0].eft, p[1]))
    candidates = [
        {
            "vm": ev.vm_id,
            "category": ev.category.name,
            "eft": ev.eft,
            "cost": ct,
            "affordable": ct <= allowance + _EPS,
        }
        for ev, ct in ranked[:_MAX_LOGGED_CANDIDATES]
    ]
    get_tracer().decide(
        DecisionRecord(
            kind="budget_fill",
            task=tid,
            chosen_vm=chosen.vm_id,
            category=chosen.category.name,
            eft=chosen.eft,
            cost=chosen_cost,
            allowance=allowance,
            remaining=allowance - chosen_cost,
            within_budget=affordable,
            round=level,
            n_candidates=len(evaluations),
            candidates=candidates,
        )
    )


class BdtScheduler(Scheduler):
    """Budget Distribution with Trickling, All-in strategy."""

    name = "bdt"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run BDT: level decomposition, All-in trickling, TCTF choice."""
        wf.freeze()
        state = PlanningState(wf, platform)
        position = {tid: i for i, tid in enumerate(wf.topological_order)}

        # Step 1: levels (independent subgroups).
        levels = wf.levels()
        by_level: Dict[int, List[str]] = {}
        for tid, lvl in levels.items():
            by_level.setdefault(lvl, []).append(tid)

        # BDT charges setup fees as it goes (no global reservation).
        sub_budget = budget
        all_within = True

        for lvl in sorted(by_level):
            # Step 3 ordering: increasing EST. With every predecessor already
            # scheduled, a task's EST is when its inputs reach the datacenter.
            ordered = sorted(
                by_level[lvl], key=lambda t: (state.earliest_start(t), position[t])
            )
            for tid in ordered:
                evaluations = state.evaluate_all(tid)
                costs = [self._full_cost(ev) for ev in evaluations]
                affordable = [
                    (ev, ct)
                    for ev, ct in zip(evaluations, costs)
                    if ct <= sub_budget + _EPS
                ]
                if affordable:
                    chosen, chosen_cost = self._pick_tctf(affordable, sub_budget)
                else:
                    all_within = False
                    idx = min(
                        range(len(evaluations)),
                        key=lambda i: (costs[i], evaluations[i].eft),
                    )
                    chosen, chosen_cost = evaluations[idx], costs[idx]
                if get_tracer().enabled:
                    _record_fill(
                        tid, lvl, evaluations, costs, chosen, chosen_cost,
                        sub_budget, bool(affordable),
                    )
                state.commit(chosen)
                sub_budget -= chosen_cost  # leftover trickles onward

        return SchedulerResult(
            schedule=state.to_schedule(),
            planned_makespan=state.makespan,
            planned_vm_cost=state.vm_rental_cost(),
            within_budget_plan=all_within and sub_budget >= -_EPS,
            algorithm=self.name,
            leftover_pot=max(sub_budget, 0.0) if budget != math.inf else 0.0,
        )

    @staticmethod
    def _full_cost(ev: HostEvaluation) -> float:
        """Incremental cost including the setup fee of a fresh VM."""
        return ev.cost + (ev.category.initial_cost if ev.is_new_vm else 0.0)

    @staticmethod
    def _pick_tctf(
        affordable: List[Tuple[HostEvaluation, float]], sub_budget: float
    ) -> Tuple[HostEvaluation, float]:
        """Maximize TCTF = Time factor × Cost factor over affordable hosts."""
        ects = [ev.eft for ev, _ in affordable]
        ect_min, ect_max = min(ects), max(ects)
        ect_span = ect_max - ect_min
        c_min = min(ct for _, ct in affordable)
        budget_span = sub_budget - c_min

        best: Tuple[HostEvaluation, float] = affordable[0]
        best_tctf = -math.inf
        for ev, ct in affordable:
            time_factor = (
                (ect_max - ev.eft) / ect_span if ect_span > _EPS else 1.0
            )
            cost_factor = (
                (sub_budget - ct) / budget_span if budget_span > _EPS else 1.0
            )
            tctf = time_factor * cost_factor
            # Deterministic tie-breaks: better TCTF, then faster, then cheaper.
            if tctf > best_tctf + _EPS or (
                abs(tctf - best_tctf) <= _EPS and (ev.eft, ct) < (best[0].eft, best[1])
            ):
                best_tctf = tctf
                best = (ev, ct)
        return best
