"""Budget-constrained host selection (Algorithm 2) and the scheduler API.

``get_best_host`` is the paper's ``getBestHost(T, P, B_T + pot)``: among the
used VMs plus one fresh VM per category, pick the host with the smallest EFT
among those whose incremental cost fits the task's allotted budget; any
leftover goes back into the shared ``pot``. When *no* host fits, the
cheapest host is selected (the schedule must exist; the overrun then shows
up in the validity metric, exactly as the paper's near-minimum-budget
experiments do).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

from ..errors import SchedulingError
from ..obs.tracing import DecisionRecord, get_tracer
from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow
from .planning import HostEvaluation, PlanningState
from .schedule import Schedule

__all__ = ["get_best_host", "Scheduler", "SchedulerResult"]

#: Absolute dollar slack for budget comparisons (float hygiene).
_BUDGET_TOL = 1e-9

#: Candidate evaluations kept per decision record (full count still logged).
_MAX_LOGGED_CANDIDATES = 12


def _record_selection(
    tid: str,
    evaluations: list,
    chosen: HostEvaluation,
    allowance: float,
    within: bool,
) -> None:
    """Emit one host-selection decision record to the active tracer."""
    ranked = sorted(evaluations, key=lambda ev: (ev.eft, ev.cost))
    candidates = [
        {
            "vm": ev.vm_id,
            "category": ev.category.name,
            "eft": ev.eft,
            "cost": ev.cost,
            "affordable": ev.cost <= allowance + _BUDGET_TOL,
        }
        for ev in ranked[:_MAX_LOGGED_CANDIDATES]
    ]
    get_tracer().decide(
        DecisionRecord(
            kind="host_selection",
            task=tid,
            chosen_vm=chosen.vm_id,
            category=chosen.category.name,
            eft=chosen.eft,
            cost=chosen.cost,
            allowance=allowance,
            remaining=allowance - chosen.cost,
            within_budget=within,
            n_candidates=len(evaluations),
            candidates=candidates,
        )
    )


def get_best_host(
    state: PlanningState,
    tid: str,
    allowance: float,
) -> Tuple[HostEvaluation, bool]:
    """Algorithm 2: best host for ``tid`` under ``allowance`` dollars.

    Returns ``(evaluation, within_budget)``. Ties on EFT break toward the
    cheaper host, then toward reusing the lowest-numbered VM (deterministic).
    """
    evaluations = state.evaluate_all(tid)
    if not evaluations:
        raise SchedulingError(f"no candidate hosts for task {tid!r}")

    def sort_key(ev: HostEvaluation) -> Tuple[float, float, float]:
        vm_rank = float(ev.vm_id) if ev.vm_id is not None else math.inf
        return (ev.eft, ev.cost, vm_rank)

    affordable = [ev for ev in evaluations if ev.cost <= allowance + _BUDGET_TOL]
    if affordable:
        chosen, within = min(affordable, key=sort_key), True
    else:
        # Nothing fits: fall back to the cheapest option (EFT breaks ties).
        chosen, within = min(evaluations, key=lambda ev: (ev.cost, ev.eft)), False
    if get_tracer().enabled:
        _record_selection(tid, evaluations, chosen, allowance, within)
    return chosen, within


@dataclass
class SchedulerResult:
    """A schedule plus the planner's own estimates and diagnostics.

    ``planned_makespan`` / ``planned_vm_cost`` come from the conservative
    planning model; the authoritative numbers are produced by the simulator.
    ``within_budget_plan`` records whether every task fitted its allotted
    share during planning (BDT-style algorithms may overrun by design).
    """

    schedule: Schedule
    planned_makespan: float
    planned_vm_cost: float
    within_budget_plan: bool
    algorithm: str
    leftover_pot: float = 0.0


class Scheduler(ABC):
    """Common interface of all algorithms in §IV and §V-D.

    Concrete schedulers are stateless; :meth:`schedule` may be called with
    any workflow/platform/budget combination.
    """

    #: Registry/display name, overridden by subclasses.
    name: str = "abstract"

    @abstractmethod
    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Produce a full schedule of ``wf`` under ``budget`` dollars."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
