"""Contingency-reserve planning: withhold budget for fault recovery.

A :class:`ContingencyScheduler` wraps any base algorithm and plans under
``budget × (1 − reserve)``, leaving the withheld fraction untouched as a
*contingency reserve*. The reserve is never spent by the plan itself — it
sits between the planned cost and the declared budget, where the
execute → detect → recover loop (:func:`repro.faults.run_with_faults`)
finds it: recovery projections are gated against the *full* declared
budget, so every reserved dollar is headroom for re-executing preempted or
crashed work.

The withholding is uniform — the planning budget shrinks by the same
factor for every task share (the uniform spare-budget split that Gao &
Wu's reserve study found competitive with weighted schemes, arXiv
1903.01154) — which keeps the wrapper algorithm-agnostic: the base
scheduler never learns a reserve exists, it just plans against a smaller
number.

The trade is explicit: a larger reserve buys a higher survival rate under
churny spot markets at the price of a cheaper (slower) base plan. The spot
resilience sweep (:mod:`repro.experiments.resilience`) maps that frontier.
"""

from __future__ import annotations

from typing import Union

from ..errors import SchedulingError
from ..platform.cloud import CloudPlatform
from ..workflow.dag import Workflow
from .list_base import Scheduler, SchedulerResult

__all__ = ["ContingencyScheduler", "RESERVE_SEPARATOR"]

#: Registry spelling of a reserved algorithm: ``heft_budg+res0.2``.
RESERVE_SEPARATOR = "+res"


class ContingencyScheduler(Scheduler):
    """Plan with ``base`` under ``budget × (1 − reserve)``.

    ``base`` is a :class:`~repro.scheduling.list_base.Scheduler` instance;
    ``reserve`` is the withheld budget fraction in ``[0, 1)``. The result
    reports the *reserved* dollars inside ``leftover_pot`` (on top of
    whatever pot the base plan left), so budget-projection consumers see
    exactly how much slack the plan carries.
    """

    def __init__(self, base: Scheduler, reserve: float = 0.1) -> None:
        if not 0.0 <= reserve < 1.0:
            raise SchedulingError(
                f"contingency reserve must be in [0, 1), got {reserve}"
            )
        self.base = base
        self.reserve = float(reserve)
        self.name = f"{base.name}{RESERVE_SEPARATOR}{self.reserve:g}"

    def schedule(
        self, wf: Workflow, platform: CloudPlatform, budget: float
    ) -> SchedulerResult:
        """Run the base algorithm against the reduced planning budget."""
        withheld = budget * self.reserve
        result = self.base.schedule(wf, platform, budget - withheld)
        return SchedulerResult(
            schedule=result.schedule,
            planned_makespan=result.planned_makespan,
            planned_vm_cost=result.planned_vm_cost,
            within_budget_plan=result.within_budget_plan,
            algorithm=self.name,
            leftover_pot=result.leftover_pot + withheld,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContingencyScheduler(base={self.base!r}, "
            f"reserve={self.reserve:g})"
        )


def parse_reserved(name: str) -> Union[ContingencyScheduler, None]:
    """Build a reserved scheduler from a ``base+resF`` registry spelling.

    Returns ``None`` when ``name`` carries no reserve suffix (the caller
    falls through to the plain registry lookup). Raises on a malformed
    fraction so typos fail loudly instead of silently planning full-budget.
    """
    if RESERVE_SEPARATOR not in name:
        return None
    base_name, _, frac = name.rpartition(RESERVE_SEPARATOR)
    from .registry import make_scheduler  # local: registry imports us too

    try:
        reserve = float(frac)
    except ValueError:
        raise SchedulingError(
            f"malformed contingency reserve in {name!r}: "
            f"{frac!r} is not a number"
        ) from None
    return ContingencyScheduler(make_scheduler(base_name), reserve)
