"""Schedule representation.

A schedule fixes, for every task, *which VM* runs it, and a single global
dispatch order (a linear extension of the DAG). The per-VM execution order
is the one induced by the global order — exactly how the paper's refinement
variants keep ``ListT`` fixed while re-mapping tasks (Algorithm 5).

VMs are identified by small integers; ``categories`` maps each enrolled VM
to its :class:`~repro.platform.vm.VMCategory`. A VM with no assigned task is
implicitly dropped (``update(UsedVM)`` in Algorithm 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..errors import ScheduleValidationError
from ..platform.vm import VMCategory
from ..workflow.dag import Workflow

__all__ = ["Schedule"]


@dataclass
class Schedule:
    """Mapping of tasks to VMs plus the global dispatch order.

    Parameters
    ----------
    order:
        All task ids in dispatch (priority) order; must be a linear
        extension of the workflow DAG.
    assignment:
        ``task id → vm id``.
    categories:
        ``vm id → category`` for every VM referenced by ``assignment``.
    """

    order: List[str]
    assignment: Dict[str, int]
    categories: Dict[int, VMCategory]

    # ------------------------------------------------------------------
    def vm_of(self, tid: str) -> int:
        """The VM id hosting task ``tid``."""
        return self.assignment[tid]

    def category_of(self, tid: str) -> VMCategory:
        """The VM category hosting task ``tid``."""
        return self.categories[self.assignment[tid]]

    @property
    def used_vms(self) -> List[int]:
        """Ids of VMs hosting at least one task, ascending."""
        return sorted(set(self.assignment.values()))

    @property
    def n_vms(self) -> int:
        """Number of enrolled (non-empty) VMs."""
        return len(set(self.assignment.values()))

    def tasks_on(self, vm_id: int) -> List[str]:
        """Tasks assigned to ``vm_id`` in execution order."""
        return [tid for tid in self.order if self.assignment.get(tid) == vm_id]

    def queues(self) -> Dict[int, List[str]]:
        """Per-VM execution queues induced by the global order."""
        out: Dict[int, List[str]] = {vm: [] for vm in set(self.assignment.values())}
        for tid in self.order:
            out[self.assignment[tid]].append(tid)
        return out

    # ------------------------------------------------------------------
    def reassigned(self, tid: str, vm_id: int, category: VMCategory) -> "Schedule":
        """Copy of this schedule with ``tid`` moved to ``vm_id``.

        ``category`` must agree with the existing category of ``vm_id`` when
        that VM already exists; a fresh ``vm_id`` enrolls a new VM. VMs left
        empty by the move are pruned.
        """
        if tid not in self.assignment:
            raise ScheduleValidationError(f"task {tid!r} is not in this schedule")
        existing = self.categories.get(vm_id)
        if existing is not None and existing != category:
            raise ScheduleValidationError(
                f"vm {vm_id} is a {existing.name}, cannot treat it as {category.name}"
            )
        assignment = dict(self.assignment)
        assignment[tid] = vm_id
        categories = dict(self.categories)
        categories[vm_id] = category
        live = set(assignment.values())
        categories = {vm: cat for vm, cat in categories.items() if vm in live}
        return Schedule(order=list(self.order), assignment=assignment,
                        categories=categories)

    def fresh_vm_id(self) -> int:
        """An id not yet used by any VM of this schedule."""
        return max(self.categories, default=-1) + 1

    # ------------------------------------------------------------------
    def validate(self, wf: Workflow) -> None:
        """Check structural soundness against ``wf``.

        Raises :class:`ScheduleValidationError` when: a task is missing or
        unknown; a referenced VM has no category; or the global order is not
        a linear extension of the DAG (which would deadlock per-VM queues).
        """
        order_set = set(self.order)
        if len(self.order) != len(order_set):
            raise ScheduleValidationError("dispatch order contains duplicates")
        wf_tasks = set(wf.tasks)
        if order_set != wf_tasks:
            missing = wf_tasks - order_set
            extra = order_set - wf_tasks
            raise ScheduleValidationError(
                f"order/task mismatch: missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        if set(self.assignment) != wf_tasks:
            missing = wf_tasks - set(self.assignment)
            raise ScheduleValidationError(
                f"unassigned tasks: {sorted(missing)[:5]}"
            )
        for tid, vm in self.assignment.items():
            if vm not in self.categories:
                raise ScheduleValidationError(
                    f"task {tid!r} on vm {vm} which has no category"
                )
        position = {tid: i for i, tid in enumerate(self.order)}
        for edge in wf.edges():
            if position[edge.producer] > position[edge.consumer]:
                raise ScheduleValidationError(
                    f"order violates dependency {edge.producer!r} -> "
                    f"{edge.consumer!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(tasks={len(self.order)}, vms={self.n_vms})"
