"""Scheduling algorithms: the paper's contribution and its competitors."""

from .bdt import BdtScheduler
from .budget import BudgetPlan, datacenter_reservation, divide_budget
from .cg import CgPlusScheduler, CgScheduler, critical_tasks_of
from .contingency import ContingencyScheduler
from .ensemble import (
    AdmittedWorkflow,
    EnsembleMember,
    EnsembleResult,
    schedule_ensemble,
)
from .heft import HeftBudgScheduler, HeftScheduler
from .idle_split import IdleSplitResult, split_idle_gaps
from .list_base import Scheduler, SchedulerResult, get_best_host
from .minmin import MinMinBudgScheduler, MinMinScheduler
from .online import OnlineHeftBudg, OnlineRunResult
from .planning import HostEvaluation, PlannedVM, PlanningState
from .ready_set import (
    MaxMinBudgScheduler,
    MaxMinScheduler,
    SufferageBudgScheduler,
    SufferageScheduler,
)
from .refine import (
    HeftBudgPlusInvScheduler,
    HeftBudgPlusScheduler,
    refine_schedule,
)
from .registry import SCHEDULERS, available_schedulers, make_scheduler
from .schedule import Schedule

__all__ = [
    "BdtScheduler",
    "AdmittedWorkflow",
    "BudgetPlan",
    "CgPlusScheduler",
    "CgScheduler",
    "ContingencyScheduler",
    "EnsembleMember",
    "EnsembleResult",
    "HeftBudgPlusInvScheduler",
    "HeftBudgPlusScheduler",
    "HeftBudgScheduler",
    "HeftScheduler",
    "HostEvaluation",
    "IdleSplitResult",
    "MaxMinBudgScheduler",
    "MaxMinScheduler",
    "MinMinBudgScheduler",
    "MinMinScheduler",
    "SufferageBudgScheduler",
    "SufferageScheduler",
    "OnlineHeftBudg",
    "OnlineRunResult",
    "PlannedVM",
    "PlanningState",
    "SCHEDULERS",
    "Schedule",
    "Scheduler",
    "SchedulerResult",
    "available_schedulers",
    "critical_tasks_of",
    "datacenter_reservation",
    "divide_budget",
    "get_best_host",
    "make_scheduler",
    "refine_schedule",
    "schedule_ensemble",
    "split_idle_gaps",
]
