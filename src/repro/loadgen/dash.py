"""Live ANSI terminal dashboard over a running scheduling service.

``repro-exp dash`` polls ``/v1/metrics`` + ``/v1/slo`` + ``/v1/healthz``
(or the same snapshots of an in-process
:class:`~repro.service.engine.SchedulingService`) once per interval and
redraws one full-screen frame: rolling throughput with a sparkline,
queue depth per priority class, tenant budget fill, worker heartbeats,
SLO burn rates and schedule-latency percentiles, plus a ticker of the
most recent bus events (subscribed over SSE for URL targets, directly
on the event bus in process).

Rendering is a pure function — :func:`render` maps a
:class:`DashState` to a string, which is what the tests exercise and
what ``--no-ansi`` CI smokes print — while :class:`Dashboard` owns the
poll/redraw loop and the (optional, tty-only) ``q`` / ``p``
keybindings. No curses: frames are plain text with ANSI colour and a
home-and-clear prefix, so the dashboard works over ssh and inside CI
logs alike.
"""

from __future__ import annotations

import json
import select
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

__all__ = ["DashState", "Dashboard", "render", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RED = "\x1b[31m"
_CLEAR = "\x1b[H\x1b[2J"


def sparkline(values: List[float], width: int = 32) -> str:
    """Unicode block sparkline of the last ``width`` samples."""
    tail = [float(v) for v in values[-width:]]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    span = high - low
    if span <= 0:
        return _BLOCKS[0] * len(tail)
    steps = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[int(round((v - low) / span * steps))] for v in tail
    )


def _fmt_rate(value: float) -> str:
    return f"{value:,.1f}" if value < 1000 else f"{value:,.0f}"


def _fmt_ms(seconds: Any) -> str:
    try:
        return f"{float(seconds) * 1e3:.2f}ms"
    except (TypeError, ValueError):
        return "—"


def _fill_bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "█" * filled + "░" * (width - filled)


class DashState:
    """Rolling history the renderer reads; updated once per poll.

    Throughput is derived from the ``requests`` counter delta between
    polls, so it tracks whatever the service actually absorbed —
    including cache hits — not just completed evaluations.
    """

    def __init__(self, history: int = 64) -> None:
        self.throughput: Deque[float] = deque(maxlen=history)
        self.queue_depth: Deque[float] = deque(maxlen=history)
        self.p95_latency: Deque[float] = deque(maxlen=history)
        self.events: Deque[str] = deque(maxlen=8)
        self.health: Dict[str, Any] = {}
        self.stats: Dict[str, Any] = {}
        self.slo: Dict[str, Any] = {}
        self.frame = 0
        self.paused = False
        self.error: Optional[str] = None
        self._last_requests: Optional[float] = None
        self._last_poll: Optional[float] = None

    def update(
        self,
        health: Mapping[str, Any],
        stats: Mapping[str, Any],
        slo: Mapping[str, Any],
        *,
        now: Optional[float] = None,
    ) -> None:
        """Fold one poll's snapshots into the rolling history."""
        now = time.monotonic() if now is None else now
        self.health = dict(health)
        self.stats = dict(stats)
        self.slo = dict(slo)
        self.error = None
        self.frame += 1

        counters = (stats.get("metrics") or {}).get("counters") or {}
        requests = float(counters.get("requests", 0))
        if self._last_requests is not None and self._last_poll is not None:
            dt = max(now - self._last_poll, 1e-9)
            self.throughput.append(
                max(requests - self._last_requests, 0.0) / dt
            )
        self._last_requests = requests
        self._last_poll = now

        queue = (stats.get("admission") or {}).get("queue") or {}
        self.queue_depth.append(float(queue.get("depth", 0)))
        series = (stats.get("metrics") or {}).get("series") or {}
        latency = series.get("schedule_latency_s") or {}
        if "window_p95" in latency:
            self.p95_latency.append(float(latency["window_p95"]))


def _status_colour(health: Mapping[str, Any], ansi: bool) -> Tuple[str, str]:
    status = str(health.get("status", "unknown"))
    if not ansi:
        return status.upper(), ""
    colour = _GREEN if health.get("ready") else _RED
    return f"{colour}{_BOLD}{status.upper()}{_RESET}", colour


def render(state: DashState, *, width: int = 100, ansi: bool = True) -> str:
    """One dashboard frame as a string (pure; no I/O, no ANSI clears)."""
    dim = _DIM if ansi else ""
    bold = _BOLD if ansi else ""
    reset = _RESET if ansi else ""
    lines: List[str] = []

    health = state.health
    stats = state.stats
    status, _ = _status_colour(health, ansi)
    uptime = float(health.get("uptime_s", stats.get("uptime_s", 0.0)) or 0.0)
    executor = stats.get("executor") or "—"
    lines.append(
        f"{bold}repro load observatory{reset}  {status}  "
        f"{dim}executor={executor}  uptime={uptime:,.0f}s  "
        f"frame={state.frame}"
        f"{'  [PAUSED]' if state.paused else ''}{reset}"
    )
    if state.error:
        mark = f"{_RED}{_BOLD}" if ansi else ""
        lines.append(f"{mark}poll error: {state.error}{reset}")
    lines.append("─" * min(width, 100))

    # Throughput + queue sparklines.
    rps = state.throughput[-1] if state.throughput else 0.0
    lines.append(
        f"throughput  {sparkline(list(state.throughput)):<32} "
        f"{_fmt_rate(rps):>9} req/s"
    )
    depth = state.queue_depth[-1] if state.queue_depth else 0.0
    lines.append(
        f"queue depth {sparkline(list(state.queue_depth)):<32} "
        f"{depth:>9,.0f} queued"
    )
    p95 = state.p95_latency[-1] if state.p95_latency else None
    lines.append(
        f"sched p95   {sparkline(list(state.p95_latency)):<32} "
        f"{_fmt_ms(p95):>11}"
    )

    # Queue depth per priority class + in-flight.
    queue = (stats.get("admission") or {}).get("queue") or {}
    by_priority = queue.get("by_priority") or {}
    jobs = stats.get("jobs") or {}
    parts = [f"{cls}={by_priority[cls]}" for cls in sorted(by_priority)]
    lines.append(
        f"classes     {' '.join(parts) if parts else dim + '(queue empty)' + reset}"
        f"   inflight={health.get('inflight_jobs', jobs.get('running', 0))}"
        f"  running={jobs.get('running', 0)} pending={jobs.get('pending', 0)}"
        f" done={jobs.get('done', 0)} failed={jobs.get('failed', 0)}"
    )

    # Tenant budget fill.
    tenants = ((stats.get("admission") or {}).get("tenants") or {})
    entries = tenants.get("tenants") or {}
    if entries:
        lines.append(f"{bold}tenants{reset}")
        for name in sorted(entries):
            entry = entries[name] or {}
            policy = entry.get("policy") or {}
            budget = policy.get("cost_budget")
            spent = float(entry.get("spent_window", 0.0) or 0.0)
            reserved = float(entry.get("reserved", 0.0) or 0.0)
            if budget:
                frac = (spent + reserved) / float(budget)
                bar = _fill_bar(frac)
                if ansi:
                    colour = (_RED if frac >= 0.9
                              else _YELLOW if frac >= 0.7 else _GREEN)
                    bar = f"{colour}{bar}{reset}"
                detail = (f"{bar} {spent + reserved:.2f}/"
                          f"{float(budget):.2f} ({frac:.0%})")
            else:
                detail = f"{dim}no budget cap{reset}  spent={spent:.2f}"
            lines.append(
                f"  {name:<16} {detail}  admitted={entry.get('admitted', 0)}"
                f" rejected={sum((entry.get('rejected') or {}).values())}"
            )

    # Worker heartbeats.
    workers = stats.get("workers")
    if workers:
        beat = health.get("worker_heartbeat_age_s")
        beat_txt = f"{beat:.1f}s ago" if isinstance(beat, (int, float)) else "—"
        lines.append(
            f"{bold}workers{reset} ({len(workers)} alive, "
            f"oldest heartbeat {beat_txt})"
        )
        for pid in sorted(workers)[:8]:
            info = workers[pid] or {}
            lines.append(
                f"  pid {pid:<8} tasks={info.get('tasks', 0):<6}"
                f" busy={float(info.get('busy_s', 0.0)):.1f}s"
            )

    # SLO burn rates.
    targets = (state.slo or {}).get("targets") or []
    if targets:
        lines.append(f"{bold}slo burn rates{reset}")
        for target in targets:
            cells = []
            for label, window in (target.get("windows") or {}).items():
                burn = float(window.get("burn_rate", 0.0))
                cell = f"{label}={burn:.2f}"
                if ansi and (burn > 1.0 or window.get("budget_exhausted")):
                    cell = f"{_RED}{cell}{_RESET}"
                cells.append(cell)
            lines.append(
                f"  {target.get('name', '?'):<18} {' '.join(cells)}"
            )

    # Event ticker.
    if state.events:
        lines.append(f"{bold}events{reset}  " + " · ".join(state.events))

    lines.append("─" * min(width, 100))
    lines.append(
        f"{dim}q quit · p pause · refresh {state.frame}{reset}"
    )
    return "\n".join(lines) + "\n"


class Dashboard:
    """Poll-and-redraw loop around :func:`render`.

    ``target`` is a gateway base URL or a live
    :class:`~repro.service.engine.SchedulingService`. ``iterations``
    bounds the loop for CI smokes (``None`` runs until ``q`` /
    interrupt). Keyboard handling only engages when stdin is a tty.
    """

    def __init__(
        self,
        target: Any,
        *,
        interval_s: float = 1.0,
        ansi: bool = True,
        history: int = 64,
    ) -> None:
        self.interval_s = max(0.05, float(interval_s))
        self.ansi = bool(ansi)
        self.state = DashState(history=history)
        self._url: Optional[str] = None
        self._service = None
        if isinstance(target, str):
            self._url = target.rstrip("/")
        else:
            self._service = target
        self._stop = threading.Event()
        self._events_thread: Optional[threading.Thread] = None

    # -- collection ----------------------------------------------------
    def _get_json(self, path: str) -> Dict[str, Any]:
        assert self._url is not None
        try:
            with urllib.request.urlopen(
                f"{self._url}{path}", timeout=5.0
            ) as resp:
                return json.load(resp)
        except urllib.error.HTTPError as exc:
            # healthz answers 503 with the same JSON body while draining.
            try:
                return json.load(exc)
            except Exception:
                raise exc

    def poll(self) -> None:
        """One collection cycle; errors land in ``state.error``."""
        try:
            if self._service is not None:
                health = self._service.health()
                stats = self._service.stats()
                slo = self._service.slo.snapshot()
            else:
                health = self._get_json("/v1/healthz")
                stats = self._get_json("/v1/metrics")
                slo = self._get_json("/v1/slo")
        except Exception as exc:  # noqa: BLE001 - dashboard must not die
            self.state.error = str(exc)
            self.state.frame += 1
            return
        self.state.update(health, stats, slo)

    # -- event ticker --------------------------------------------------
    def _watch_events_inproc(self) -> None:
        assert self._service is not None
        with self._service.events.subscribe() as sub:
            while not self._stop.is_set():
                event = sub.get(timeout=0.5)
                if event is not None:
                    self.state.events.append(event.type)

    def _watch_events_http(self) -> None:
        assert self._url is not None
        while not self._stop.is_set():
            try:
                request = urllib.request.Request(
                    f"{self._url}/v1/events?timeout=10"
                )
                with urllib.request.urlopen(request, timeout=15.0) as resp:
                    for raw in resp:
                        if self._stop.is_set():
                            return
                        line = raw.decode("utf-8", "replace").strip()
                        if line.startswith("event:"):
                            self.state.events.append(
                                line.split(":", 1)[1].strip()
                            )
            except Exception:
                if self._stop.wait(1.0):
                    return

    def start_event_ticker(self) -> None:
        """Start the SSE / bus subscription thread (idempotent)."""
        if self._events_thread is not None:
            return
        worker = (self._watch_events_inproc if self._service is not None
                  else self._watch_events_http)
        self._events_thread = threading.Thread(
            target=worker, name="dash-events", daemon=True
        )
        self._events_thread.start()

    # -- keyboard ------------------------------------------------------
    def _read_key(self, timeout_s: float) -> Optional[str]:
        if not sys.stdin.isatty():
            self._stop.wait(timeout_s)
            return None
        ready, _, _ = select.select([sys.stdin], [], [], timeout_s)
        if ready:
            return sys.stdin.read(1)
        return None

    # -- main loop -----------------------------------------------------
    def run(
        self,
        *,
        iterations: Optional[int] = None,
        stream: Any = None,
        events: bool = True,
    ) -> int:
        """Redraw until ``iterations`` frames, ``q``, or Ctrl-C.

        Returns the number of frames drawn. ``stream`` defaults to
        stdout; pass any writable for tests.
        """
        out = stream if stream is not None else sys.stdout
        if events:
            self.start_event_ticker()
        raw_context = _RawTerminal() if sys.stdin.isatty() else None
        frames = 0
        try:
            if raw_context:
                raw_context.__enter__()
            while not self._stop.is_set():
                if not self.state.paused:
                    self.poll()
                frame = render(self.state, ansi=self.ansi)
                try:
                    if self.ansi:
                        out.write(_CLEAR)
                    out.write(frame)
                    out.flush()
                except (BrokenPipeError, ValueError):
                    # Downstream pipe closed (e.g. `dash | head`) —
                    # stop drawing instead of crashing mid-frame.
                    break
                frames += 1
                if iterations is not None and frames >= iterations:
                    break
                key = self._read_key(self.interval_s)
                if key in ("q", "Q", "\x03"):
                    break
                if key in ("p", "P"):
                    self.state.paused = not self.state.paused
        except KeyboardInterrupt:
            pass
        finally:
            if raw_context:
                raw_context.__exit__(None, None, None)
            self._stop.set()
            if self._events_thread is not None:
                self._events_thread.join(timeout=2.0)
        return frames


class _RawTerminal:
    """cbreak-mode guard so single keypresses arrive unbuffered.

    Degrades to a no-op when :mod:`termios` is unavailable (non-POSIX)
    or stdin is not a real terminal.
    """

    def __init__(self) -> None:
        self._saved: Optional[Any] = None
        self._fd: Optional[int] = None

    def __enter__(self) -> "_RawTerminal":
        try:
            import termios
            import tty

            self._fd = sys.stdin.fileno()
            self._saved = termios.tcgetattr(self._fd)
            tty.setcbreak(self._fd)
        except Exception:
            self._saved = None
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._saved is not None and self._fd is not None:
            import termios

            termios.tcsetattr(self._fd, termios.TCSADRAIN, self._saved)
