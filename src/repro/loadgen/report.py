"""Self-contained HTML reports comparing archived load runs.

:func:`render_load_report` turns a set of ledger
:class:`~repro.obs.ledger.LoadRunRow`\\ s into one standalone HTML
document — inline CSS, no scripts, no external assets — so a CI
artifact or an emailed file renders anywhere. Rows are grouped by
:meth:`~repro.obs.ledger.LoadRunRow.group_key` (label, else config
fingerprint), which is how runs of the same workload across different
algorithms / executors / commits line up for comparison.

The tables surface exactly what the load gate asserts on: offered vs
achieved rate, end-to-end p50/p95/p99, the per-stage latency
decomposition, typed refusal counts and total cost. Relative bars are
scaled against the best value in the document so regressions are
visible at a glance without reading numbers.

Everything is stdlib: :mod:`html` for escaping, string formatting for
templating.
"""

from __future__ import annotations

import html
from typing import Any, Dict, Iterable, List, Sequence

from ..obs.ledger import LoadRunRow

__all__ = ["render_load_report", "write_load_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1c2733; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: 0.75rem 0;
        font-size: 0.85rem; }
th, td { border: 1px solid #d4dbe2; padding: 0.3rem 0.55rem;
         text-align: right; white-space: nowrap; }
th { background: #eef2f6; } td.name, th.name { text-align: left; }
td.bar { position: relative; min-width: 8rem; }
td.bar span.fill { position: absolute; left: 0; top: 0; bottom: 0;
                   background: #b3d4f0; z-index: 0; }
td.bar span.txt { position: relative; z-index: 1; }
.bad { color: #a41623; font-weight: 600; }
.muted { color: #6b7a89; }
footer { margin-top: 2.5rem; font-size: 0.75rem; color: #6b7a89; }
code { background: #eef2f6; padding: 0 0.2rem; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any, digits: int = 4) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return _esc(value)
    if number == int(number) and abs(number) < 1e12:
        return str(int(number))
    return f"{number:.{digits}g}"


def _ms(seconds: Any) -> str:
    """Latency cell: seconds rendered as milliseconds."""
    try:
        return f"{float(seconds) * 1e3:.2f}"
    except (TypeError, ValueError):
        return "—"


def _bar(value: float, best: float, text: str) -> str:
    """A table cell with a relative background bar behind its text."""
    width = 0.0 if best <= 0 else max(0.0, min(1.0, value / best)) * 100.0
    return (f'<td class="bar"><span class="fill" '
            f'style="width:{width:.1f}%"></span>'
            f'<span class="txt">{_esc(text)}</span></td>')


def _summary_table(rows: Sequence[LoadRunRow]) -> List[str]:
    best_rps = max((r.achieved_rps for r in rows), default=0.0)
    out = ['<table><tr>'
           '<th class="name">run</th><th class="name">process</th>'
           '<th class="name">executor</th><th>requests</th><th>ok</th>'
           '<th>cached</th><th>rejected</th><th>errors</th>'
           '<th>offered r/s</th><th>achieved r/s</th>'
           '<th>p50 ms</th><th>p95 ms</th><th>p99 ms</th>'
           '<th>cost</th></tr>']
    for row in rows:
        errors = (f'<td class="bad">{row.n_errors}</td>'
                  if row.n_errors else f"<td>{row.n_errors}</td>")
        name = row.label or row.config_fingerprint[:12]
        out.append(
            "<tr>"
            f'<td class="name">{_esc(name)} '
            f'<span class="muted">#{row.load_id}</span></td>'
            f'<td class="name">{_esc(row.process)}</td>'
            f'<td class="name">{_esc(row.executor or "—")}</td>'
            f"<td>{row.n_requests}</td><td>{row.n_ok}</td>"
            f"<td>{row.n_cached}</td><td>{row.n_rejected}</td>{errors}"
            f"<td>{_fmt(row.offered_rps)}</td>"
            f"{_bar(row.achieved_rps, best_rps, _fmt(row.achieved_rps))}"
            f"<td>{_ms(row.p50_s)}</td><td>{_ms(row.p95_s)}</td>"
            f"<td>{_ms(row.p99_s)}</td>"
            f"<td>{_fmt(row.cost_total, 6)}</td></tr>"
        )
    out.append("</table>")
    return out


def _stage_table(rows: Sequence[LoadRunRow]) -> List[str]:
    stages: List[str] = []
    for row in rows:
        for stage in row.stages:
            if stage not in stages:
                stages.append(stage)
    if not stages:
        return ["<p class=\"muted\">No stage decomposition recorded.</p>"]
    out = ['<table><tr><th class="name">run</th>']
    for stage in stages:
        out.append(f'<th colspan="3">{_esc(stage)} (ms)</th>')
    out.append("</tr><tr><th></th>")
    out.append("<th>p50</th><th>p95</th><th>p99</th>" * len(stages))
    out.append("</tr>")
    for row in rows:
        name = row.label or row.config_fingerprint[:12]
        cells = [f'<tr><td class="name">{_esc(name)} '
                 f'<span class="muted">#{row.load_id}</span></td>']
        for stage in stages:
            pcts: Dict[str, Any] = row.stages.get(stage) or {}
            for key in ("p50", "p95", "p99"):
                cells.append(f"<td>{_ms(pcts.get(key))}</td>"
                             if key in pcts else '<td class="muted">—</td>')
        cells.append("</tr>")
        out.append("".join(cells))
    out.append("</table>")
    return out


def _refusal_table(rows: Sequence[LoadRunRow]) -> List[str]:
    reasons: List[str] = []
    for row in rows:
        for reason in row.refusals:
            if reason not in reasons:
                reasons.append(reason)
    if not reasons:
        return ['<p class="muted">No refusals in any run.</p>']
    out = ['<table><tr><th class="name">run</th>']
    out.extend(f"<th>{_esc(r)}</th>" for r in reasons)
    out.append("</tr>")
    for row in rows:
        name = row.label or row.config_fingerprint[:12]
        out.append(f'<tr><td class="name">{_esc(name)} '
                   f'<span class="muted">#{row.load_id}</span></td>')
        out.extend(f"<td>{row.refusals.get(r, 0)}</td>" for r in reasons)
        out.append("</tr>")
    out.append("</table>")
    return out


def render_load_report(
    rows: Iterable[LoadRunRow],
    *,
    title: str = "Load observatory report",
) -> str:
    """One standalone HTML document over ``rows``.

    Rows are grouped by :meth:`LoadRunRow.group_key`; each group gets a
    summary table (throughput, tail latency, outcome counts with a
    relative achieved-rate bar), a per-stage percentile table and a
    typed-refusal table. Runs inside a group keep their ledger order.
    """
    ordered = list(rows)
    groups: Dict[str, List[LoadRunRow]] = {}
    for row in ordered:
        groups.setdefault(row.group_key(), []).append(row)

    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="muted">{len(ordered)} run(s) in {len(groups)} '
        "group(s); latency columns are milliseconds; bars are relative "
        "to the best achieved rate in each group.</p>",
    ]
    if not ordered:
        parts.append('<p class="muted">No load runs matched.</p>')
    for key, group_rows in groups.items():
        parts.append(f"<h2>Group <code>{_esc(key)}</code></h2>")
        first = group_rows[0]
        parts.append(
            f'<p class="muted">config <code>'
            f"{_esc(first.config_fingerprint[:16])}</code> · sequence "
            f"<code>{_esc(first.sequence_fingerprint[:16])}</code> · "
            f"target <code>{_esc(first.target or 'in-process')}</code>"
            "</p>"
        )
        parts.extend(_summary_table(group_rows))
        parts.append("<h3>Stage latency decomposition</h3>")
        parts.extend(_stage_table(group_rows))
        parts.append("<h3>Typed refusals</h3>")
        parts.extend(_refusal_table(group_rows))
    parts.append(
        "<footer>Generated by <code>repro-exp load report</code>; "
        "rows come from the run ledger's <code>load_runs</code> table."
        "</footer></body></html>"
    )
    return "\n".join(parts) + "\n"


def write_load_report(
    rows: Iterable[LoadRunRow],
    path: str,
    *,
    title: str = "Load observatory report",
) -> str:
    """Render and write the report; returns ``path``."""
    document = render_load_report(rows, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return path
