"""Seed-deterministic open-loop load generation (the load observatory).

The paper's evaluation measures algorithm quality one workflow at a
time; a serving deployment instead faces *streams* of requests — bursty
arrivals, mixed tenants, mixed priorities — and the question becomes
what latency/cost the stack sustains under contention. This package
closes that loop:

- :mod:`repro.loadgen.arrivals` plans the workload: a request sequence
  (arrival offsets + schedule specs + tenants + priorities) that is a
  pure function of an :class:`~repro.loadgen.arrivals.ArrivalConfig`
  and its seed — bit-identical at any worker count.
- :mod:`repro.loadgen.driver` replays the plan open-loop against a live
  gateway or an in-process engine, folds per-request latency into
  mergeable :class:`~repro.obs.sketch.QuantileSketch`\\ es, and archives
  every run as a ledger ``load_run`` row.
- :mod:`repro.loadgen.report` renders archived load runs as a
  self-contained HTML comparison report.
- :mod:`repro.loadgen.dash` renders a live ANSI terminal dashboard from
  ``/v1/metrics`` + ``/v1/slo`` + the SSE event bus.
"""

from .arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    PlannedRequest,
    generate_sequence,
    sequence_fingerprint,
)
from .dash import Dashboard
from .driver import LoadDriver, LoadRunResult
from .report import render_load_report, write_load_report

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalConfig",
    "PlannedRequest",
    "generate_sequence",
    "sequence_fingerprint",
    "LoadDriver",
    "LoadRunResult",
    "Dashboard",
    "render_load_report",
    "write_load_report",
]
