"""Deterministic arrival processes and workload sequence planning.

An :class:`ArrivalConfig` describes *when* requests arrive (Poisson,
2-state MMPP bursts, or a recorded trace of offsets) and *what* they
ask for (a pool of generator/DAX schedule specs crossed with weighted
tenants and priority classes, with an optional heavy-tail batch knob).
:func:`generate_sequence` expands it into the full list of
:class:`PlannedRequest`\\ s **up front**, as a pure function of the
config and its seed: replay mechanics — thread counts, pacing, the
target server — never touch the sequence, which is what makes a load
run reproducible and lets two same-seed runs be compared request for
request (:func:`sequence_fingerprint` is the bit-identity check CI
uses).

Every random draw comes from one ``random.Random(seed)`` (Mersenne
Twister — stable across platforms and Python versions), consumed in a
fixed documented order: first all arrival offsets, then per request the
spec / tenant / priority picks.

The MMPP ("Markov-modulated Poisson process") alternates between a
*calm* and a *burst* state with exponentially distributed dwell times;
within a state, inter-arrivals are exponential at the state's rate.
``rate`` is the long-run average; ``burstiness`` is the burst:calm rate
ratio, so the calm rate is solved from the stationary state
probabilities. Exponential memorylessness makes redrawing the gap at a
state switch exact, not an approximation.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ServiceError
from ..io import fingerprint as _fingerprint
from ..service.spec import PRIORITIES, ScheduleRequest
from ..workflow.generators import FAMILIES

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalConfig",
    "PlannedRequest",
    "generate_sequence",
    "sequence_fingerprint",
    "load_trace_offsets",
]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "trace")

#: Smallest workflow each generator family can produce; config validation
#: rejects a workload mix that would only fail at replay time.
_FAMILY_MIN_TASKS = {
    "cybershake": 4,
    "epigenomics": 8,
    "ligo": 4,
    "montage": 12,
    "random": 1,
    "sipht": 6,
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


@dataclass(frozen=True)
class PlannedRequest:
    """One planned arrival: when, what, and for whom.

    ``request`` is a JSON-ready :class:`ScheduleRequest` payload
    (including ``tenant`` / ``priority``); ``fingerprint`` is the spec's
    content-addressed identity (tenant/priority excluded, same as the
    service cache key).
    """

    index: int
    offset_s: float
    request: Dict[str, Any]
    fingerprint: str
    tenant: str
    priority: str


@dataclass(frozen=True)
class ArrivalConfig:
    """A complete, seedable description of one load run's workload.

    Arrival knobs
    -------------
    ``process``
        ``"poisson"`` | ``"mmpp"`` | ``"trace"``.
    ``rate``
        Long-run offered rate in requests/second (poisson, mmpp).
    ``n_requests``
        Total requests to plan (for ``trace``: capped at the trace
        length; 0 means the whole trace).
    ``burstiness`` / ``mean_burst_s`` / ``mean_calm_s``
        MMPP shape: burst:calm rate ratio and mean dwell seconds.
    ``batch_tail_alpha`` / ``batch_max``
        Heavy-tail batches: each arrival instant carries
        ``1 + ⌊Pareto(alpha)⌋`` requests (capped); 0 disables batching.
    ``trace_offsets``
        Recorded arrival offsets (seconds, ascending) for
        ``process="trace"`` — load from a file with
        :func:`load_trace_offsets`.

    Workload-mix knobs
    ------------------
    ``families`` × ``n_tasks`` × ``algorithms`` × ``budgets`` ×
    ``spec_seeds`` generator specs, plus one spec per inline ``daxes``
    document, form the spec pool; each arrival draws uniformly from it.
    ``tenants`` and ``priorities`` are weighted mixes.
    """

    process: str = "poisson"
    rate: float = 50.0
    n_requests: int = 1000
    seed: int = 0
    # mmpp shape
    burstiness: float = 4.0
    mean_burst_s: float = 2.0
    mean_calm_s: float = 8.0
    # heavy-tail batches
    batch_tail_alpha: float = 0.0
    batch_max: int = 64
    # trace replay
    trace_offsets: Tuple[float, ...] = ()
    # workload mix
    families: Tuple[str, ...] = ("montage", "ligo")
    n_tasks: Tuple[int, ...] = (15,)
    algorithms: Tuple[str, ...] = ("heft_budg",)
    budgets: Tuple[float, ...] = (2.0,)
    spec_seeds: int = 3
    sigma_ratio: float = 0.5
    n_reps: int = 2
    daxes: Tuple[str, ...] = ()
    tenants: Mapping[str, float] = field(
        default_factory=lambda: {"default": 1.0}
    )
    priorities: Mapping[str, float] = field(
        default_factory=lambda: {"interactive": 0.2, "batch": 0.7,
                                 "best_effort": 0.1}
    )

    def __post_init__(self) -> None:
        _require(self.process in ARRIVAL_PROCESSES,
                 f"process must be one of {ARRIVAL_PROCESSES}, "
                 f"got {self.process!r}")
        if self.process == "trace":
            _require(bool(self.trace_offsets),
                     "trace process needs trace_offsets (see "
                     "load_trace_offsets)")
            offsets = self.trace_offsets
            _require(all(b >= a for a, b in zip(offsets, offsets[1:])),
                     "trace_offsets must be non-decreasing")
            _require(offsets[0] >= 0.0,
                     "trace_offsets must be non-negative")
        else:
            _require(math.isfinite(self.rate) and self.rate > 0.0,
                     f"rate must be finite and > 0, got {self.rate}")
            _require(self.n_requests > 0,
                     f"n_requests must be > 0, got {self.n_requests}")
        _require(self.n_requests >= 0,
                 f"n_requests must be >= 0, got {self.n_requests}")
        if self.process == "mmpp":
            _require(self.burstiness > 1.0,
                     f"burstiness must be > 1, got {self.burstiness}")
            _require(self.mean_burst_s > 0.0 and self.mean_calm_s > 0.0,
                     "mmpp dwell means must be > 0")
        _require(self.batch_tail_alpha >= 0.0,
                 f"batch_tail_alpha must be >= 0, "
                 f"got {self.batch_tail_alpha}")
        _require(self.batch_max >= 1,
                 f"batch_max must be >= 1, got {self.batch_max}")
        _require(bool(self.families) or bool(self.daxes),
                 "workload mix needs at least one family or DAX")
        for family in self.families:
            _require(family.lower() in FAMILIES,
                     f"unknown workflow family {family!r}; "
                     f"available: {sorted(FAMILIES)}")
        _require(bool(self.n_tasks) and all(n > 0 for n in self.n_tasks),
                 "n_tasks must be a non-empty tuple of positive sizes")
        for family in self.families:
            minimum = _FAMILY_MIN_TASKS.get(family.lower(), 1)
            for n in self.n_tasks:
                _require(n >= minimum,
                         f"family {family!r} needs at least {minimum} "
                         f"tasks, got n_tasks={n}")
        _require(self.spec_seeds >= 1,
                 f"spec_seeds must be >= 1, got {self.spec_seeds}")
        _require(self.n_reps >= 0,
                 f"n_reps must be >= 0, got {self.n_reps}")
        for mix, what in ((self.tenants, "tenants"),
                          (self.priorities, "priorities")):
            _require(bool(mix), f"{what} mix must not be empty")
            _require(all(w > 0.0 for w in mix.values()),
                     f"{what} weights must be > 0")
        for priority in self.priorities:
            _require(priority in PRIORITIES,
                     f"unknown priority {priority!r}; one of {PRIORITIES}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready encoding (drives :meth:`fingerprint`).

        Inline DAX documents are folded to content hashes so the
        fingerprint stays small while still covering the documents.
        """
        out: Dict[str, Any] = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, Mapping):
                value = dict(value)
            out[f.name] = value
        out["daxes"] = [
            hashlib.sha256(doc.encode("utf-8")).hexdigest()
            for doc in self.daxes
        ]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalConfig":
        """Decode (inverse of :meth:`to_dict` minus the DAX hashing)."""
        names = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - names
        _require(not unknown,
                 f"unknown arrival config fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = dict(data)
        for key in ("trace_offsets", "families", "n_tasks", "algorithms",
                    "budgets", "daxes"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Content-addressed identity of this workload description."""
        return _fingerprint(self.to_dict())

    # ------------------------------------------------------------------
    def spec_pool(self) -> List[Dict[str, Any]]:
        """The deterministic, ordered pool of schedule-request payloads.

        Fixed enumeration order (families × sizes × algorithms ×
        budgets × seeds, then DAX documents) — the pool index an arrival
        draws is therefore stable across runs.
        """
        pool: List[Dict[str, Any]] = []
        evaluation = {"n_reps": self.n_reps, "seed": 0}
        for family in self.families:
            for n in self.n_tasks:
                for algorithm in self.algorithms:
                    for budget in self.budgets:
                        for rng in range(1, self.spec_seeds + 1):
                            pool.append({
                                "workflow": {
                                    "family": family, "n_tasks": n,
                                    "rng": rng,
                                    "sigma_ratio": self.sigma_ratio,
                                },
                                "algorithm": algorithm,
                                "budget": {"amount": budget},
                                "evaluation": dict(evaluation),
                            })
        for dax in self.daxes:
            for algorithm in self.algorithms:
                for budget in self.budgets:
                    pool.append({
                        "workflow": {"dax": dax,
                                     "sigma_ratio": self.sigma_ratio},
                        "algorithm": algorithm,
                        "budget": {"amount": budget},
                        "evaluation": dict(evaluation),
                    })
        return pool

    @property
    def offered_rate(self) -> float:
        """Long-run offered rate implied by the config (req/s)."""
        if self.process != "trace":
            return self.rate
        offsets = self.trace_offsets
        span = offsets[-1] - offsets[0]
        return len(offsets) / span if span > 0 else float(len(offsets))


# ----------------------------------------------------------------------
# arrival offsets
# ----------------------------------------------------------------------
def _poisson_offsets(config: ArrivalConfig,
                     rng: random.Random) -> List[float]:
    t = 0.0
    out: List[float] = []
    while len(out) < config.n_requests:
        t += rng.expovariate(config.rate)
        out.append(t)
    return out


def _mmpp_offsets(config: ArrivalConfig, rng: random.Random) -> List[float]:
    # Stationary probability of the calm state, then solve the calm rate
    # so the long-run average matches config.rate.
    pi_calm = config.mean_calm_s / (config.mean_calm_s
                                    + config.mean_burst_s)
    pi_burst = 1.0 - pi_calm
    rate_calm = config.rate / (pi_calm + pi_burst * config.burstiness)
    rate_burst = rate_calm * config.burstiness
    t = 0.0
    in_burst = False
    state_end = rng.expovariate(1.0 / config.mean_calm_s)
    out: List[float] = []
    while len(out) < config.n_requests:
        rate = rate_burst if in_burst else rate_calm
        gap = rng.expovariate(rate)
        if t + gap >= state_end:
            # Memoryless: jump to the switch point and redraw there.
            t = state_end
            in_burst = not in_burst
            mean_dwell = (config.mean_burst_s if in_burst
                          else config.mean_calm_s)
            state_end = t + rng.expovariate(1.0 / mean_dwell)
            continue
        t += gap
        out.append(t)
    return out


def _trace_offsets(config: ArrivalConfig) -> List[float]:
    offsets = list(config.trace_offsets)
    if config.n_requests > 0:
        offsets = offsets[:config.n_requests]
    base = offsets[0] if offsets else 0.0
    return [o - base for o in offsets]


def _apply_batches(offsets: List[float], config: ArrivalConfig,
                   rng: random.Random) -> List[float]:
    """Regroup arrival instants into heavy-tail batches (same offset).

    The total request count is preserved: Pareto-sized batches consume
    the planned instants in order, so the knob reshapes *clustering*
    (many requests landing on one instant) without changing volume.
    """
    if config.batch_tail_alpha <= 0.0:
        return offsets
    out: List[float] = []
    for offset in offsets:
        size = min(int(rng.paretovariate(config.batch_tail_alpha)),
                   config.batch_max)
        out.extend([offset] * size)
        if len(out) >= len(offsets):
            break
    return out[:len(offsets)]


def load_trace_offsets(path: str) -> Tuple[float, ...]:
    """Arrival offsets from a trace file: one float per line (seconds).

    Blank lines and ``#`` comments are skipped; offsets must be
    non-decreasing (validated by :class:`ArrivalConfig`).
    """
    offsets: List[float] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                offsets.append(float(text))
            except ValueError:
                raise ServiceError(
                    f"{path}:{lineno}: not a number: {text!r}") from None
    _require(bool(offsets), f"trace file {path} holds no offsets")
    return tuple(offsets)


# ----------------------------------------------------------------------
# sequence planning
# ----------------------------------------------------------------------
def _weighted_pick(mix: Mapping[str, float], rng: random.Random) -> str:
    """One weighted draw, in the mapping's (insertion) key order."""
    names = list(mix)
    total = float(sum(mix[name] for name in names))
    x = rng.random() * total
    acc = 0.0
    for name in names:
        acc += float(mix[name])
        if x < acc:
            return name
    return names[-1]


def generate_sequence(config: ArrivalConfig) -> List[PlannedRequest]:
    """Expand ``config`` into its full planned request sequence.

    Pure function of ``(config, config.seed)``: offsets first, then per
    arrival the spec / tenant / priority draws — so the sequence is
    bit-identical however it is later replayed. Spec fingerprints are
    computed once per pool entry (they exclude tenant/priority).
    """
    rng = random.Random(config.seed)
    if config.process == "poisson":
        offsets = _poisson_offsets(config, rng)
    elif config.process == "mmpp":
        offsets = _mmpp_offsets(config, rng)
    else:
        offsets = _trace_offsets(config)
    offsets = _apply_batches(offsets, config, rng)

    pool = config.spec_pool()
    # Validate + fingerprint each pool entry exactly once.
    pool_fingerprints = [
        ScheduleRequest.from_dict(payload).fingerprint() for payload in pool
    ]
    planned: List[PlannedRequest] = []
    for index, offset in enumerate(offsets):
        which = rng.randrange(len(pool))
        tenant = _weighted_pick(config.tenants, rng)
        priority = _weighted_pick(config.priorities, rng)
        request = dict(pool[which])
        request["tenant"] = tenant
        request["priority"] = priority
        planned.append(PlannedRequest(
            index=index,
            offset_s=offset,
            request=request,
            fingerprint=pool_fingerprints[which],
            tenant=tenant,
            priority=priority,
        ))
    return planned


def sequence_fingerprint(planned: Sequence[PlannedRequest]) -> str:
    """Bit-identity of a planned sequence (offsets + specs + routing).

    ``repr`` of the float offset keeps full precision, so two sequences
    hash equal iff they are bit-identical — the CI determinism check.
    """
    digest = hashlib.sha256()
    for p in planned:
        digest.update(
            f"{p.offset_s!r}|{p.fingerprint}|{p.tenant}|{p.priority}\n"
            .encode("utf-8")
        )
    return digest.hexdigest()
