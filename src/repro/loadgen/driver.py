"""Open-loop replay of a planned workload against a service.

The :class:`LoadDriver` takes the sequence planned by
:func:`~repro.loadgen.arrivals.generate_sequence` and fires each request
at (or as close as possible to) its planned offset, **regardless of
completions** — the open-loop discipline that exposes queueing collapse
instead of politely backing off (a closed-loop driver self-throttles and
hides it; see the coordinated-omission literature). Requests run on a
dispatch thread pool whose size bounds concurrent in-flight calls but
never reorders or regenerates the sequence: the plan is fixed before the
first byte is sent, so two same-seed runs replay identical sequences at
any ``concurrency``.

Targets:

- an in-process :class:`~repro.service.engine.SchedulingService`
  (``LoadDriver(service)``) — calls ``service.schedule``; admission
  refusals surface as typed exceptions;
- a live gateway (``LoadDriver("http://127.0.0.1:8080")``) — POSTs
  ``/v1/schedule``; typed refusals surface as 402/429/503 bodies.

Each completed request contributes its end-to-end latency and per-stage
decomposition to mergeable :class:`~repro.obs.sketch.QuantileSketch`\\ es;
the run folds into a :class:`LoadRunResult` and can be archived as a
ledger ``load_run`` row (:meth:`LoadRunResult.to_row`) for the
``ledger regress`` throughput/tail gates and ``repro-exp load report``.

Before replaying, :meth:`LoadDriver.wait_ready` polls the target's
readiness — ``GET /v1/healthz`` for gateways (503 while draining),
:meth:`SchedulingService.health` in process — so a cold server's
accept-queue warmup never pollutes the measurement.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import (
    AdmissionRejected,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..obs.ledger import LoadRunRow
from ..obs.sketch import DEFAULT_ALPHA, QuantileSketch
from .arrivals import (
    ArrivalConfig,
    PlannedRequest,
    generate_sequence,
    sequence_fingerprint,
)

__all__ = ["LoadDriver", "LoadRunResult", "RequestRecord"]

#: Typed outcomes a replayed request can land in. ``ok`` computed fresh,
#: ``cached`` served from the response cache; the refusal categories
#: mirror the admission controller's reasons plus transport errors.
OUTCOMES = (
    "ok", "cached", "rate_limited", "budget_exhausted", "queue_full",
    "overloaded", "draining", "error",
)

#: Stage-sum completeness tolerance (same contract as the obs gate).
_STAGE_SUM_TOL = 1e-6


@dataclass
class RequestRecord:
    """What one replayed request came back as."""

    index: int
    planned_offset_s: float
    sent_offset_s: float
    latency_s: float
    outcome: str
    tenant: str
    priority: str
    cost: float = 0.0
    stages: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def send_lag_s(self) -> float:
        """How late the open-loop send fired vs its planned instant."""
        return self.sent_offset_s - self.planned_offset_s


@dataclass
class LoadRunResult:
    """One finished load run: counts, rates, sketches, cost.

    ``latency_mean_s`` / ``latency_std_s`` are exact sample statistics
    over completed (ok + cached) requests; the sketches answer
    percentile queries within their relative-error guarantee and merge
    across runs.
    """

    config: ArrivalConfig
    sequence_fp: str
    target: str
    executor: str = ""
    label: str = ""
    n_requests: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    offered_rps: float = 0.0
    achieved_rps: float = 0.0
    latency_mean_s: float = 0.0
    latency_std_s: float = 0.0
    cost_total: float = 0.0
    max_send_lag_s: float = 0.0
    n_stage_violations: int = 0
    latency_sketch: QuantileSketch = field(
        default_factory=lambda: QuantileSketch(alpha=DEFAULT_ALPHA))
    stage_sketches: Dict[str, QuantileSketch] = field(default_factory=dict)
    records: List[RequestRecord] = field(default_factory=list)

    @property
    def n_completed(self) -> int:
        """Requests that produced a response (fresh or cached)."""
        return self.outcomes.get("ok", 0) + self.outcomes.get("cached", 0)

    @property
    def refusals(self) -> Dict[str, int]:
        """Typed refusal counts (everything that is not ok/cached)."""
        return {
            name: n for name, n in sorted(self.outcomes.items())
            if name not in ("ok", "cached") and n > 0
        }

    def percentiles(self) -> Dict[str, float]:
        """End-to-end latency p50/p95/p99 (empty when nothing completed)."""
        return self.latency_sketch.percentiles()

    def stage_percentiles(self) -> Dict[str, Dict[str, float]]:
        """``{stage: {count, p50, p95, p99}}`` over completed requests."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.stage_sketches):
            sketch = self.stage_sketches[name]
            pcts = sketch.percentiles()
            if pcts:
                out[name] = {"count": sketch.count, **pcts}
        pcts = self.latency_sketch.percentiles()
        if pcts:
            out["request"] = {"count": self.latency_sketch.count, **pcts}
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (what ``load run --json`` prints)."""
        pcts = self.percentiles()
        return {
            "label": self.label,
            "target": self.target,
            "executor": self.executor,
            "config_fingerprint": self.config.fingerprint(),
            "sequence_fingerprint": self.sequence_fp,
            "process": self.config.process,
            "n_requests": self.n_requests,
            "outcomes": dict(sorted(self.outcomes.items())),
            "refusals": self.refusals,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "latency_mean_s": self.latency_mean_s,
            "latency_std_s": self.latency_std_s,
            "p50_s": pcts.get("p50", 0.0),
            "p95_s": pcts.get("p95", 0.0),
            "p99_s": pcts.get("p99", 0.0),
            "cost_total": self.cost_total,
            "max_send_lag_s": self.max_send_lag_s,
            "n_stage_violations": self.n_stage_violations,
            "stages": self.stage_percentiles(),
        }

    def to_row(self) -> LoadRunRow:
        """The ledger ``load_run`` row for this run."""
        pcts = self.percentiles()
        return LoadRunRow(
            label=self.label,
            config_fingerprint=self.config.fingerprint(),
            sequence_fingerprint=self.sequence_fp,
            process=self.config.process,
            target=self.target,
            executor=self.executor,
            n_requests=self.n_requests,
            n_ok=self.outcomes.get("ok", 0),
            n_cached=self.outcomes.get("cached", 0),
            n_rejected=sum(
                n for name, n in self.outcomes.items()
                if name not in ("ok", "cached", "error")
            ),
            n_errors=self.outcomes.get("error", 0),
            refusals=self.refusals,
            offered_rps=self.offered_rps,
            achieved_rps=self.achieved_rps,
            duration_s=self.duration_s,
            latency_mean_s=self.latency_mean_s,
            latency_std_s=self.latency_std_s,
            p50_s=pcts.get("p50", 0.0),
            p95_s=pcts.get("p95", 0.0),
            p99_s=pcts.get("p99", 0.0),
            cost_total=self.cost_total,
            stages=self.stage_percentiles(),
            sketches={
                "request": self.latency_sketch.to_dict(),
                **{name: sketch.to_dict()
                   for name, sketch in sorted(self.stage_sketches.items())},
            },
            extra={
                "config": self.config.to_dict(),
                "max_send_lag_s": self.max_send_lag_s,
                "n_stage_violations": self.n_stage_violations,
            },
        )


class LoadDriver:
    """Replay a planned workload open-loop against one target.

    Parameters
    ----------
    target:
        A :class:`~repro.service.engine.SchedulingService` instance or a
        gateway base URL string (``http://host:port``).
    concurrency:
        Dispatch threads — bounds in-flight requests, never the plan.
    pace:
        ``True`` honours the planned offsets in real time (a load
        test); ``False`` fires as fast as the dispatch pool drains (a
        throughput probe — ``achieved_rps`` then measures capacity).
    timeout_s:
        Per-request HTTP timeout (URL targets only).
    """

    def __init__(
        self,
        target: Any,
        *,
        concurrency: int = 8,
        pace: bool = True,
        timeout_s: float = 60.0,
    ) -> None:
        if concurrency < 1:
            raise ServiceError(
                f"concurrency must be >= 1, got {concurrency}")
        self._url: Optional[str] = None
        self._service: Optional[Any] = None
        if isinstance(target, str):
            self._url = target.rstrip("/")
        else:
            self._service = target
        self.concurrency = concurrency
        self.pace = pace
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # readiness
    # ------------------------------------------------------------------
    def ready(self) -> Dict[str, Any]:
        """One readiness probe: the healthz payload plus ``"ready"``."""
        if self._service is not None:
            return self._service.health()
        try:
            with urllib.request.urlopen(
                f"{self._url}/v1/healthz", timeout=min(self.timeout_s, 5.0)
            ) as resp:
                payload = json.load(resp)
                payload["ready"] = resp.status == 200
                return payload
        except urllib.error.HTTPError as exc:  # 503 while draining
            try:
                payload = json.load(exc)
            except Exception:
                payload = {}
            payload["ready"] = False
            return payload
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            return {"ready": False, "error": str(exc)}

    def wait_ready(self, timeout_s: float = 30.0,
                   poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll readiness until the target accepts work (warmup gate).

        Raises :class:`~repro.errors.ServiceError` when the deadline
        passes; returns the last healthz payload otherwise.
        """
        deadline = time.monotonic() + timeout_s
        last: Dict[str, Any] = {}
        while True:
            last = self.ready()
            if last.get("ready"):
                return last
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"target not ready after {timeout_s:.0f}s: {last}")
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def run(
        self,
        config: ArrivalConfig,
        *,
        label: str = "",
        warmup_timeout_s: float = 30.0,
        keep_records: bool = False,
    ) -> LoadRunResult:
        """Plan, warm up, replay; returns the folded result.

        The sequence is fully planned before the first send; the warmup
        gate then blocks until the target reports ready. ``keep_records``
        retains every per-request :class:`RequestRecord` (memory scales
        with the run — leave off for 50k-request replays unless needed).
        """
        planned = generate_sequence(config)
        return self.replay(
            planned, config, label=label,
            warmup_timeout_s=warmup_timeout_s, keep_records=keep_records,
        )

    def replay(
        self,
        planned: Sequence[PlannedRequest],
        config: ArrivalConfig,
        *,
        label: str = "",
        warmup_timeout_s: float = 30.0,
        keep_records: bool = False,
    ) -> LoadRunResult:
        """Replay an already-planned sequence (see :meth:`run`)."""
        self.wait_ready(timeout_s=warmup_timeout_s)
        result = LoadRunResult(
            config=config,
            sequence_fp=sequence_fingerprint(planned),
            target=self._url or "inproc",
            executor=(
                "" if self._service is None
                else getattr(self._service, "executor", "")
            ),
            label=label,
            n_requests=len(planned),
            offered_rps=config.offered_rate,
        )
        lock = threading.Lock()
        latencies: List[float] = []
        started = time.perf_counter()

        def fire(p: PlannedRequest) -> None:
            sent_offset = time.perf_counter() - started
            record = self._send(p, sent_offset)
            with lock:
                result.outcomes[record.outcome] = (
                    result.outcomes.get(record.outcome, 0) + 1
                )
                result.max_send_lag_s = max(
                    result.max_send_lag_s, record.send_lag_s)
                if record.outcome in ("ok", "cached"):
                    latencies.append(record.latency_s)
                    result.latency_sketch.add(record.latency_s)
                    result.cost_total += record.cost
                    for stage, seconds in record.stages.items():
                        sketch = result.stage_sketches.get(stage)
                        if sketch is None:
                            sketch = QuantileSketch(alpha=DEFAULT_ALPHA)
                            result.stage_sketches[stage] = sketch
                        sketch.add(seconds)
                    if record.stages and abs(
                        sum(record.stages.values()) - record.wall_s
                    ) > _STAGE_SUM_TOL:
                        result.n_stage_violations += 1
                if keep_records:
                    result.records.append(record)

        with ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="repro-loadgen",
        ) as pool:
            futures = []
            for p in planned:
                if self.pace:
                    delay = p.offset_s - (time.perf_counter() - started)
                    if delay > 0:
                        time.sleep(delay)
                # Open loop: submission never waits for completions; a
                # saturated pool queues the send (visible as send lag).
                futures.append(pool.submit(fire, p))
            for future in futures:
                future.result()

        result.duration_s = time.perf_counter() - started
        if result.duration_s > 0:
            result.achieved_rps = result.n_completed / result.duration_s
        if latencies:
            result.latency_mean_s = statistics.fmean(latencies)
            result.latency_std_s = (
                statistics.stdev(latencies) if len(latencies) > 1 else 0.0
            )
        return result

    # ------------------------------------------------------------------
    def _send(self, p: PlannedRequest, sent_offset: float) -> RequestRecord:
        sender = self._send_http if self._url else self._send_inproc
        sent = time.perf_counter()
        outcome, cost, stages, wall = sender(p)
        return RequestRecord(
            index=p.index,
            planned_offset_s=p.offset_s,
            sent_offset_s=sent_offset,
            latency_s=time.perf_counter() - sent,
            outcome=outcome,
            tenant=p.tenant,
            priority=p.priority,
            cost=cost,
            stages=stages,
            wall_s=wall,
        )

    def _send_inproc(self, p: PlannedRequest):
        assert self._service is not None
        try:
            response = self._service.schedule(p.request)
        except AdmissionRejected as exc:
            return self._refusal(exc.reason), 0.0, {}, 0.0
        except ServiceClosedError:
            return "draining", 0.0, {}, 0.0
        except ServiceOverloadedError as exc:
            return self._refusal(exc.reason), 0.0, {}, 0.0
        except ServiceError:
            return "error", 0.0, {}, 0.0
        stages_payload = response.stages or {}
        return (
            "cached" if response.cached else "ok",
            float(response.planned_cost),
            dict(stages_payload.get("stages", {})),
            float(stages_payload.get("wall_s", 0.0)),
        )

    def _send_http(self, p: PlannedRequest):
        body = json.dumps(p.request).encode("utf-8")
        request = urllib.request.Request(
            f"{self._url}/v1/schedule",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as resp:
                payload = json.load(resp)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.load(exc)
            except Exception:
                detail = {}
            reason = detail.get("reason")
            if exc.code == 402:
                return "budget_exhausted", 0.0, {}, 0.0
            if exc.code == 429:
                return self._refusal(reason), 0.0, {}, 0.0
            if exc.code == 503:
                return "draining", 0.0, {}, 0.0
            return "error", 0.0, {}, 0.0
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            return "error", 0.0, {}, 0.0
        stages_payload = payload.get("stages") or {}
        return (
            "cached" if payload.get("cached") else "ok",
            float(payload.get("planned_cost", 0.0)),
            dict(stages_payload.get("stages", {})),
            float(stages_payload.get("wall_s", 0.0)),
        )

    @staticmethod
    def _refusal(reason: Optional[str]) -> str:
        if reason in ("rate_limited", "budget_exhausted", "queue_full"):
            return reason
        return "overloaded"
