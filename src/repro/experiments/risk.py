"""Stochastic risk assessment against the paper's objective (Eq. 3).

The paper's formal objective is *joint*: "Given a deadline D and a budget
B, the objective is to fulfill the deadline while respecting the budget".
With stochastic weights this is a probabilistic statement; the evaluation
section reports budget validity only, but the model invites the full
question: **with what probability does a schedule meet (D, B)?**

:func:`assess` answers it by Monte-Carlo over weight realizations, and
reports the marginal and joint success probabilities with distribution
summaries (mean, std, percentiles) for both makespan and cost — the
quantities a user needs to pick a (D, B) pair with a prescribed risk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..platform.cloud import CloudPlatform
from ..rng import RngLike, spawn
from ..scheduling.schedule import Schedule
from ..simulation.executor import execute_schedule, sample_weights
from ..workflow.dag import Workflow

__all__ = ["Distribution", "RiskAssessment", "assess"]

_PERCENTILES = (5.0, 25.0, 50.0, 75.0, 95.0, 99.0)


@dataclass(frozen=True)
class Distribution:
    """Empirical distribution summary of one scalar outcome."""

    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: Dict[float, float]

    @staticmethod
    def from_samples(samples: np.ndarray) -> "Distribution":
        """Summarize a 1-D sample array."""
        if samples.size == 0:
            raise ValueError("no samples")
        return Distribution(
            mean=float(samples.mean()),
            std=float(samples.std()),
            minimum=float(samples.min()),
            maximum=float(samples.max()),
            percentiles={
                p: float(np.percentile(samples, p)) for p in _PERCENTILES
            },
        )

    def quantile(self, p: float) -> float:
        """Pre-computed percentile lookup (p in the standard set)."""
        return self.percentiles[p]


@dataclass(frozen=True)
class RiskAssessment:
    """Monte-Carlo verdict on one schedule against (D, B)."""

    n_samples: int
    deadline: float
    budget: float
    makespan: Distribution
    cost: Distribution
    p_meets_deadline: float
    p_within_budget: float
    p_meets_objective: float  # joint (Eq. 3)

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        return (
            f"over {self.n_samples} weight realizations: "
            f"P[makespan <= {self.deadline:.0f}s] = {self.p_meets_deadline:.1%}, "
            f"P[cost <= ${self.budget:.3f}] = {self.p_within_budget:.1%}, "
            f"joint = {self.p_meets_objective:.1%}; "
            f"makespan p95 = {self.makespan.quantile(95.0):.0f}s, "
            f"cost p95 = ${self.cost.quantile(95.0):.4f}"
        )


def assess(
    wf: Workflow,
    platform: CloudPlatform,
    schedule: Schedule,
    *,
    deadline: float = math.inf,
    budget: float = math.inf,
    n_samples: int = 200,
    rng: RngLike = None,
    dc_capacity: float = math.inf,
) -> RiskAssessment:
    """Monte-Carlo assessment of ``schedule`` against Eq. (3)'s (D, B).

    Runs ``n_samples`` independent executions with sampled actual weights;
    ``deadline``/``budget`` may be left infinite to get pure distribution
    summaries.
    """
    if n_samples < 1:
        raise ValueError(f"need at least 1 sample, got {n_samples}")
    schedule.validate(wf)
    makespans = np.empty(n_samples)
    costs = np.empty(n_samples)
    for i, stream in enumerate(spawn(rng, n_samples)):
        run = execute_schedule(
            wf, platform, schedule, sample_weights(wf, stream),
            dc_capacity=dc_capacity, validate=False,
        )
        makespans[i] = run.makespan
        costs[i] = run.total_cost
    meets_d = makespans <= deadline
    meets_b = costs <= budget
    return RiskAssessment(
        n_samples=n_samples,
        deadline=deadline,
        budget=budget,
        makespan=Distribution.from_samples(makespans),
        cost=Distribution.from_samples(costs),
        p_meets_deadline=float(meets_d.mean()),
        p_within_budget=float(meets_b.mean()),
        p_meets_objective=float((meets_d & meets_b).mean()),
    )
