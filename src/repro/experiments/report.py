"""Text rendering of figure series and tables (and CSV export).

The library is plotting-agnostic; these renderers print the same rows and
series the paper's figures show, so shapes can be inspected in a terminal
and regression-checked in benchmarks.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict
from typing import Dict, Iterable, Sequence, TextIO

from .figures import FigureData
from .metrics import RunRecord

__all__ = [
    "render_figure",
    "render_cpu_table",
    "records_to_csv",
    "format_row",
]


def format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    """Fixed-width row formatting."""
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def render_figure(data: FigureData, *, metric: str = "makespan") -> str:
    """Render one metric of a figure as per-family text panels.

    ``metric`` is one of ``makespan``, ``cost``, ``n_vms``, ``valid``.
    Series cells are ``mean±std`` (``valid`` shows the valid fraction).
    """
    getters = {
        "makespan": lambda a: f"{a.makespan_mean:.0f}±{a.makespan_std:.0f}",
        "cost": lambda a: f"{a.cost_mean:.4f}±{a.cost_std:.4f}",
        "n_vms": lambda a: f"{a.n_vms_mean:.1f}",
        "valid": lambda a: f"{100 * a.valid_fraction:.0f}%",
    }
    if metric not in getters:
        raise ValueError(f"unknown metric {metric!r}; pick from {sorted(getters)}")
    fmt = getters[metric]

    out = io.StringIO()
    out.write(f"== {data.name}: {metric} vs budget ==\n")
    for family in data.families():
        out.write(f"\n-- {family} (n={data.config.n_tasks}, "
                  f"sigma={data.config.sigma_ratio:g}) --\n")
        algorithms = data.algorithms()
        # x axis: mean budget per grid point of the first algorithm.
        first = data.get(family, algorithms[0])
        budgets = [p.budget_mean for p in first]
        header = ["budget"] + list(algorithms)
        widths = [10] + [max(len(a), 14) for a in algorithms]
        out.write(format_row(header, widths) + "\n")
        for i, budget in enumerate(budgets):
            row = [f"{budget:.4f}"]
            for algorithm in algorithms:
                series = data.get(family, algorithm)
                row.append(fmt(series[i].stats) if i < len(series) else "-")
            out.write(format_row(row, widths) + "\n")
    return out.getvalue()


def render_cpu_table(
    table: Dict, *, title: str = "scheduling CPU time (seconds)"
) -> str:
    """Render Table III-style CPU-time cells."""
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    for label, cells in table.items():
        out.write(f"\n-- {label} --\n")
        widths = [20, 24, 10]
        out.write(format_row(["algorithm", "mean ± std", "median"], widths) + "\n")
        for cell in cells:
            out.write(
                format_row(
                    [
                        cell.algorithm,
                        f"{cell.mean:.4f} ± {cell.std:.4f}",
                        f"{cell.median:.4f}",
                    ],
                    widths,
                )
                + "\n"
            )
    return out.getvalue()


def records_to_csv(records: Iterable[RunRecord], stream: TextIO) -> None:
    """Dump raw run records as CSV (one row per simulated execution)."""
    records = list(records)
    if not records:
        return
    writer = csv.DictWriter(stream, fieldnames=list(asdict(records[0])))
    writer.writeheader()
    for record in records:
        writer.writerow(asdict(record))
