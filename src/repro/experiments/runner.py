"""Sweep runner: the machinery behind every figure and table.

Protocol per §V-A: for each workflow instance the scheduler runs **once**
per (algorithm, budget) — scheduling is deterministic given the conservative
weights — and the resulting schedule is executed ``n_reps`` times under
sampled actual weights. Baseline algorithms (MIN-MIN, HEFT) ignore the
budget; they are scheduled with ``B = ∞`` and replicated across the budget
axis by the figure builders.

Variance reduction: within one workflow instance, repetition ``r`` uses the
**same** weight realization for every (algorithm, budget) cell — common
random numbers. Mean curves are unaffected, but paired comparisons
(:mod:`repro.experiments.stats`) then measure scheduling differences
instead of weight-draw noise.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..cluster import make_pool, parse_workers
from ..obs.ledger import RunRow, get_ledger
from ..obs.tracing import get_tracer
from ..parallel import ShardPlan, ShardStats
from ..platform.cloud import CloudPlatform
from ..rng import spawn, spawn_seeds
from ..scheduling.registry import make_scheduler
from ..simulation.executor import run_replications, sample_weights
from ..workflow.dag import Workflow
from ..workflow.generators import generate
from .budgets import budget_grid
from .config import ExperimentConfig
from .metrics import RunRecord

__all__ = [
    "run_point",
    "run_sweep",
    "make_instances",
    "convergence_diagnostics",
    "BASELINE_ALGORITHMS",
]

#: Algorithms that ignore the budget; scheduled once with B = ∞.
BASELINE_ALGORITHMS = frozenset({"minmin", "heft"})


def convergence_diagnostics(
    values: Sequence[float], *, batch_size: int = 1, confidence_z: float = 1.96
) -> Dict[str, Any]:
    """Monte Carlo convergence of a sample mean, one point per batch.

    After every ``batch_size`` samples, records the running mean and the
    normal-approximation CI half-width ``z·s/√n`` (sample std, 0 while
    n < 2). Answers the §V-A protocol question "were 25 repetitions
    enough?": a flat running mean and a small final half-width say yes.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    running_mean: List[float] = []
    ci_halfwidth: List[float] = []
    total = 0.0
    total_sq = 0.0
    for i, value in enumerate(values):
        total += value
        total_sq += value * value
        n = i + 1
        if n % batch_size == 0 or n == len(values):
            mean = total / n
            if n > 1:
                var = max((total_sq - n * mean * mean) / (n - 1), 0.0)
                ci_halfwidth.append(confidence_z * math.sqrt(var / n))
            else:
                ci_halfwidth.append(0.0)
            running_mean.append(mean)
    return {
        "n": len(values),
        "batch_size": batch_size,
        "running_mean": running_mean,
        "ci_halfwidth": ci_halfwidth,
        "final_mean": running_mean[-1] if running_mean else 0.0,
        "final_ci_halfwidth": ci_halfwidth[-1] if ci_halfwidth else 0.0,
    }


def _record_point(
    wf: Workflow,
    algorithm: str,
    budget: float,
    payload: Dict[str, Any],
    *,
    family: str,
    instance: int,
    sigma_ratio: float,
    budget_index: int,
) -> None:
    """Archive one sweep point (schedule + its reps) into the ledger.

    ``payload`` is a :func:`_run_point_payload` result — plain values, so
    recording works identically whether the point was computed in-process
    or returned from a worker (workers never write the ledger; the parent
    records every point, in serial iteration order).
    """
    ledger = get_ledger()
    records = payload["records"]
    if not ledger.enabled or not records:
        return
    makespans = [r.makespan for r in records]
    costs = [r.total_cost for r in records]
    n = len(records)
    batch = max(1, n // 5)
    ledger.record(
        RunRow(
            source="sweep",
            workflow=wf.name,
            family=family or wf.name,
            n_tasks=wf.n_tasks,
            algorithm=algorithm,
            budget=budget,
            sigma_ratio=sigma_ratio,
            planned_makespan=payload["planned_makespan"],
            planned_cost=payload["planned_cost"],
            within_budget_plan=payload["within_budget_plan"],
            sim_makespan=sum(makespans) / n,
            sim_cost=sum(costs) / n,
            success_rate=sum(r.valid for r in records) / n,
            n_reps=n,
            n_vms=payload["plan_n_vms"],
            sched_seconds=payload["sched_seconds"],
            extra={
                "instance": instance,
                "budget_index": budget_index,
                "makespan_convergence": convergence_diagnostics(
                    makespans, batch_size=batch
                ),
                # Sample stats for the Welch-CI regression gate
                # (`repro-exp ledger regress --stat`).
                "makespan_stats": ShardStats.of(makespans).to_dict(),
            },
        )
    )


def make_instances(config: ExperimentConfig) -> Dict[Tuple[str, int], Workflow]:
    """Generate the benchmark instances: ``(family, instance) → workflow``."""
    out: Dict[Tuple[str, int], Workflow] = {}
    for family in config.families:
        for instance, rng in enumerate(spawn(config.seed, config.n_instances)):
            out[(family, instance)] = generate(
                family,
                config.n_tasks,
                rng=rng,
                sigma_ratio=config.sigma_ratio,
                name=f"{family}-{config.n_tasks}-i{instance}",
            )
    return out


def _run_point_payload(
    task: Dict[str, Any], pool: Optional[Any] = None
) -> Dict[str, Any]:
    """Compute one sweep point: schedule once, replicate, build records.

    Pure compute, no ledger access — this is the pickle-safe entrypoint
    :func:`run_sweep` ships to worker processes (called with the default
    ``pool=None``, so each worker runs its point serially). When called
    in-process by :func:`run_point` with a pool, the replication loop
    itself is sharded across the pool via
    :func:`repro.simulation.executor.run_replications`.

    ``task["seeds"]`` must be the :func:`repro.rng.spawn_seeds` substreams
    of the caller's generator — spawned by the *caller* so the parent
    generator advances identically on the serial and parallel paths.
    """
    wf: Workflow = task["wf"]
    platform: CloudPlatform = task["platform"]
    algorithm: str = task["algorithm"]
    budget: float = task["budget"]
    n_reps: int = task["n_reps"]
    weight_draws = task.get("weight_draws")
    seeds = task["seeds"]
    dc_capacity = task.get("dc_capacity", math.inf)

    if weight_draws is not None and len(weight_draws) < n_reps:
        raise ValueError(
            f"need {n_reps} weight draws, got {len(weight_draws)}"
        )
    scheduler = make_scheduler(algorithm)
    sched_budget = math.inf if algorithm in BASELINE_ALGORITHMS else budget
    t0 = time.perf_counter()
    result = scheduler.schedule(wf, platform, sched_budget)
    sched_seconds = time.perf_counter() - t0

    plan = ShardPlan.plan(
        n_reps, pool.workers if pool is not None else 0
    )
    shard_tasks = []
    for shard in plan.shards:
        shard_tasks.append({
            "wf": wf,
            "platform": platform,
            "schedule": result.schedule,
            "budget": budget,
            "dc_capacity": dc_capacity,
            "validate_first": shard.start == 0,
            "weights": (
                list(shard.slice(weight_draws))
                if weight_draws is not None else None
            ),
            "seeds": None if weight_draws is not None
            else list(shard.slice(seeds)),
        })
    if pool is None or plan.is_serial:
        per_shard = [run_replications(t) for t in shard_tasks]
    else:
        per_shard = pool.map(run_replications, shard_tasks)
    rows = plan.merge(per_shard)

    records = [
        RunRecord(
            family=task.get("family") or wf.name,
            n_tasks=wf.n_tasks,
            instance=task.get("instance", 0),
            sigma_ratio=task.get("sigma_ratio", 0.0),
            algorithm=algorithm,
            budget=budget,
            budget_index=task.get("budget_index", 0),
            rep=rep,
            makespan=makespan,
            total_cost=total_cost,
            n_vms=n_vms,
            valid=valid,
            sched_seconds=sched_seconds,
        )
        for rep, (makespan, total_cost, n_vms, valid) in enumerate(rows)
    ]
    return {
        "records": records,
        "planned_makespan": result.planned_makespan,
        "planned_cost": result.planned_vm_cost,
        "within_budget_plan": result.within_budget_plan,
        "plan_n_vms": result.schedule.n_vms,
        "sched_seconds": sched_seconds,
    }


def run_point(
    wf: Workflow,
    platform: CloudPlatform,
    algorithm: str,
    budget: float,
    n_reps: int,
    rng,
    *,
    family: str = "",
    instance: int = 0,
    sigma_ratio: float = 0.0,
    budget_index: int = 0,
    dc_capacity: float = math.inf,
    weight_draws: Optional[Sequence[Dict[str, float]]] = None,
    workers: Union[int, str] = 0,
    pool: Optional[Any] = None,
) -> List[RunRecord]:
    """Schedule once, execute ``n_reps`` stochastic runs, return records.

    ``weight_draws`` fixes the actual-weight realizations (one mapping per
    repetition) — used by :func:`run_sweep` for common random numbers; by
    default fresh draws are sampled from ``rng``.

    ``workers > 1`` shards the replication loop across worker processes
    (or an existing ``pool``); a ``"host:port,host:port"`` node list
    shards it across a :class:`repro.cluster.ClusterPool` of remote
    ``repro-exp worker`` nodes instead. Every returned number is
    bit-identical to the serial run either way — see ``docs/PARALLEL.md``
    and ``docs/CLUSTER.md`` for the contract. Tiny replication counts
    fall back to serial automatically on the process backend.
    """
    # Spawning here (not in the payload) keeps the caller's generator
    # advancing identically on every path, parallel or not.
    seeds = spawn_seeds(rng, n_reps)
    task = {
        "wf": wf, "platform": platform, "algorithm": algorithm,
        "budget": budget, "n_reps": n_reps, "seeds": seeds,
        "family": family, "instance": instance,
        "sigma_ratio": sigma_ratio, "budget_index": budget_index,
        "dc_capacity": dc_capacity, "weight_draws": weight_draws,
    }
    backend = parse_workers(workers)
    own_pool: Optional[Any] = None
    if pool is None and not backend.is_serial:
        if backend.kind == "cluster" or not ShardPlan.plan(
            n_reps, backend.n_workers
        ).is_serial:
            own_pool = make_pool(backend)
    try:
        with get_tracer().span(
            "experiments.run_point", family=family or wf.name,
            algorithm=algorithm, budget=budget, n_reps=n_reps,
        ) as point_span:
            payload = _run_point_payload(task, pool=pool or own_pool)
            point_span.set(
                sched_seconds=payload["sched_seconds"],
                n_vms=payload["plan_n_vms"],
            )
    finally:
        if own_pool is not None:
            own_pool.close()
    _record_point(
        wf, algorithm, budget, payload,
        family=family, instance=instance, sigma_ratio=sigma_ratio,
        budget_index=budget_index,
    )
    return payload["records"]


def run_sweep(
    config: ExperimentConfig,
    *,
    dc_capacity: float = math.inf,
    budget_points: Optional[Sequence[float]] = None,
    workers: Union[int, str] = 0,
) -> List[RunRecord]:
    """Full sweep: instances × budgets × algorithms × repetitions.

    Budgets are normalized per workflow (each instance gets its own
    ``B_min``-to-high grid) unless explicit ``budget_points`` are given.
    Budget indices are recorded as fractional positions via the budget value
    itself; figure builders group by grid position.

    ``workers > 1`` fans whole sweep points (one schedule + its
    replications) out to worker processes; a ``"host:port,host:port"``
    node list fans them out to remote ``repro-exp worker`` nodes via
    :class:`repro.cluster.ClusterPool`. Instances, budget grids, and
    the common-random-number weight draws are still generated serially in
    the parent, results come back in submission order, and the parent
    records every point to the ledger — so rows, records, and all floats
    are bit-identical to the serial run, regardless of backend or of
    which node computed which point (see ``docs/PARALLEL.md`` and
    ``docs/CLUSTER.md``).
    """
    tracer = get_tracer()
    instances = make_instances(config)
    records: List[RunRecord] = []
    exec_streams = spawn(config.seed + 1, len(instances))
    stream_idx = 0
    backend = parse_workers(workers)
    parallel = not backend.is_serial
    tasks: List[Dict[str, Any]] = []
    for (family, instance), wf in instances.items():
        with tracer.span(
            "experiments.instance", family=family, instance=instance,
            n_tasks=wf.n_tasks,
        ):
            grid = (
                list(budget_points)
                if budget_points is not None
                else budget_grid(
                    wf, config.platform, config.budgets_per_workflow
                )
            )
            # common random numbers: one weight realization per repetition,
            # shared by every (algorithm, budget) cell of this instance
            instance_stream = exec_streams[stream_idx]
            stream_idx += 1
            draws = [
                sample_weights(wf, r)
                for r in spawn(instance_stream, config.n_reps)
            ]
            for algorithm in config.algorithms:
                for budget_index, budget in enumerate(grid):
                    if not parallel:
                        records.extend(
                            run_point(
                                wf,
                                config.platform,
                                algorithm,
                                budget,
                                config.n_reps,
                                instance_stream,
                                family=family,
                                instance=instance,
                                sigma_ratio=config.sigma_ratio,
                                budget_index=budget_index,
                                dc_capacity=dc_capacity,
                                weight_draws=draws,
                            )
                        )
                        continue
                    # Mirror run_point's spawn so the instance stream
                    # advances identically on both paths.
                    seeds = spawn_seeds(instance_stream, config.n_reps)
                    tasks.append({
                        "wf": wf, "platform": config.platform,
                        "algorithm": algorithm, "budget": budget,
                        "n_reps": config.n_reps, "seeds": seeds,
                        "family": family, "instance": instance,
                        "sigma_ratio": config.sigma_ratio,
                        "budget_index": budget_index,
                        "dc_capacity": dc_capacity,
                        "weight_draws": draws,
                    })
    if parallel and tasks:
        with make_pool(backend) as worker_pool:
            payloads = worker_pool.map(_run_point_payload, tasks)
        for task, payload in zip(tasks, payloads):
            _record_point(
                task["wf"], task["algorithm"], task["budget"], payload,
                family=task["family"], instance=task["instance"],
                sigma_ratio=task["sigma_ratio"],
                budget_index=task["budget_index"],
            )
            records.extend(payload["records"])
    return records
