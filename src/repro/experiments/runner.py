"""Sweep runner: the machinery behind every figure and table.

Protocol per §V-A: for each workflow instance the scheduler runs **once**
per (algorithm, budget) — scheduling is deterministic given the conservative
weights — and the resulting schedule is executed ``n_reps`` times under
sampled actual weights. Baseline algorithms (MIN-MIN, HEFT) ignore the
budget; they are scheduled with ``B = ∞`` and replicated across the budget
axis by the figure builders.

Variance reduction: within one workflow instance, repetition ``r`` uses the
**same** weight realization for every (algorithm, budget) cell — common
random numbers. Mean curves are unaffected, but paired comparisons
(:mod:`repro.experiments.stats`) then measure scheduling differences
instead of weight-draw noise.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.ledger import RunRow, get_ledger
from ..obs.tracing import get_tracer
from ..platform.cloud import CloudPlatform
from ..rng import spawn
from ..scheduling.registry import make_scheduler
from ..simulation.executor import execute_schedule, sample_weights
from ..workflow.dag import Workflow
from ..workflow.generators import generate
from .budgets import budget_grid
from .config import ExperimentConfig
from .metrics import RunRecord

__all__ = [
    "run_point",
    "run_sweep",
    "make_instances",
    "convergence_diagnostics",
    "BASELINE_ALGORITHMS",
]

#: Algorithms that ignore the budget; scheduled once with B = ∞.
BASELINE_ALGORITHMS = frozenset({"minmin", "heft"})


def convergence_diagnostics(
    values: Sequence[float], *, batch_size: int = 1, confidence_z: float = 1.96
) -> Dict[str, Any]:
    """Monte Carlo convergence of a sample mean, one point per batch.

    After every ``batch_size`` samples, records the running mean and the
    normal-approximation CI half-width ``z·s/√n`` (sample std, 0 while
    n < 2). Answers the §V-A protocol question "were 25 repetitions
    enough?": a flat running mean and a small final half-width say yes.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    running_mean: List[float] = []
    ci_halfwidth: List[float] = []
    total = 0.0
    total_sq = 0.0
    for i, value in enumerate(values):
        total += value
        total_sq += value * value
        n = i + 1
        if n % batch_size == 0 or n == len(values):
            mean = total / n
            if n > 1:
                var = max((total_sq - n * mean * mean) / (n - 1), 0.0)
                ci_halfwidth.append(confidence_z * math.sqrt(var / n))
            else:
                ci_halfwidth.append(0.0)
            running_mean.append(mean)
    return {
        "n": len(values),
        "batch_size": batch_size,
        "running_mean": running_mean,
        "ci_halfwidth": ci_halfwidth,
        "final_mean": running_mean[-1] if running_mean else 0.0,
        "final_ci_halfwidth": ci_halfwidth[-1] if ci_halfwidth else 0.0,
    }


def _record_point(
    wf: Workflow,
    algorithm: str,
    budget: float,
    result,
    sched_seconds: float,
    records: List[RunRecord],
    *,
    family: str,
    instance: int,
    sigma_ratio: float,
    budget_index: int,
) -> None:
    """Archive one sweep point (schedule + its reps) into the ledger."""
    ledger = get_ledger()
    if not ledger.enabled or not records:
        return
    makespans = [r.makespan for r in records]
    costs = [r.total_cost for r in records]
    n = len(records)
    batch = max(1, n // 5)
    ledger.record(
        RunRow(
            source="sweep",
            workflow=wf.name,
            family=family or wf.name,
            n_tasks=wf.n_tasks,
            algorithm=algorithm,
            budget=budget,
            sigma_ratio=sigma_ratio,
            planned_makespan=result.planned_makespan,
            planned_cost=result.planned_vm_cost,
            within_budget_plan=result.within_budget_plan,
            sim_makespan=sum(makespans) / n,
            sim_cost=sum(costs) / n,
            success_rate=sum(r.valid for r in records) / n,
            n_reps=n,
            n_vms=result.schedule.n_vms,
            sched_seconds=sched_seconds,
            extra={
                "instance": instance,
                "budget_index": budget_index,
                "makespan_convergence": convergence_diagnostics(
                    makespans, batch_size=batch
                ),
            },
        )
    )


def make_instances(config: ExperimentConfig) -> Dict[Tuple[str, int], Workflow]:
    """Generate the benchmark instances: ``(family, instance) → workflow``."""
    out: Dict[Tuple[str, int], Workflow] = {}
    for family in config.families:
        for instance, rng in enumerate(spawn(config.seed, config.n_instances)):
            out[(family, instance)] = generate(
                family,
                config.n_tasks,
                rng=rng,
                sigma_ratio=config.sigma_ratio,
                name=f"{family}-{config.n_tasks}-i{instance}",
            )
    return out


def run_point(
    wf: Workflow,
    platform: CloudPlatform,
    algorithm: str,
    budget: float,
    n_reps: int,
    rng,
    *,
    family: str = "",
    instance: int = 0,
    sigma_ratio: float = 0.0,
    budget_index: int = 0,
    dc_capacity: float = math.inf,
    weight_draws: Optional[Sequence[Dict[str, float]]] = None,
) -> List[RunRecord]:
    """Schedule once, execute ``n_reps`` stochastic runs, return records.

    ``weight_draws`` fixes the actual-weight realizations (one mapping per
    repetition) — used by :func:`run_sweep` for common random numbers; by
    default fresh draws are sampled from ``rng``.
    """
    scheduler = make_scheduler(algorithm)
    sched_budget = math.inf if algorithm in BASELINE_ALGORITHMS else budget
    with get_tracer().span(
        "experiments.run_point", family=family or wf.name,
        algorithm=algorithm, budget=budget, n_reps=n_reps,
    ) as point_span:
        t0 = time.perf_counter()
        result = scheduler.schedule(wf, platform, sched_budget)
        sched_seconds = time.perf_counter() - t0

        if weight_draws is not None and len(weight_draws) < n_reps:
            raise ValueError(
                f"need {n_reps} weight draws, got {len(weight_draws)}"
            )
        records: List[RunRecord] = []
        for rep, rep_rng in enumerate(spawn(rng, n_reps)):
            weights = (
                weight_draws[rep] if weight_draws is not None
                else sample_weights(wf, rep_rng)
            )
            run = execute_schedule(
                wf, platform, result.schedule, weights,
                dc_capacity=dc_capacity, validate=(rep == 0),
            )
            records.append(
                RunRecord(
                    family=family or wf.name,
                    n_tasks=wf.n_tasks,
                    instance=instance,
                    sigma_ratio=sigma_ratio,
                    algorithm=algorithm,
                    budget=budget,
                    budget_index=budget_index,
                    rep=rep,
                    makespan=run.makespan,
                    total_cost=run.total_cost,
                    n_vms=run.n_vms,
                    valid=run.respects_budget(budget),
                    sched_seconds=sched_seconds,
                )
            )
        point_span.set(sched_seconds=sched_seconds, n_vms=result.schedule.n_vms)
    _record_point(
        wf, algorithm, budget, result, sched_seconds, records,
        family=family, instance=instance, sigma_ratio=sigma_ratio,
        budget_index=budget_index,
    )
    return records


def run_sweep(
    config: ExperimentConfig,
    *,
    dc_capacity: float = math.inf,
    budget_points: Optional[Sequence[float]] = None,
) -> List[RunRecord]:
    """Full sweep: instances × budgets × algorithms × repetitions.

    Budgets are normalized per workflow (each instance gets its own
    ``B_min``-to-high grid) unless explicit ``budget_points`` are given.
    Budget indices are recorded as fractional positions via the budget value
    itself; figure builders group by grid position.
    """
    tracer = get_tracer()
    instances = make_instances(config)
    records: List[RunRecord] = []
    exec_streams = spawn(config.seed + 1, len(instances))
    stream_idx = 0
    for (family, instance), wf in instances.items():
        with tracer.span(
            "experiments.instance", family=family, instance=instance,
            n_tasks=wf.n_tasks,
        ):
            grid = (
                list(budget_points)
                if budget_points is not None
                else budget_grid(
                    wf, config.platform, config.budgets_per_workflow
                )
            )
            # common random numbers: one weight realization per repetition,
            # shared by every (algorithm, budget) cell of this instance
            instance_stream = exec_streams[stream_idx]
            stream_idx += 1
            draws = [
                sample_weights(wf, r)
                for r in spawn(instance_stream, config.n_reps)
            ]
            for algorithm in config.algorithms:
                for budget_index, budget in enumerate(grid):
                    records.extend(
                        run_point(
                            wf,
                            config.platform,
                            algorithm,
                            budget,
                            config.n_reps,
                            instance_stream,
                            family=family,
                            instance=instance,
                            sigma_ratio=config.sigma_ratio,
                            budget_index=budget_index,
                            dc_capacity=dc_capacity,
                            weight_draws=draws,
                        )
                    )
    return records
