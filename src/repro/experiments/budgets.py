"""Budget anchors: B_min, baseline cost and "high" budgets (§V-A).

The paper's budget axis runs from the *minimum* budget (the cheapest
possible schedule: every task on one VM of the cheapest category — the
green ``min_cost`` dot of Figure 1) to a *high* budget, "large enough to
enroll an unlimited number of VMs". The helpers here compute those anchors
per workflow with the deterministic simulator so every experiment sweeps
the same relative range the paper does.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..platform.cloud import CloudPlatform
from ..scheduling.budget import datacenter_reservation
from ..scheduling.heft import HeftScheduler
from ..scheduling.schedule import Schedule
from ..simulation.executor import evaluate_schedule
from ..workflow.dag import Workflow

__all__ = [
    "cheapest_schedule",
    "minimal_budget",
    "baseline_cost",
    "high_budget",
    "medium_budget",
    "budget_grid",
]


def cheapest_schedule(wf: Workflow, platform: CloudPlatform) -> Schedule:
    """All tasks sequentially on a single cheapest-category VM."""
    return Schedule(
        order=wf.topological_order,
        assignment={tid: 0 for tid in wf.tasks},
        categories={0: platform.cheapest},
    )


def minimal_budget(wf: Workflow, platform: CloudPlatform) -> float:
    """``B_min``: deterministic total cost of the cheapest schedule."""
    result = evaluate_schedule(wf, platform, cheapest_schedule(wf, platform))
    return result.total_cost


def baseline_cost(wf: Workflow, platform: CloudPlatform) -> float:
    """Deterministic total cost of the unconstrained HEFT schedule."""
    heft = HeftScheduler().schedule(wf, platform, math.inf)
    return evaluate_schedule(wf, platform, heft.schedule).total_cost


def high_budget(wf: Workflow, platform: CloudPlatform) -> float:
    """A budget "large enough to enroll an unlimited number of VMs".

    The budget-aware algorithms converge to their baselines once every task
    share covers the fastest VM; twice the baseline-HEFT cost plus the full
    reservations is comfortably past that point.
    """
    reserve = datacenter_reservation(wf, platform) + wf.n_tasks * max(
        cat.initial_cost for cat in platform.categories
    )
    return reserve + 2.0 * baseline_cost(wf, platform)


def medium_budget(wf: Workflow, platform: CloudPlatform) -> float:
    """The paper's "medium": halfway between ``B_min`` and the high budget."""
    return 0.5 * (minimal_budget(wf, platform) + high_budget(wf, platform))


def budget_grid(
    wf: Workflow,
    platform: CloudPlatform,
    n_points: int = 8,
    *,
    start_factor: float = 1.0,
    end_factor: float = 1.0,
) -> List[float]:
    """Linear budget axis from ``B_min × start_factor`` to ``B_high × end_factor``."""
    if n_points < 2:
        raise ValueError(f"need at least 2 budget points, got {n_points}")
    lo = minimal_budget(wf, platform) * start_factor
    hi = high_budget(wf, platform) * end_factor
    if hi <= lo:
        hi = lo * 1.5 + 1e-6
    return [float(b) for b in np.linspace(lo, hi, n_points)]
