"""Minimal-budget frontier study (§V-B discussion; extended version [8]).

"We now discuss the initial budget needed by the budget-aware algorithms to
achieve the minimal makespan returned by the baseline version. HEFTBUDG
needs a smaller initial budget than MIN-MINBUDG for MONTAGE, and a similar
one for CYBERSHAKE and LIGO. [...] the difference in minimal budgets
decreases sharply with the number of tasks for CYBERSHAKE and LIGO [which]
renders the workflow closer to a Bag of Tasks, and the priority mechanism
of HEFTBUDG becomes less useful."

This module computes, by bisection over the budget axis, the smallest
budget at which a budget-aware algorithm's deterministic makespan comes
within a tolerance of its baseline's — the quantity the paper calls
``B_max`` when defining the "medium" budget of Table III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..platform.cloud import CloudPlatform, PAPER_PLATFORM
from ..rng import spawn
from ..scheduling.registry import make_scheduler
from ..simulation.executor import evaluate_schedule
from ..workflow.dag import Workflow
from ..workflow.generators import generate
from .budgets import high_budget, minimal_budget

__all__ = ["FrontierPoint", "budget_to_match_baseline", "frontier_study",
           "render_frontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """Minimal matching budget of one algorithm on one workflow."""

    family: str
    n_tasks: int
    algorithm: str
    baseline: str
    baseline_makespan: float
    matching_budget: float
    b_min: float
    b_high: float

    @property
    def relative_position(self) -> float:
        """Where the frontier sits on the [B_min, B_high] axis (0..1)."""
        span = self.b_high - self.b_min
        if span <= 0:
            return 0.0
        return (self.matching_budget - self.b_min) / span


def budget_to_match_baseline(
    wf: Workflow,
    platform: CloudPlatform,
    algorithm: str,
    *,
    baseline: str = "",
    tolerance: float = 1.05,
    iterations: int = 18,
) -> FrontierPoint:
    """Bisect the smallest budget whose makespan is within ``tolerance`` ×
    the baseline's (deterministic, conservative weights)."""
    baseline = baseline or ("heft" if "heft" in algorithm else "minmin")
    base_sched = make_scheduler(baseline).schedule(wf, platform, math.inf)
    base_mk = evaluate_schedule(wf, platform, base_sched.schedule).makespan
    target = base_mk * tolerance

    scheduler = make_scheduler(algorithm)

    def makespan_at(budget: float) -> float:
        result = scheduler.schedule(wf, platform, budget)
        return evaluate_schedule(wf, platform, result.schedule).makespan

    lo = minimal_budget(wf, platform)
    hi = high_budget(wf, platform)
    # ensure the bracket is valid; widen once if needed
    if makespan_at(hi) > target:
        hi *= 2.0
    lo_mk = makespan_at(lo)
    if lo_mk <= target:
        hi = lo  # already matching at the minimum budget
    for _ in range(iterations):
        if hi <= lo * (1 + 1e-6):
            break
        mid = 0.5 * (lo + hi)
        if makespan_at(mid) <= target:
            hi = mid
        else:
            lo = mid
    return FrontierPoint(
        family=wf.name,
        n_tasks=wf.n_tasks,
        algorithm=algorithm,
        baseline=baseline,
        baseline_makespan=base_mk,
        matching_budget=hi,
        b_min=minimal_budget(wf, platform),
        b_high=high_budget(wf, platform),
    )


def frontier_study(
    *,
    families: Sequence[str] = ("cybershake", "ligo", "montage"),
    sizes: Sequence[int] = (30, 60, 90),
    algorithms: Sequence[str] = ("minmin_budg", "heft_budg"),
    sigma_ratio: float = 0.5,
    platform: CloudPlatform = PAPER_PLATFORM,
    seed: int = 2018,
) -> List[FrontierPoint]:
    """Frontier per (family, size, algorithm), one instance each."""
    points: List[FrontierPoint] = []
    streams = iter(spawn(seed, len(families) * len(sizes)))
    for family in families:
        for size in sizes:
            wf = generate(family, size, rng=next(streams),
                          sigma_ratio=sigma_ratio, name=f"{family}")
            for algorithm in algorithms:
                points.append(
                    budget_to_match_baseline(wf, platform, algorithm)
                )
    return points


def render_frontier(points: Sequence[FrontierPoint]) -> str:
    """Text table grouped by family/size."""
    import io

    out = io.StringIO()
    out.write("== minimal budget to match the baseline makespan ==\n")
    out.write(
        f"{'family':>12} {'n':>5} {'algorithm':>14} {'budget':>9} "
        f"{'axis pos.':>9} {'baseline mk':>12}\n"
    )
    for p in points:
        out.write(
            f"{p.family:>12} {p.n_tasks:>5} {p.algorithm:>14} "
            f"{p.matching_budget:>9.3f} {p.relative_position:>8.0%} "
            f"{p.baseline_makespan:>11.0f}s\n"
        )
    return out.getvalue()
