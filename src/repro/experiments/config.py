"""Experiment configuration objects.

The paper's full protocol (§V-A) is 3 families × 5 instances × sizes
{30, 60, 90} × 4 sigma ratios × ~11 budgets × 25 repetitions. Configs make
that declarative and let tests/benches run a scaled-down version of the
*same* pipeline; :meth:`ExperimentConfig.paper_scale` reproduces the paper's
numbers, :meth:`ExperimentConfig.smoke` keeps CI fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..platform.cloud import PAPER_PLATFORM, CloudPlatform

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one sweep.

    ``budgets_per_workflow`` points are placed between each workflow's own
    ``B_min`` and high budget (the paper's budget axis is per-workflow too —
    its x axes differ between subfigures).
    """

    families: Tuple[str, ...] = ("cybershake", "ligo", "montage")
    n_tasks: int = 90
    n_instances: int = 5
    sigma_ratio: float = 0.5
    budgets_per_workflow: int = 8
    n_reps: int = 25
    seed: int = 2018
    platform: CloudPlatform = PAPER_PLATFORM
    algorithms: Tuple[str, ...] = (
        "minmin", "heft", "minmin_budg", "heft_budg",
    )

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The §V-A protocol (minutes of CPU per figure)."""
        return replace(cls(), **overrides)

    @classmethod
    def smoke(cls, **overrides) -> "ExperimentConfig":
        """Down-scaled sweep for tests and quick looks (seconds of CPU)."""
        base = cls(
            n_tasks=30,
            n_instances=2,
            budgets_per_workflow=4,
            n_reps=5,
        )
        return replace(base, **overrides)

    def with_algorithms(self, *names: str) -> "ExperimentConfig":
        """Copy with a different algorithm set."""
        return replace(self, algorithms=tuple(names))
