"""Evaluation harness: configs, sweeps, figure/table regenerators."""

from .budgets import (
    baseline_cost,
    budget_grid,
    cheapest_schedule,
    high_budget,
    medium_budget,
    minimal_budget,
)
from .config import ExperimentConfig
from .figures import (
    FIGURE_ALGORITHMS,
    FigureData,
    SeriesPoint,
    build_figure,
    figure1,
    figure2,
    figure3,
    figure4,
)
from .metrics import Aggregate, RunRecord, aggregate, group_by
from .report import records_to_csv, render_cpu_table, render_figure
from .budget_frontier import (
    FrontierPoint,
    budget_to_match_baseline,
    frontier_study,
    render_frontier,
)
from .resilience import (
    ResiliencePoint,
    ResilienceStudy,
    render_resilience,
    resilience_sweep,
)
from .risk import Distribution, RiskAssessment, assess
from .runner import BASELINE_ALGORITHMS, make_instances, run_point, run_sweep
from .sigma_study import SigmaPoint, SigmaStudy, render_sigma_study, sigma_study
from .stats import (
    BootstrapCI,
    PairedComparison,
    bootstrap_ci,
    compare_algorithms,
    paired_comparison,
)
from .tables import CpuTimeCell, table2_rows, table3a, table3b

__all__ = [
    "Aggregate",
    "BASELINE_ALGORITHMS",
    "BootstrapCI",
    "CpuTimeCell",
    "Distribution",
    "FrontierPoint",
    "ExperimentConfig",
    "FIGURE_ALGORITHMS",
    "FigureData",
    "RiskAssessment",
    "ResiliencePoint",
    "ResilienceStudy",
    "RunRecord",
    "SeriesPoint",
    "SigmaPoint",
    "SigmaStudy",
    "PairedComparison",
    "aggregate",
    "bootstrap_ci",
    "compare_algorithms",
    "assess",
    "budget_to_match_baseline",
    "baseline_cost",
    "budget_grid",
    "build_figure",
    "cheapest_schedule",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "frontier_study",
    "group_by",
    "high_budget",
    "make_instances",
    "medium_budget",
    "minimal_budget",
    "records_to_csv",
    "render_cpu_table",
    "render_figure",
    "render_frontier",
    "render_resilience",
    "render_sigma_study",
    "resilience_sweep",
    "paired_comparison",
    "run_point",
    "run_sweep",
    "sigma_study",
    "table2_rows",
    "table3a",
    "table3b",
]
