"""Resilience study: success under VM crashes, with and without recovery.

The paper evaluates budget validity on a *reliable* platform; this study
asks the robustness question its cost model invites: **when VMs crash
mid-run, how often does a budget-aware schedule still finish, and does
recovering ever break the budget guarantee?**

For each (family, algorithm) pair one schedule is planned, then executed
under seeded :class:`~repro.faults.plan.FaultPlan` draws across a grid of
crash rates and recovery policies (``none`` measures the damage, the
others repair it via :func:`~repro.faults.runner.run_with_faults`). A run
*succeeds* when every task eventually executed **and** the full spend —
including rentals sunk into dead VMs — stayed within the reserved budget.

:func:`spot_resilience_sweep` is the spot-market variant: schedules are
planned spot-first on discounted preemptible capacity, fault plans are
correlated market revocation bursts
(:meth:`~repro.faults.spot.SpotScenario.sample_plan`), recoveries resume
from banked checkpoints and fall back to on-demand twins, and a
contingency-reserve axis (:class:`~repro.scheduling.contingency.
ContingencyScheduler`) maps the reserve-fraction × revocation-rate
cost/makespan/success frontier.

Every run lands in the active ledger (``source="faults"``, algorithm
labelled ``heft_budg+remap@0.1`` — spot cells
``heft_budg+retry@spot0.5r0.2``) so ``repro-exp ledger regress
--success-threshold`` can gate resilience in CI exactly like makespan and
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from typing import Any

from ..cluster import make_pool, parse_workers
from ..experiments.budgets import high_budget, minimal_budget
from ..faults.plan import FaultPlan
from ..faults.runner import OUTCOME_BUDGET_EXHAUSTED, run_with_faults
from ..faults.spot import CheckpointConfig, SpotScenario
from ..obs.ledger import RunRow, get_ledger
from ..platform.cloud import PAPER_PLATFORM, CloudPlatform
from ..platform.pricing import SpotMarket, add_spot_categories, spot_only
from ..rng import RngLike, spawn
from ..scheduling.contingency import RESERVE_SEPARATOR
from ..scheduling.registry import make_scheduler
from ..workflow.generators import generate

__all__ = ["ResiliencePoint", "ResilienceStudy", "render_resilience",
           "resilience_sweep", "spot_resilience_sweep"]


@dataclass(frozen=True)
class ResiliencePoint:
    """Aggregate outcome of one (family, algorithm, policy, rate) cell."""

    family: str
    n_tasks: int
    algorithm: str
    policy: str
    crash_rate: float
    budget: float
    n_runs: int
    n_success: int
    n_budget_exhausted: int
    mean_makespan: float
    mean_cost: float
    mean_faults: float
    #: Runs that *completed* while spending over the reserved budget — a
    #: breach of the recovery budget gate's discipline (refused runs'
    #: sunk spend does not count; see :func:`resilience_sweep`).
    n_over_budget: int
    #: Spot-sweep axes (defaults keep crash-sweep cells unchanged):
    #: market-wide revocation bursts per hour, withheld budget fraction,
    #: and whether the cell ran spot-first planning.
    preemption_rate: float = 0.0
    reserve: float = 0.0
    spot: bool = False

    @property
    def success_rate(self) -> float:
        """Fraction of runs where every task executed within budget."""
        return self.n_success / self.n_runs if self.n_runs else 0.0

    @property
    def label(self) -> str:
        """Ledger algorithm label, e.g. ``heft_budg+remap@0.1`` for crash
        cells or ``heft_budg+retry@spot0.5r0.2`` for spot cells."""
        if self.spot:
            return (f"{self.algorithm}+{self.policy}"
                    f"@spot{self.preemption_rate:g}r{self.reserve:g}")
        return f"{self.algorithm}+{self.policy}@{self.crash_rate:g}"


@dataclass
class ResilienceStudy:
    """All points of one :func:`resilience_sweep` invocation."""

    points: List[ResiliencePoint] = field(default_factory=list)

    def point(
        self, algorithm: str, policy: str, crash_rate: float
    ) -> ResiliencePoint:
        """The first point matching the cell; raises ``KeyError`` if absent."""
        for p in self.points:
            if (not p.spot and p.algorithm == algorithm and p.policy == policy
                    and abs(p.crash_rate - crash_rate) < 1e-12):
                return p
        raise KeyError(f"no point {algorithm}+{policy}@{crash_rate:g}")

    def spot_point(
        self, algorithm: str, policy: str, rate: float, reserve: float
    ) -> ResiliencePoint:
        """The first spot cell matching; raises ``KeyError`` if absent."""
        for p in self.points:
            if (p.spot and p.algorithm == algorithm and p.policy == policy
                    and abs(p.preemption_rate - rate) < 1e-12
                    and abs(p.reserve - reserve) < 1e-12):
                return p
        raise KeyError(
            f"no spot point {algorithm}+{policy}@spot{rate:g}r{reserve:g}"
        )


def _resilience_cell_task(task: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Execute all runs of one resilience cell (pickle-safe worker entry).

    ``task`` carries the pre-planned (workflow, schedule, budget) for the
    cell plus its dedicated slice of derived streams — the same streams
    the serial loop would have consumed, so outputs are bit-identical.
    Returns one plain dict per run; the parent does all ledger recording.

    A ``scenario`` key (a :class:`~repro.faults.spot.SpotScenario`) makes
    this a *spot* cell: fault plans are correlated revocation bursts, and
    the scenario's checkpoint policy plus the cell's ``max_replans`` ride
    into :func:`~repro.faults.runner.run_with_faults`.
    """
    wf = task["wf"]
    schedule = task["schedule"]
    budget = task["budget"]
    policy = task["policy"]
    rate = task["rate"]
    scenario: Optional[SpotScenario] = task.get("scenario")
    horizon = task["planned_makespan"] * task["horizon_factor"]
    runs: List[Dict[str, Any]] = []
    for stream in task["streams"]:
        if scenario is not None:
            plan = scenario.sample_plan(rng=stream, horizon=horizon)
        else:
            plan = FaultPlan.sample(
                schedule, rng=stream, horizon=horizon,
                crash_rate_per_hour=rate,
            )
        out = run_with_faults(
            wf, task["platform"], budget, plan,
            schedule=schedule, policy=None if policy == "none" else policy,
            rng=stream, max_attempts=task["max_attempts"],
            max_replans=task.get("max_replans"),
            checkpoint=scenario.checkpoint if scenario is not None else None,
        )
        runs.append({
            "success": out.success,
            "within_budget": out.within_budget(),
            "outcome": out.outcome,
            "makespan": out.makespan,
            "total_cost": out.total_cost,
            "n_faults": out.n_faults,
            "n_vms": out.result.n_vms,
            "n_recoveries": out.n_recoveries,
            "lost_cost": out.lost_cost,
            "n_preemptions": sum(
                1 for e in out.fault_events if e.kind == "vm.preempted"
            ),
        })
    return runs


def resilience_sweep(
    *,
    families: Sequence[str] = ("montage",),
    n_tasks: int = 30,
    algorithms: Sequence[str] = ("heft_budg",),
    policies: Sequence[str] = ("none", "remap"),
    crash_rates: Sequence[float] = (0.0, 0.1),
    n_runs: int = 5,
    budget_position: float = 0.5,
    sigma_ratio: float = 0.5,
    seed: int = 1,
    horizon_factor: float = 4.0,
    max_attempts: int = 5,
    max_replans: Optional[int] = None,
    platform: CloudPlatform = PAPER_PLATFORM,
    rng: RngLike = None,
    workers: Union[int, str] = 0,
) -> ResilienceStudy:
    """Run the crash-rate × policy grid and archive every run.

    ``crash_rates`` are per VM-hour; ``budget_position`` places the
    reserved budget on ``[B_min, B_high]``; ``horizon_factor`` scales the
    planned makespan into the window crashes may land in. ``rng``
    defaults to ``seed``, and every (cell, run) draws its own derived
    stream, so the sweep is deterministic end to end.

    ``workers > 1`` fans whole cells out to worker processes (a
    ``"host:port,host:port"`` node list fans them out to remote
    ``repro-exp worker`` nodes instead): planning stays in the parent,
    cell ``i`` receives stream slice ``[i·n_runs, (i+1)·n_runs)``
    exactly as the serial loop would, and the parent records every run
    — results are bit-identical to serial on either backend.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    ledger = get_ledger()
    study = ResilienceStudy()
    base_rng = rng if rng is not None else seed
    cells = [
        (family, algo, policy, rate)
        for family in families
        for algo in algorithms
        for policy in policies
        for rate in crash_rates
    ]
    # One stream per (cell, run): plans and weights never alias across cells.
    all_streams = spawn(base_rng, len(cells) * n_runs)

    planned: Dict[Tuple[str, str], Tuple[object, object, float, float]] = {}
    tasks: List[Dict[str, Any]] = []
    for i, (family, algo, policy, rate) in enumerate(cells):
        key = (family, algo)
        if key not in planned:
            wf = generate(family, n_tasks, rng=seed, sigma_ratio=sigma_ratio)
            b_min = minimal_budget(wf, platform)
            b_high = high_budget(wf, platform)
            budget = b_min + budget_position * (b_high - b_min)
            result = make_scheduler(algo).schedule(wf, platform, budget)
            planned[key] = (wf, result.schedule, budget,
                            result.planned_makespan)
        wf, schedule, budget, planned_makespan = planned[key]
        tasks.append({
            "wf": wf, "platform": platform, "schedule": schedule,
            "budget": budget, "planned_makespan": planned_makespan,
            "policy": policy, "rate": rate,
            "horizon_factor": horizon_factor, "max_attempts": max_attempts,
            "max_replans": max_replans,
            "streams": all_streams[i * n_runs:(i + 1) * n_runs],
        })

    backend = parse_workers(workers)
    if not backend.is_serial and len(tasks) > 1:
        with make_pool(backend, max_workers=len(tasks)) as pool:
            per_cell = pool.map(_resilience_cell_task, tasks)
    else:
        per_cell = [_resilience_cell_task(t) for t in tasks]

    for (family, algo, policy, rate), task, runs in zip(cells, tasks, per_cell):
        budget = task["budget"]
        successes = exhausted = over = 0
        makespans: List[float] = []
        costs: List[float] = []
        faults: List[int] = []
        for out in runs:
            ok = out["success"] and out["within_budget"]
            successes += int(ok)
            exhausted += int(out["outcome"] == OUTCOME_BUDGET_EXHAUSTED)
            # Completed runs that overran the budget: the validity breach
            # the budget gate exists to prevent. Refused recoveries
            # (budget_exhausted) may show sunk spend above budget — that
            # money was burned by the crash itself, not by a decision.
            over += int(out["success"] and not out["within_budget"])
            makespans.append(out["makespan"])
            costs.append(out["total_cost"])
            faults.append(out["n_faults"])
            if ledger.enabled:
                ledger.record(RunRow(
                    source="faults",
                    workflow=f"{family}-{n_tasks}",
                    family=family,
                    n_tasks=n_tasks,
                    algorithm=f"{algo}+{policy}@{rate:g}",
                    budget=budget,
                    sigma_ratio=sigma_ratio,
                    planned_makespan=task["planned_makespan"],
                    sim_makespan=out["makespan"],
                    sim_cost=out["total_cost"],
                    success_rate=1.0 if ok else 0.0,
                    n_reps=1,
                    n_vms=out["n_vms"],
                    outcome=out["outcome"],
                    n_faults=out["n_faults"],
                    extra={
                        "policy": policy,
                        "crash_rate": rate,
                        "n_recoveries": out["n_recoveries"],
                        "lost_cost": out["lost_cost"],
                    },
                ))
        study.points.append(ResiliencePoint(
            family=family,
            n_tasks=n_tasks,
            algorithm=algo,
            policy=policy,
            crash_rate=rate,
            budget=budget,
            n_runs=n_runs,
            n_success=successes,
            n_budget_exhausted=exhausted,
            mean_makespan=sum(makespans) / len(makespans),
            mean_cost=sum(costs) / len(costs),
            mean_faults=sum(faults) / len(faults),
            n_over_budget=over,
        ))
    return study


def spot_resilience_sweep(
    *,
    families: Sequence[str] = ("montage",),
    n_tasks: int = 30,
    algorithms: Sequence[str] = ("heft_budg",),
    policies: Sequence[str] = ("none", "retry"),
    preemption_rates: Sequence[float] = (0.0, 0.5),
    reserves: Sequence[float] = (0.0,),
    n_runs: int = 5,
    budget_position: float = 0.5,
    sigma_ratio: float = 0.5,
    seed: int = 1,
    horizon_factor: float = 4.0,
    max_attempts: int = 5,
    max_replans: Optional[int] = None,
    warning_s: float = 120.0,
    checkpoint: Optional[CheckpointConfig] = None,
    market: Optional[SpotMarket] = None,
    platform: CloudPlatform = PAPER_PLATFORM,
    rng: RngLike = None,
    workers: Union[int, str] = 0,
) -> ResilienceStudy:
    """Spot sweep: revocation rate × contingency reserve frontier.

    Each (family, algorithm, reserve) triple is planned **spot-first**: the
    platform gains discounted spot twins (one shared seeded
    :class:`~repro.platform.pricing.SpotMarket` trajectory per sweep, drawn
    from ``seed``) and planning sees *only* those twins
    (:func:`~repro.platform.pricing.spot_only`) — the cheap capacity whose
    correlated revocations this study stresses. A positive ``reserve``
    wraps the algorithm in a
    :class:`~repro.scheduling.contingency.ContingencyScheduler` so that
    fraction of the budget is withheld from planning and left as recovery
    headroom. Budgets are anchored on the *spot* planning platform so
    ``budget_position`` means the same thing at every reserve.

    Execution happens on the full spot-enabled platform (recoveries may
    fall back to on-demand twins); fault plans are correlated market-wide
    bursts (:meth:`~repro.faults.spot.SpotScenario.sample_plan`) with
    ``warning_s`` seconds of notice, and ``checkpoint`` (if given) lets
    preempted spot work resume from its last durable checkpoint.

    Aggregation, determinism, and worker fan-out follow
    :func:`resilience_sweep` exactly; ledger rows are labelled
    ``{algo}+{policy}@spot{rate:g}r{reserve:g}``.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    ledger = get_ledger()
    study = ResilienceStudy()
    base_rng = rng if rng is not None else seed
    # One market trajectory per sweep: every cell prices spot identically,
    # so the reserve axis is the only thing that moves between cells.
    spot_market = (market if market is not None
                   else SpotMarket.sample(rng=seed))
    exec_platform = add_spot_categories(platform, spot_market)
    plan_platform = spot_only(exec_platform)
    cells = [
        (family, algo, policy, rate, reserve)
        for family in families
        for algo in algorithms
        for policy in policies
        for rate in preemption_rates
        for reserve in reserves
    ]
    all_streams = spawn(base_rng, len(cells) * n_runs)

    planned: Dict[Tuple[str, str, float],
                  Tuple[object, object, float, float]] = {}
    tasks: List[Dict[str, Any]] = []
    for i, (family, algo, policy, rate, reserve) in enumerate(cells):
        key = (family, algo, reserve)
        if key not in planned:
            wf = generate(family, n_tasks, rng=seed, sigma_ratio=sigma_ratio)
            b_min = minimal_budget(wf, plan_platform)
            b_high = high_budget(wf, plan_platform)
            budget = b_min + budget_position * (b_high - b_min)
            name = (algo if reserve <= 0.0
                    else f"{algo}{RESERVE_SEPARATOR}{reserve:g}")
            result = make_scheduler(name).schedule(wf, plan_platform, budget)
            planned[key] = (wf, result.schedule, budget,
                            result.planned_makespan)
        wf, schedule, budget, planned_makespan = planned[key]
        scenario = SpotScenario(
            market=spot_market,
            preemption_rate_per_hour=rate,
            warning_s=warning_s,
            checkpoint=checkpoint,
        )
        tasks.append({
            "wf": wf, "platform": exec_platform, "schedule": schedule,
            "budget": budget, "planned_makespan": planned_makespan,
            "policy": policy, "rate": rate, "scenario": scenario,
            "horizon_factor": horizon_factor, "max_attempts": max_attempts,
            "max_replans": max_replans,
            "streams": all_streams[i * n_runs:(i + 1) * n_runs],
        })

    backend = parse_workers(workers)
    if not backend.is_serial and len(tasks) > 1:
        with make_pool(backend, max_workers=len(tasks)) as pool:
            per_cell = pool.map(_resilience_cell_task, tasks)
    else:
        per_cell = [_resilience_cell_task(t) for t in tasks]

    for (family, algo, policy, rate, reserve), task, runs in zip(
            cells, tasks, per_cell):
        budget = task["budget"]
        successes = exhausted = over = 0
        makespans: List[float] = []
        costs: List[float] = []
        faults: List[int] = []
        label = f"{algo}+{policy}@spot{rate:g}r{reserve:g}"
        for out in runs:
            ok = out["success"] and out["within_budget"]
            successes += int(ok)
            exhausted += int(out["outcome"] == OUTCOME_BUDGET_EXHAUSTED)
            over += int(out["success"] and not out["within_budget"])
            makespans.append(out["makespan"])
            costs.append(out["total_cost"])
            faults.append(out["n_faults"])
            if ledger.enabled:
                ledger.record(RunRow(
                    source="faults",
                    workflow=f"{family}-{n_tasks}",
                    family=family,
                    n_tasks=n_tasks,
                    algorithm=label,
                    budget=budget,
                    sigma_ratio=sigma_ratio,
                    planned_makespan=task["planned_makespan"],
                    sim_makespan=out["makespan"],
                    sim_cost=out["total_cost"],
                    success_rate=1.0 if ok else 0.0,
                    n_reps=1,
                    n_vms=out["n_vms"],
                    outcome=out["outcome"],
                    n_faults=out["n_faults"],
                    extra={
                        "policy": policy,
                        "preemption_rate": rate,
                        "reserve": reserve,
                        "n_recoveries": out["n_recoveries"],
                        "lost_cost": out["lost_cost"],
                        "n_preemptions": out["n_preemptions"],
                    },
                ))
        study.points.append(ResiliencePoint(
            family=family,
            n_tasks=n_tasks,
            algorithm=algo,
            policy=policy,
            crash_rate=0.0,
            budget=budget,
            n_runs=n_runs,
            n_success=successes,
            n_budget_exhausted=exhausted,
            mean_makespan=sum(makespans) / len(makespans),
            mean_cost=sum(costs) / len(costs),
            mean_faults=sum(faults) / len(faults),
            n_over_budget=over,
            preemption_rate=rate,
            reserve=reserve,
            spot=True,
        ))
    return study


def render_resilience(study: ResilienceStudy) -> str:
    """Human-readable table of a resilience study."""
    lines = [
        f"{'cell':<36s} {'succ':>6s} {'b_exh':>5s} {'over':>4s} "
        f"{'makespan':>9s} {'cost':>8s} {'faults':>6s}"
    ]
    for p in study.points:
        cell = f"{p.family}/{p.n_tasks} {p.label}"
        lines.append(
            f"{cell:<36.36s} {p.success_rate:>5.0%} "
            f"{p.n_budget_exhausted:>5d} {p.n_over_budget:>4d} "
            f"{p.mean_makespan:>9.1f} {p.mean_cost:>8.4f} "
            f"{p.mean_faults:>6.1f}"
        )
    lines.append(
        f"{len(study.points)} cell(s); 'over' counts completed runs whose "
        f"spend (incl. lost VMs) exceeded the budget"
    )
    return "\n".join(lines)
