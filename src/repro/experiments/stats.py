"""Statistical comparison of schedulers (bootstrap CIs, paired win rates).

The paper reports mean ± std curves; deciding "who wins, by roughly what
factor" — the reproduction criterion — benefits from a little more rigor.
This module provides:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for any
  statistic of a sample;
* :func:`paired_comparison` — given two algorithms' records over the *same*
  (instance, budget index, repetition) grid, the per-pair makespan ratio
  distribution, its bootstrap CI, and the win rate;
* :func:`compare_algorithms` — convenience wrapper over a record list.

All resampling is seeded, so reported intervals are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..rng import RngLike, as_generator
from .metrics import RunRecord

__all__ = ["BootstrapCI", "PairedComparison", "bootstrap_ci",
           "paired_comparison", "compare_algorithms"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapCI:
    """Percentile bootstrap CI of ``statistic`` over ``samples``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    gen = as_generator(rng)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[gen.integers(0, data.size, size=data.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(statistic(data)),
        low=float(np.percentile(estimates, 100 * alpha)),
        high=float(np.percentile(estimates, 100 * (1 - alpha))),
        confidence=confidence,
        n_resamples=n_resamples,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired verdict of algorithm A vs B on a shared experimental grid.

    ``ratio_ci`` is the bootstrap CI of the mean makespan ratio A/B
    (< 1 means A is faster); ``win_rate`` the fraction of pairs where A's
    makespan is strictly smaller; ``n_pairs`` the grid size.
    """

    algorithm_a: str
    algorithm_b: str
    n_pairs: int
    ratio_ci: BootstrapCI
    win_rate: float

    @property
    def a_significantly_faster(self) -> bool:
        """True when the whole CI sits below ratio 1."""
        return self.ratio_ci.high < 1.0

    @property
    def b_significantly_faster(self) -> bool:
        """True when the whole CI sits above ratio 1."""
        return self.ratio_ci.low > 1.0

    def summary(self) -> str:
        """One-line verdict."""
        ci = self.ratio_ci
        verdict = (
            f"{self.algorithm_a} faster" if self.a_significantly_faster
            else f"{self.algorithm_b} faster" if self.b_significantly_faster
            else "statistical tie"
        )
        return (
            f"{self.algorithm_a} vs {self.algorithm_b}: mean makespan ratio "
            f"{ci.estimate:.3f} [{ci.low:.3f}, {ci.high:.3f}] over "
            f"{self.n_pairs} pairs, win rate {self.win_rate:.0%} — {verdict}"
        )


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    *,
    name_a: str = "A",
    name_b: str = "B",
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> PairedComparison:
    """Compare paired makespan samples (same experimental conditions)."""
    if len(a) != len(b):
        raise ValueError(f"unpaired samples: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("no pairs to compare")
    ratios = np.asarray(a, dtype=float) / np.asarray(b, dtype=float)
    ci = bootstrap_ci(
        ratios, np.mean, confidence=confidence,
        n_resamples=n_resamples, rng=rng,
    )
    wins = float(np.mean(np.asarray(a) < np.asarray(b)))
    return PairedComparison(
        algorithm_a=name_a,
        algorithm_b=name_b,
        n_pairs=len(a),
        ratio_ci=ci,
        win_rate=wins,
    )


def compare_algorithms(
    records: Iterable[RunRecord],
    algorithm_a: str,
    algorithm_b: str,
    *,
    metric: str = "makespan",
    confidence: float = 0.95,
    rng: RngLike = None,
) -> PairedComparison:
    """Pair two algorithms' records by (family, instance, budget_index, rep).

    Records missing their counterpart are dropped; at least one complete
    pair is required.
    """
    def key(r: RunRecord) -> Tuple:
        return (r.family, r.n_tasks, r.instance, r.budget_index, r.rep)

    table: Dict[Tuple, Dict[str, float]] = {}
    for r in records:
        if r.algorithm in (algorithm_a, algorithm_b):
            table.setdefault(key(r), {})[r.algorithm] = getattr(r, metric)
    a_vals: List[float] = []
    b_vals: List[float] = []
    for cell in table.values():
        if algorithm_a in cell and algorithm_b in cell:
            a_vals.append(cell[algorithm_a])
            b_vals.append(cell[algorithm_b])
    return paired_comparison(
        a_vals, b_vals, name_a=algorithm_a, name_b=algorithm_b,
        confidence=confidence, rng=rng,
    )
