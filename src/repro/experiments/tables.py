"""Table regenerators (Tables II and III of the paper).

* :func:`table2_rows` prints the platform constants this reproduction uses
  for the paper's Table II (several cells are illegible in the HAL scan —
  see DESIGN.md §4 for the choices).
* :func:`table3a` measures scheduling CPU time per algorithm for a
  MONTAGE workflow at the paper's "low" (B_min), "medium" and "high"
  budgets — Table III(a).
* :func:`table3b` measures CPU time vs workflow size at a high budget —
  Table III(b).

Wall-clock numbers obviously differ from the authors' 2018 laptop; the
*relationships* are what the reproduction checks: the refined variants cost
orders of magnitude more than the one-pass algorithms, and MONTAGE is the
most expensive family to schedule.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..platform.cloud import CloudPlatform, PAPER_PLATFORM
from ..rng import spawn
from ..scheduling.registry import make_scheduler
from ..units import GB
from ..workflow.generators import generate
from .budgets import high_budget, medium_budget, minimal_budget
from .runner import BASELINE_ALGORITHMS

__all__ = ["CpuTimeCell", "table2_rows", "table3a", "table3b"]


@dataclass(frozen=True)
class CpuTimeCell:
    """mean ± std (and median) scheduling CPU seconds for one cell."""

    algorithm: str
    label: str
    mean: float
    std: float
    median: float
    n: int


def table2_rows(platform: CloudPlatform = PAPER_PLATFORM) -> List[Tuple[str, str]]:
    """(parameter, value) rows of the platform constants (Table II)."""
    rows: List[Tuple[str, str]] = [
        ("categories", str(platform.n_categories)),
        ("bandwidth", f"{platform.bandwidth / 1e6:.0f} MB/s"),
        ("transfer cost", f"${platform.transfer_cost_per_byte * GB:.3f} per GB"),
        ("storage cost", f"${platform.storage_cost_per_byte_month * GB:.3f} per GB-month"),
    ]
    for cat in platform.categories:
        rows.append(
            (
                f"{cat.name}",
                f"speed {cat.speed / 1e9:.1f} Gflop/s, ${cat.hourly_cost:.4f}/h, "
                f"setup ${cat.initial_cost:.3f} / {cat.boot_time:.0f}s boot",
            )
        )
    return rows


def _time_algorithm(
    algorithm: str,
    wf,
    platform: CloudPlatform,
    budget: float,
    repeats: int,
) -> Tuple[float, float, float]:
    """(mean, std, median) CPU seconds over ``repeats`` scheduling runs."""
    scheduler = make_scheduler(algorithm)
    sched_budget = math.inf if algorithm in BASELINE_ALGORITHMS else budget
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        scheduler.schedule(wf, platform, sched_budget)
        samples.append(time.perf_counter() - t0)
    mean = statistics.fmean(samples)
    std = statistics.pstdev(samples) if len(samples) > 1 else 0.0
    return mean, std, statistics.median(samples)


def table3a(
    *,
    family: str = "montage",
    n_tasks: int = 90,
    algorithms: Sequence[str] = (
        "minmin", "heft", "minmin_budg", "heft_budg", "bdt", "cg",
    ),
    platform: CloudPlatform = PAPER_PLATFORM,
    repeats: int = 5,
    seed: int = 2018,
) -> Dict[str, List[CpuTimeCell]]:
    """Table III(a): CPU time per budget level ("low"/"medium"/"high")."""
    (rng,) = spawn(seed, 1)
    wf = generate(family, n_tasks, rng=rng, sigma_ratio=0.5)
    budgets = {
        "low": minimal_budget(wf, platform),
        "medium": medium_budget(wf, platform),
        "high": high_budget(wf, platform),
    }
    out: Dict[str, List[CpuTimeCell]] = {}
    for label, budget in budgets.items():
        cells: List[CpuTimeCell] = []
        for algorithm in algorithms:
            mean, std, median = _time_algorithm(
                algorithm, wf, platform, budget, repeats
            )
            cells.append(CpuTimeCell(algorithm, label, mean, std, median, repeats))
        out[label] = cells
    return out


def table3b(
    *,
    family: str = "montage",
    sizes: Sequence[int] = (30, 60, 90, 400),
    algorithms: Sequence[str] = (
        "minmin", "heft", "minmin_budg", "heft_budg", "bdt", "cg",
    ),
    platform: CloudPlatform = PAPER_PLATFORM,
    repeats: int = 3,
    seed: int = 2018,
) -> Dict[int, List[CpuTimeCell]]:
    """Table III(b): CPU time vs workflow size at a high budget."""
    out: Dict[int, List[CpuTimeCell]] = {}
    for size, rng in zip(sizes, spawn(seed, len(sizes))):
        wf = generate(family, size, rng=rng, sigma_ratio=0.5)
        budget = high_budget(wf, platform)
        cells: List[CpuTimeCell] = []
        for algorithm in algorithms:
            mean, std, median = _time_algorithm(
                algorithm, wf, platform, budget, repeats
            )
            cells.append(
                CpuTimeCell(algorithm, f"n={size}", mean, std, median, repeats)
            )
        out[size] = cells
    return out
