"""Figure regenerators (Figures 1-4 of the paper).

Each ``figureN`` function runs the corresponding sweep and returns a
:class:`FigureData`: per workflow family, per algorithm, one series over the
budget axis with the metrics that figure plots. The paper's plots are
reproduced as data series (this library is plotting-agnostic); the
``repro-exp`` CLI and :mod:`repro.experiments.report` render them as text.

Figure → content map (all with 90-task workflows in the paper):

* **Figure 1**: MIN-MIN, HEFT, MIN-MINBUDG, HEFTBUDG — makespan / cost /
  #VMs vs initial budget.
* **Figure 2**: HEFT, HEFTBUDG, HEFTBUDG+, HEFTBUDG+INV — same metrics.
* **Figure 3**: MIN-MINBUDG, HEFTBUDG, BDT, CG — makespan / fraction of
  valid (budget-respecting) runs / spent-vs-given cost.
* **Figure 4**: HEFTBUDG+, HEFTBUDG+INV, CG+ — makespan vs budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from .config import ExperimentConfig
from .metrics import Aggregate, RunRecord, aggregate, group_by
from .runner import run_sweep

__all__ = [
    "SeriesPoint",
    "FigureData",
    "build_figure",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "FIGURE_ALGORITHMS",
]

FIGURE_ALGORITHMS: Dict[str, Tuple[str, ...]] = {
    "figure1": ("minmin", "heft", "minmin_budg", "heft_budg"),
    "figure2": ("heft", "heft_budg", "heft_budg_plus", "heft_budg_plus_inv"),
    "figure3": ("minmin_budg", "heft_budg", "bdt", "cg"),
    "figure4": ("heft_budg_plus", "heft_budg_plus_inv", "cg_plus"),
}


@dataclass(frozen=True)
class SeriesPoint:
    """One budget point of one algorithm's series."""

    budget_mean: float
    stats: Aggregate


@dataclass
class FigureData:
    """All series of one figure: ``(family, algorithm) → [SeriesPoint]``."""

    name: str
    config: ExperimentConfig
    series: Dict[Tuple[str, str], List[SeriesPoint]] = field(default_factory=dict)
    records: List[RunRecord] = field(default_factory=list)

    def families(self) -> List[str]:
        """Families present, in config order."""
        return [f for f in self.config.families]

    def algorithms(self) -> List[str]:
        """Algorithms present, in config order."""
        return [a for a in self.config.algorithms]

    def get(self, family: str, algorithm: str) -> List[SeriesPoint]:
        """Series for one (family, algorithm) panel."""
        return self.series[(family, algorithm)]


def build_figure(name: str, config: ExperimentConfig) -> FigureData:
    """Run the sweep for ``config`` and fold records into figure series.

    Records are grouped by (family, algorithm, budget grid index) — budget
    axes are per-workflow, so the x value plotted is the mean budget at that
    grid index across instances, as in the paper's per-type panels.
    """
    records = run_sweep(config)
    data = FigureData(name=name, config=config, records=records)
    groups = group_by(records, "family", "algorithm", "budget_index")
    # Deterministic panel order: family, algorithm from config, index.
    for family in config.families:
        for algorithm in config.algorithms:
            points: List[SeriesPoint] = []
            indices = sorted(
                idx
                for (fam, alg, idx) in groups
                if fam == family and alg == algorithm
            )
            for idx in indices:
                recs = groups[(family, algorithm, idx)]
                budget_mean = sum(r.budget for r in recs) / len(recs)
                points.append(SeriesPoint(budget_mean, aggregate(recs)))
            data.series[(family, algorithm)] = points
    return data


def _figure(name: str, config: Optional[ExperimentConfig]) -> FigureData:
    cfg = config or ExperimentConfig.paper_scale()
    cfg = replace(cfg, algorithms=FIGURE_ALGORITHMS[name])
    return build_figure(name, cfg)


def figure1(config: Optional[ExperimentConfig] = None) -> FigureData:
    """Budget-aware vs baseline MIN-MIN/HEFT (paper Figure 1)."""
    return _figure("figure1", config)


def figure2(config: Optional[ExperimentConfig] = None) -> FigureData:
    """Refined HEFTBUDG variants (paper Figure 2)."""
    return _figure("figure2", config)


def figure3(config: Optional[ExperimentConfig] = None) -> FigureData:
    """Comparison with BDT and CG (paper Figure 3)."""
    return _figure("figure3", config)


def figure4(config: Optional[ExperimentConfig] = None) -> FigureData:
    """Refined variants vs CG+ (paper Figure 4)."""
    return _figure("figure4", config)
