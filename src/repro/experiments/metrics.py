"""Experiment records and their aggregation.

One :class:`RunRecord` per simulated execution; :func:`aggregate` folds the
25-repetition protocol of §V-A into the mean ± std the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["RunRecord", "Aggregate", "aggregate", "group_by"]


@dataclass(frozen=True)
class RunRecord:
    """One execution of one schedule under sampled weights."""

    family: str
    n_tasks: int
    instance: int
    sigma_ratio: float
    algorithm: str
    budget: float
    budget_index: int
    rep: int
    makespan: float
    total_cost: float
    n_vms: int
    valid: bool
    sched_seconds: float


@dataclass(frozen=True)
class Aggregate:
    """Mean ± std summary of a group of runs (one figure point)."""

    n: int
    makespan_mean: float
    makespan_std: float
    cost_mean: float
    cost_std: float
    n_vms_mean: float
    n_vms_std: float
    valid_fraction: float
    sched_seconds_mean: float
    sched_seconds_std: float


def aggregate(records: Sequence[RunRecord]) -> Aggregate:
    """Fold run records into one figure point."""
    if not records:
        raise ValueError("cannot aggregate zero records")
    mk = np.array([r.makespan for r in records])
    cost = np.array([r.total_cost for r in records])
    vms = np.array([r.n_vms for r in records], dtype=float)
    cpu = np.array([r.sched_seconds for r in records])
    valid = np.array([r.valid for r in records], dtype=float)
    return Aggregate(
        n=len(records),
        makespan_mean=float(mk.mean()),
        makespan_std=float(mk.std()),
        cost_mean=float(cost.mean()),
        cost_std=float(cost.std()),
        n_vms_mean=float(vms.mean()),
        n_vms_std=float(vms.std()),
        valid_fraction=float(valid.mean()),
        sched_seconds_mean=float(cpu.mean()),
        sched_seconds_std=float(cpu.std()),
    )


def group_by(
    records: Iterable[RunRecord], *keys: str
) -> Dict[Tuple, List[RunRecord]]:
    """Group records by attribute names, preserving insertion order."""
    groups: Dict[Tuple, List[RunRecord]] = {}
    for record in records:
        key = tuple(getattr(record, k) for k in keys)
        groups.setdefault(key, []).append(record)
    return groups
