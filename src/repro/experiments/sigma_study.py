"""Sigma-impact study (§V-B; figures in the paper's extended version [8]).

The paper varies the weight uncertainty σ/w̄ over {25, 50, 75, 100}% and
reports that (i) a larger σ requires a larger budget for the same makespan,
and (ii) the budget stays respected "even in scenarios where task weights
can be twice their mean value". This module regenerates that study: for
each family and each σ ratio it re-derives the per-σ budget axis (B_min
inflates with σ because planning weights are ``w̄+σ``), runs the sweep at a
fixed *relative* budget position, and reports makespan, cost and validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..platform.cloud import CloudPlatform, PAPER_PLATFORM
from ..rng import spawn
from ..workflow.generators import generate
from .budgets import high_budget, minimal_budget
from .metrics import Aggregate, RunRecord, aggregate
from .runner import run_point

__all__ = ["SigmaPoint", "SigmaStudy", "sigma_study", "render_sigma_study"]

#: The paper's protocol values.
PAPER_SIGMA_RATIOS = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class SigmaPoint:
    """One (family, sigma) cell of the study."""

    family: str
    sigma_ratio: float
    budget: float
    b_min: float
    stats: Aggregate


@dataclass
class SigmaStudy:
    """All cells plus the raw records."""

    points: List[SigmaPoint] = field(default_factory=list)
    records: List[RunRecord] = field(default_factory=list)

    def get(self, family: str, sigma_ratio: float) -> SigmaPoint:
        """Cell lookup."""
        for p in self.points:
            if p.family == family and p.sigma_ratio == sigma_ratio:
                return p
        raise KeyError((family, sigma_ratio))

    def families(self) -> List[str]:
        """Families present, in insertion order."""
        seen: List[str] = []
        for p in self.points:
            if p.family not in seen:
                seen.append(p.family)
        return seen

    def sigmas(self) -> List[float]:
        """Sigma ratios present, ascending."""
        return sorted({p.sigma_ratio for p in self.points})


def sigma_study(
    *,
    families: Sequence[str] = ("cybershake", "ligo", "montage"),
    n_tasks: int = 90,
    sigma_ratios: Sequence[float] = PAPER_SIGMA_RATIOS,
    budget_position: float = 0.4,
    algorithm: str = "heft_budg",
    n_reps: int = 25,
    platform: CloudPlatform = PAPER_PLATFORM,
    seed: int = 2018,
) -> SigmaStudy:
    """Run the study.

    ``budget_position`` places the budget at ``B_min + p·(B_high − B_min)``
    *of each sigma's own axis*, so the comparison isolates the effect of
    uncertainty rather than of a shifting feasibility frontier.
    """
    if not 0.0 <= budget_position <= 1.0:
        raise ValueError(f"budget_position must be in [0,1], got {budget_position}")
    study = SigmaStudy()
    streams = iter(spawn(seed, len(families) * (1 + len(sigma_ratios))))
    for family in families:
        # §V-A protocol: one generated DAG per family, re-used across sigma
        # ratios (weight means fixed, only σ varies).
        base = generate(family, n_tasks, rng=next(streams), sigma_ratio=0.0)
        for ratio in sigma_ratios:
            wf = base.with_sigma_ratio(ratio)
            b_min = minimal_budget(wf, platform)
            b_high = high_budget(wf, platform)
            budget = b_min + budget_position * (b_high - b_min)
            records = run_point(
                wf, platform, algorithm, budget, n_reps, next(streams),
                family=family, sigma_ratio=ratio,
            )
            study.records.extend(records)
            study.points.append(
                SigmaPoint(family, ratio, budget, b_min, aggregate(records))
            )
    return study


def render_sigma_study(study: SigmaStudy) -> str:
    """Text table: one block per family, one row per sigma."""
    import io

    out = io.StringIO()
    out.write("== sigma-impact study (HEFTBUDG, fixed relative budget) ==\n")
    for family in study.families():
        out.write(f"\n-- {family} --\n")
        out.write(
            f"{'sigma/mean':>10} {'B_min':>9} {'budget':>9} "
            f"{'makespan':>14} {'cost':>14} {'valid':>7}\n"
        )
        for ratio in study.sigmas():
            p = study.get(family, ratio)
            s = p.stats
            out.write(
                f"{ratio:>10.2f} {p.b_min:>9.3f} {p.budget:>9.3f} "
                f"{s.makespan_mean:>8.0f}±{s.makespan_std:<5.0f} "
                f"{s.cost_mean:>8.3f}±{s.cost_std:<5.3f} "
                f"{100 * s.valid_fraction:>6.0f}%\n"
            )
    return out.getvalue()
