"""repro.obs — zero-dependency observability: tracing, logs, exporters.

All stdlib-only:

* :mod:`repro.obs.tracing` — nested wall-clock spans, per-task scheduler
  :class:`DecisionRecord`\\ s, counters; a process-global
  :class:`NullTracer` keeps instrumentation free when disabled.
* :mod:`repro.obs.ledger` — persistent SQLite run archive (one row per
  schedule/simulate/service run) with baseline/regression helpers; a
  process-global :class:`NullLedger` keeps archiving free when disabled.
* :mod:`repro.obs.events` — thread-safe in-process pub/sub bus for
  job/run lifecycle events, with bounded history replay (backs the
  service's Server-Sent-Events endpoints).
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  `ui.perfetto.dev <https://ui.perfetto.dev>`_) rendering both wall-clock
  spans and the simulated per-VM timeline, plus JSONL decision logs.
* :mod:`repro.obs.logging` — structured ``key=value`` / JSON-lines
  logging under the ``repro`` logger tree.
* :mod:`repro.obs.prometheus` — text exposition of
  :class:`~repro.service.metrics.MetricsRegistry` snapshots.
* :mod:`repro.obs.sketch` — mergeable streaming quantile sketch whose
  percentiles are bit-identical however the stream was sharded.
* :mod:`repro.obs.stages` — request-lifecycle stage timing
  (:data:`STAGES`) whose segments partition a request's wall time.
* :mod:`repro.obs.slo` — declarative SLO targets with multi-window burn
  rates, backing ``GET /v1/slo`` and ``repro-exp slo``.
* :mod:`repro.obs.profiler` — sampling stack profiler with
  collapsed-stack export (``repro-exp profile``).

See docs/OBSERVABILITY.md for the full tour.
"""

from typing import Any

from .events import Event, EventBus, Subscription
from .ledger import (
    NullLedger,
    RunLedger,
    RunRow,
    get_ledger,
    set_ledger,
    use_ledger,
)
from .logging import configure_logging, get_logger
from .profiler import SamplingProfiler
from .prometheus import render_prometheus
from .sketch import QuantileSketch
from .slo import SLOMonitor, SLOTarget, report_from_rows
from .stages import STAGES, StageTimings
from .tracing import (
    DecisionRecord,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

# Exporter names resolve lazily: repro.obs.export depends on
# repro.simulation, whose modules themselves import repro.obs.tracing —
# importing it here eagerly would close an import cycle.
_EXPORT_NAMES = frozenset(
    (
        "decision_log_lines",
        "simulation_events",
        "to_chrome_trace",
        "tracer_events",
        "write_chrome_trace",
        "write_decision_log",
    )
)


def __getattr__(name: str) -> Any:
    if name in _EXPORT_NAMES:
        from . import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DecisionRecord",
    "Event",
    "EventBus",
    "NullLedger",
    "NullTracer",
    "QuantileSketch",
    "RunLedger",
    "RunRow",
    "SLOMonitor",
    "SLOTarget",
    "STAGES",
    "SamplingProfiler",
    "Span",
    "StageTimings",
    "Subscription",
    "Tracer",
    "configure_logging",
    "decision_log_lines",
    "get_ledger",
    "get_logger",
    "get_tracer",
    "render_prometheus",
    "report_from_rows",
    "set_ledger",
    "set_tracer",
    "simulation_events",
    "to_chrome_trace",
    "tracer_events",
    "use_ledger",
    "use_tracer",
    "write_chrome_trace",
    "write_decision_log",
]
