"""Per-request stage latency decomposition (boundary-stamp recorder).

Every request that enters the service crosses a fixed sequence of
boundaries: admission gates (rate → estimate → reserve), the priority
queue, optional batching, compute, cache settle, and budget
reconciliation. :class:`StageTimings` records one monotonic timestamp
per boundary and attributes the elapsed interval *since the previous
boundary* to the stage that just finished. Because the segments
partition the request's wall clock with no gaps or overlaps, the stage
values always sum to the recorded wall time (up to float addition) —
the invariant the CI ``obs-gate`` asserts on every ledger row.

A stage marked twice (a retried ``execute``, say) accumulates. Stages
that a request never crosses (``batched`` on an unbatched service,
``cache`` on a miss) are simply absent from the dict — absence means
"this request did not pass through that stage", not zero cost.

The recorder is intentionally lock-free: a request's stages are marked
by one thread at a time (submit thread through the admission gates,
then the dispatcher thread from ``queued`` onward), with the engine's
job registry providing the happens-before edge at the handoff.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

__all__ = ["STAGES", "StageTimings"]

#: Canonical stage order for docs, dashboards and Prometheus series.
STAGES = (
    "admit",      # rate-limit gate (token bucket)
    "estimate",   # tiered cost estimation
    "reserve",    # budget reserve + enqueue
    "queued",     # waiting in the priority queue until dispatch
    "batched",    # spec-family batcher compute (batching services)
    "execute",    # scheduling + Monte Carlo evaluation
    "cache",      # response-cache hit path (coalesced waits included)
    "reconcile",  # estimate-vs-actual budget settle
)


class StageTimings:
    """Boundary-stamped stage decomposition for one request.

    Parameters
    ----------
    clock:
        Monotonic seconds source; injectable for tests. The wall-clock
        epoch of the first boundary is captured separately so offline
        consumers (ledger readers) can window rows by real time.
    """

    __slots__ = ("_clock", "_t0", "_last", "started_epoch_s", "stages")

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._clock = clock
        self._t0 = clock()
        self._last = self._t0
        self.started_epoch_s = time.time()
        self.stages: Dict[str, float] = {}

    def mark(self, stage: str) -> float:
        """Close the segment since the previous boundary as ``stage``.

        Returns the accumulated seconds attributed to ``stage`` so far.
        """
        now = self._clock()
        self.stages[stage] = (
            self.stages.get(stage, 0.0) + (now - self._last)
        )
        self._last = now
        return self.stages[stage]

    @property
    def wall_s(self) -> float:
        """Seconds from construction to the latest boundary."""
        return self._last - self._t0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot for ledger rows and SSE events."""
        return {
            "stages": dict(self.stages),
            "wall_s": self.wall_s,
            "started_epoch_s": self.started_epoch_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v:.6f}" for k, v in self.stages.items())
        return f"StageTimings({inner})"
