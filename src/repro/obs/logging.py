"""Structured logging for the repro stack (stdlib ``logging`` only).

One logger hierarchy rooted at ``"repro"``, two interchangeable line
formats: a human ``key=value`` text form and a machine JSON form (one
object per line, ready for ingestion). Extra fields are passed through
``logging``'s ``extra=`` mechanism and surface in both formats::

    from repro.obs.logging import configure_logging, get_logger

    configure_logging(level="info", json_mode=True)
    log = get_logger("service")
    log.info("request served", extra={"fields": {"status": 200, "ms": 1.2}})

Only ``extra={"fields": {...}}`` is treated as structured payload — this
avoids colliding with ``LogRecord``'s reserved attribute names.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
from typing import Any, Dict, Mapping, Optional, TextIO

__all__ = [
    "ROOT_LOGGER_NAME",
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def _fields_of(record: logging.LogRecord) -> Mapping[str, Any]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, Mapping) else {}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, structured fields."""

    def format(self, record: logging.LogRecord) -> str:
        """Serialize ``record`` (and its ``fields``) as one JSON line."""
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_fields_of(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human-oriented: ``HH:MM:SS level logger: msg key=value ...``."""

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record`` as a single human-readable text line."""
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        out = io.StringIO()
        out.write(
            f"{stamp} {record.levelname.lower():<7s} {record.name}: "
            f"{record.getMessage()}"
        )
        for key, value in _fields_of(record).items():
            out.write(f" {key}={value}")
        if record.exc_info:
            out.write("\n" + self.formatException(record.exc_info))
        return out.getvalue()


def configure_logging(
    *,
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    Idempotent: existing repro handlers are replaced, so repeated calls
    (CLI invocations, tests) never stack duplicate handlers. Messages do
    not propagate to the global root logger.
    """
    try:
        resolved = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; one of {sorted(_LEVELS)}"
        ) from None
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(resolved)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("service.http")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
