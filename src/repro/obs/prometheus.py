"""Prometheus text exposition (version 0.0.4) for metrics snapshots.

Renders a :meth:`repro.service.metrics.MetricsRegistry.snapshot` — plus
optional gauges — in the plain-text scrape format. Counters become
``<ns>_<name>_total``; observation series become a summary family (the
quantiles are the registry's bounded-window estimates, ``_sum`` and
``_count`` are lifetime) and, when bucket counts are present, a sibling
``<name>_histogram`` family with cumulative ``_bucket`` lines.

Zero dependencies and no scrape server: the HTTP gateway serves it at
``GET /v1/metrics?format=prometheus``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "render_prometheus", "sanitize_metric_name", "escape_label_value",
    "escape_help",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "window_p50"), ("0.95", "window_p95"), ("0.99", "window_p99"))


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary registry name into a legal Prometheus name."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the only characters the
    format requires escaping inside ``label="…"``.
    """
    return (str(value)
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n"))


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: Any) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Mapping[str, Any],
    *,
    namespace: str = "repro",
    gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """The full exposition document (ends with a newline)."""
    lines: List[str] = []

    counters: Mapping[str, Any] = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = f"{namespace}_{sanitize_metric_name(name)}_total"
        lines.append(f"# HELP {metric} Monotonic event counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name])}")

    series: Mapping[str, Any] = snapshot.get("series", {})
    for name in sorted(series):
        summary: Mapping[str, Any] = series[name]
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        lines.append(
            f"# HELP {metric} Observation series {name!r} "
            "(quantiles over the bounded sample window)."
        )
        lines.append(f"# TYPE {metric} summary")
        for label, key in _QUANTILES:
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{label}"}} {_fmt(summary[key])}'
                )
        lines.append(f"{metric}_sum {_fmt(summary.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_fmt(summary.get('count', 0))}")

        buckets: Mapping[str, Any] = summary.get("buckets") or {}
        if buckets:
            hist = f"{metric}_histogram"
            lines.append(
                f"# HELP {hist} Cumulative histogram of series {name!r}."
            )
            lines.append(f"# TYPE {hist} histogram")
            for upper, count in buckets.items():
                lines.append(
                    f'{hist}_bucket{{le="{escape_label_value(upper)}"}} '
                    f"{_fmt(count)}"
                )
            lines.append(f"{hist}_sum {_fmt(summary.get('sum', 0.0))}")
            lines.append(f"{hist}_count {_fmt(summary.get('count', 0))}")

    # Gauge names may carry a literal label set after the metric name
    # (``queue_depth{class="batch"}``): the base name is sanitized, the
    # label block passes through verbatim, and samples sharing one base
    # emit a single HELP/TYPE header per family as the format requires.
    families: Dict[str, List[Any]] = {}
    for name in sorted(gauges or {}):
        base, brace, label = name.partition("{")
        metric = f"{namespace}_{sanitize_metric_name(base)}"
        families.setdefault(metric, []).append(
            (f"{brace}{label}", gauges[name])  # type: ignore[index]
        )
    for metric, samples in families.items():
        lines.append(f"# HELP {metric} Gauge {metric!r}.")
        lines.append(f"# TYPE {metric} gauge")
        for label_block, value in samples:
            lines.append(f"{metric}{label_block} {_fmt(value)}")

    return "\n".join(lines) + "\n"
