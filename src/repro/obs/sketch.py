"""Mergeable streaming quantile sketch (DDSketch-style log buckets).

The service needs p50/p95/p99 per request stage without keeping every
sample, and the parallel fabric needs shard-local sketches that merge
into exactly the same answer regardless of how the work was sharded.
A rank-based sketch with *float* state (P², CKMS) cannot give the
second property: its state depends on arrival order, so two workers
plus a merge produce different floats than one worker. This sketch
therefore uses relative-error log buckets with **integer counts**:

- a value ``v > 0`` lands in bucket ``ceil(ln(v) / ln(gamma))`` where
  ``gamma = (1 + alpha) / (1 - alpha)``;
- the bucket's representative value ``2 * gamma**k / (gamma + 1)`` is
  within ``alpha`` relative error of anything in the bucket;
- merging is bucket-wise integer addition — associative, commutative,
  and bit-identical however the stream was split (the same contract as
  :class:`repro.parallel.ShardStats`).

Quantile queries walk the sorted bucket keys, so every derived number
is a pure function of the (integer) bucket counts plus the exact
``min``/``max`` — deterministic across worker counts, which is what the
``/v1/slo`` acceptance gate checks.

Stdlib only; thread-safety is the caller's job (the
:class:`~repro.obs.slo.SLOMonitor` holds the lock).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["QuantileSketch", "DEFAULT_ALPHA"]

#: Default relative accuracy: p99 of 1.00 s is reported within ±1 %.
DEFAULT_ALPHA = 0.01

# Values at or below this are counted in the zero bucket; guards the
# logarithm and keeps "instant" stages (cache hits) from minting
# millions of deep-negative keys.
_MIN_TRACKED = 1e-9


class QuantileSketch:
    """Fixed-relative-error quantile sketch over non-negative values.

    Parameters
    ----------
    alpha:
        Relative accuracy of quantile answers (0 < alpha < 1). Sketches
        only merge with sketches of the same ``alpha``.
    """

    __slots__ = ("alpha", "_gamma", "_ln_gamma", "count", "zero_count",
                 "minimum", "maximum", "_buckets")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._ln_gamma = math.log(self._gamma)
        self.count = 0
        self.zero_count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        v = float(value)
        if math.isnan(v):
            return
        if v < 0.0:
            v = 0.0
        self.count += 1
        self.minimum = v if self.minimum is None else min(self.minimum, v)
        self.maximum = v if self.maximum is None else max(self.maximum, v)
        if v <= _MIN_TRACKED:
            self.zero_count += 1
            return
        key = math.ceil(math.log(v) / self._ln_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        """Record every value in ``values``."""
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (returns ``self``).

        Bucket-wise integer addition: merging shard sketches in any
        grouping yields identical state, so quantiles are bit-identical
        regardless of worker count.
        """
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha} "
                f"into alpha {self.alpha}"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        if other.minimum is not None:
            self.minimum = (other.minimum if self.minimum is None
                            else min(self.minimum, other.minimum))
        if other.maximum is not None:
            self.maximum = (other.maximum if self.maximum is None
                            else max(self.maximum, other.maximum))
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n
        return self

    # ------------------------------------------------------------------
    def _representative(self, key: int) -> float:
        # Midpoint of (gamma**(k-1), gamma**k] in the relative sense.
        return 2.0 * math.pow(self._gamma, key) / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` within ``alpha`` relative error.

        Raises :class:`ValueError` on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        rank = max(int(math.ceil(q * self.count)), 1)
        acc = self.zero_count
        if rank <= acc:
            return 0.0
        for key in sorted(self._buckets):
            acc += self._buckets[key]
            if rank <= acc:
                value = self._representative(key)
                # min/max are tracked exactly, so clamp the bucket
                # midpoint back into the observed range.
                return min(max(value, self.minimum or 0.0),
                           self.maximum or value)
        return self.maximum if self.maximum is not None else 0.0

    def percentiles(self) -> Dict[str, float]:
        """``{"p50": …, "p95": …, "p99": …}`` or ``{}`` when empty."""
        if self.count == 0:
            return {}
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    @property
    def mean(self) -> float:
        """Approximate mean from bucket representatives (deterministic)."""
        if self.count == 0:
            return 0.0
        total = 0.0
        for key in sorted(self._buckets):
            total += self._buckets[key] * self._representative(key)
        return total / self.count

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Picklable/JSON-ready state; round-trips via :meth:`from_dict`."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "zero_count": self.zero_count,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {str(k): self._buckets[k]
                        for k in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(alpha=float(payload.get("alpha", DEFAULT_ALPHA)))
        sketch.count = int(payload.get("count", 0))
        sketch.zero_count = int(payload.get("zero_count", 0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        sketch.minimum = None if minimum is None else float(minimum)
        sketch.maximum = None if maximum is None else float(maximum)
        sketch._buckets = {
            int(k): int(n)
            for k, n in dict(payload.get("buckets", {})).items()
        }
        return sketch

    @classmethod
    def merged(cls, parts: Iterable["QuantileSketch"],
               alpha: float = DEFAULT_ALPHA) -> "QuantileSketch":
        """Merge ``parts`` into a fresh sketch (empty parts allowed)."""
        out = cls(alpha=alpha)
        for part in parts:
            out.merge(part)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
                f"buckets={len(self._buckets)})")
